"""Domains: identity, execution contexts, termination semantics."""

import time

import pytest

from repro.core import (
    Capability,
    Domain,
    DomainError,
    DomainTerminatedException,
    Remote,
    RevokedException,
    current_domain,
)


class Echo(Remote):
    def echo(self, value): ...
    def whoami(self): ...


class EchoImpl(Echo):
    def echo(self, value):
        return value

    def whoami(self):
        return Domain.current().name


class TestCurrentDomain:
    def test_outside_any_domain_is_system(self):
        assert Domain.current() is Domain.system()

    def test_run_switches_domain(self):
        domain = Domain("d1")
        assert domain.run(Domain.current) is domain

    def test_context_manager(self):
        domain = Domain("d2")
        with domain.context():
            assert current_domain() is domain
        assert current_domain() is None or current_domain() is not domain

    def test_callee_executes_in_its_own_domain(self):
        server = Domain("server-domain")
        cap = server.run(lambda: Capability.create(EchoImpl()))
        assert cap.whoami() == "server-domain"

    def test_nested_contexts_restore(self):
        outer = Domain("outer")
        inner = Domain("inner")
        with outer.context():
            with inner.context():
                assert Domain.current() is inner
            assert Domain.current() is outer


class TestPerDomainOutput:
    def test_println_is_per_domain(self):
        a = Domain("out-a")
        b = Domain("out-b")
        a.println("from a")
        b.println("from b")
        assert a.output == ["from a"]
        assert b.output == ["from b"]


class TestTermination:
    def test_terminate_revokes_all_capabilities(self):
        domain = Domain("doomed")
        caps = [domain.run(lambda: Capability.create(EchoImpl()))
                for _ in range(4)]
        domain.terminate()
        assert domain.terminated
        for cap in caps:
            assert cap.revoked
            with pytest.raises(RevokedException):
                cap.echo(1)

    def test_terminated_error_names_domain(self):
        domain = Domain("named-dead")
        cap = domain.run(lambda: Capability.create(EchoImpl()))
        domain.terminate()
        with pytest.raises(DomainTerminatedException, match="named-dead"):
            cap.echo(1)

    def test_terminate_idempotent(self):
        domain = Domain("twice")
        domain.terminate()
        domain.terminate()
        assert domain.terminated

    def test_no_new_capabilities_after_termination(self):
        domain = Domain("dead-create")
        domain.terminate()
        with pytest.raises((DomainError, DomainTerminatedException)):
            domain.run(lambda: Capability.create(EchoImpl()))

    def test_no_entry_into_terminated_domain(self):
        domain = Domain("dead-enter")
        domain.terminate()
        with pytest.raises(DomainTerminatedException):
            with domain.context():
                pass

    def test_failure_propagates_to_clients_not_crashes_them(self):
        """Paper: 'the server's failure is … propagated correctly to the
        clients' — clients see exceptions, not corruption."""
        server = Domain("failing-server")
        cap = server.run(lambda: Capability.create(EchoImpl()))
        assert cap.echo(1) == 1
        server.terminate()
        survived = 0
        for _ in range(3):
            try:
                cap.echo(2)
            except DomainTerminatedException:
                survived += 1
        assert survived == 3

    def test_spawned_thread_dies_at_checkpoint(self):
        from repro.core import checkpoint

        domain = Domain("threaded")
        progress = []

        def worker():
            while True:
                progress.append(1)
                checkpoint()
                time.sleep(0.001)

        thread = domain.spawn(worker)
        deadline = time.monotonic() + 2.0
        while not progress and time.monotonic() < deadline:
            time.sleep(0.005)
        assert progress
        domain.terminate()
        thread.join(2.0)
        assert not thread.is_alive()

    def test_spawn_after_termination_rejected(self):
        domain = Domain("no-spawn")
        domain.terminate()
        with pytest.raises(DomainError):
            domain.spawn(lambda: None)


class TestLoadedCode:
    def test_load_module_runs_in_domain(self):
        domain = Domain("loader")
        module = domain.load_module("hello", "x = 40 + 2\n")
        assert module.x == 42

    def test_loaded_module_recorded(self):
        domain = Domain("loader2")
        domain.load_module("m", "y = 1\n")
        assert domain.lookup_loaded("m").y == 1

    def test_load_into_terminated_rejected(self):
        domain = Domain("loader3")
        domain.terminate()
        with pytest.raises(DomainError):
            domain.load_module("m", "pass")
