"""Stack-based access control: permissions, the effective-permission
walk, do_privileged scoping, guarded capabilities, wire contexts."""

import pytest

from repro.core import (
    AccessControlContext,
    AccessDeniedError,
    Capability,
    Domain,
    Permission,
    PermissionSet,
    Remote,
    check_permission,
    current_context,
    do_privileged,
    dumps,
    loads,
)
from repro.core.policy import coerce_policy, exported_wire_context, restricted


class Store(Remote):
    def read(self): ...
    def write(self): ...


class StoreImpl(Store):
    def read(self):
        return "data"

    def write(self):
        check_permission("kv.write")
        return "wrote"


class Relay(Remote):
    def relay(self): ...
    def privileged_relay(self): ...


class RelayImpl(Relay):
    def __init__(self, target):
        self._target = target

    def relay(self):
        return self._target.write()

    def privileged_relay(self):
        return do_privileged(self._target.write)


class Chain(Remote):
    """Forwards ``relay`` one hop further down a Relay chain."""

    def relay(self): ...


class ChainImpl(Chain):
    def __init__(self, next_relay):
        self._next = next_relay

    def relay(self):
        return self._next.relay()


@pytest.fixture
def cleanup_domains():
    domains = []
    yield domains
    for domain in domains:
        domain.terminate()


def make_domain(cleanup, name, policy=None):
    domain = Domain(name)
    if policy is not None:
        domain.set_policy(policy)
    cleanup.append(domain)
    return domain


class TestPermission:
    def test_exact_match(self):
        assert Permission("kv.read", "motd").implies(
            Permission("kv.read", "motd")
        )

    def test_kind_mismatch(self):
        assert not Permission("kv.read").implies(Permission("kv.write"))

    def test_default_target_is_wildcard(self):
        assert Permission("kv.read").implies(
            Permission("kv.read", "anything")
        )

    def test_trailing_glob(self):
        broad = Permission("file.read", "/tmp/*")
        assert broad.implies(Permission("file.read", "/tmp/x/y"))
        assert not broad.implies(Permission("file.read", "/etc/passwd"))

    def test_parse_string(self):
        p = Permission.parse("kv.read:motd")
        assert p.kind == "kv.read" and p.target == "motd"

    def test_parse_bare_kind(self):
        assert Permission.parse("kv.read").target == "*"

    def test_parse_passthrough(self):
        p = Permission("a")
        assert Permission.parse(p) is p

    def test_colon_in_kind_rejected(self):
        with pytest.raises(ValueError):
            Permission("a:b", "c")

    def test_eq_hash_str(self):
        a, b = Permission("x", "y"), Permission("x", "y")
        assert a == b and hash(a) == hash(b) and str(a) == "x:y"


class TestPermissionSet:
    def test_implies_any_member(self):
        ps = PermissionSet(["kv.read", "kv.write:motd"])
        assert ps.implies(Permission.parse("kv.write:motd"))
        assert not ps.implies(Permission.parse("kv.write:other"))

    def test_union(self):
        ps = PermissionSet(["a"]).union(PermissionSet(["b"]))
        assert ps.implies(Permission.parse("a"))
        assert ps.implies(Permission.parse("b"))

    def test_wire_roundtrip(self):
        ps = PermissionSet(["kv.read:motd", "net.connect"])
        assert PermissionSet.from_wire(ps.wire()) == ps

    def test_coerce_policy(self):
        assert coerce_policy(None) is None
        ps = PermissionSet(["a"])
        assert coerce_policy(ps) is ps
        assert coerce_policy("a:b").implies(Permission("a", "b"))
        assert coerce_policy([Permission("c")]).implies(Permission("c"))


class TestEffectiveWalk:
    def test_unrestricted_host_code_passes(self):
        check_permission("anything.at.all")

    def test_restricted_domain_denies(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store")
        tenant = make_domain(cleanup_domains, "tenant", ["kv.read"])
        impl = StoreImpl()
        cap = store.run(lambda: Capability.create(impl))
        holder = tenant.run(lambda: Capability.create(RelayImpl(cap)))
        with pytest.raises(AccessDeniedError) as info:
            holder.relay()
        assert info.value.permission == "kv.write:*"
        assert info.value.domain == "tenant"

    def test_granted_domain_passes(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store2")
        tenant = make_domain(cleanup_domains, "tenant2", ["kv.write"])
        cap = store.run(lambda: Capability.create(StoreImpl()))
        holder = tenant.run(lambda: Capability.create(RelayImpl(cap)))
        assert holder.relay() == "wrote"

    def test_every_domain_on_chain_must_imply(self, cleanup_domains):
        # broad -> narrow -> check: the narrow domain poisons the chain.
        store = make_domain(cleanup_domains, "store3")
        narrow = make_domain(cleanup_domains, "narrow", ["kv.read"])
        broad = make_domain(cleanup_domains, "broad",
                            ["kv.read", "kv.write"])
        cap = store.run(lambda: Capability.create(StoreImpl()))
        inner = narrow.run(lambda: Capability.create(RelayImpl(cap)))
        outer = broad.run(lambda: Capability.create(ChainImpl(inner)))
        with pytest.raises(AccessDeniedError) as info:
            outer.relay()
        assert info.value.domain == "narrow"

    def test_confused_deputy_denied(self, cleanup_domains):
        # restricted caller -> broad deputy -> guarded op: denied,
        # because the caller's domain stays on the chain.
        store = make_domain(cleanup_domains, "store4")
        deputy = make_domain(cleanup_domains, "deputy4",
                             ["kv.read", "kv.write"])
        tenant = make_domain(cleanup_domains, "tenant4", ["kv.read"])
        cap = store.run(lambda: Capability.create(StoreImpl()))
        deputy_cap = deputy.run(lambda: Capability.create(RelayImpl(cap)))
        attacker = tenant.run(
            lambda: Capability.create(ChainImpl(deputy_cap))
        )
        with pytest.raises(AccessDeniedError) as info:
            attacker.relay()
        assert info.value.domain == "tenant4"


class TestDoPrivileged:
    def test_truncates_walk_at_asserting_domain(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store5")
        deputy = make_domain(cleanup_domains, "deputy5",
                             ["kv.read", "kv.write"])
        tenant = make_domain(cleanup_domains, "tenant5", ["kv.read"])
        cap = store.run(lambda: Capability.create(StoreImpl()))
        deputy_cap = deputy.run(lambda: Capability.create(RelayImpl(cap)))

        # deputy vouches (privileged_relay): tenant's restriction is cut.
        class Indirect(Remote):
            def go(self): ...

        class IndirectImpl(Indirect):
            def go(self):
                return deputy_cap.privileged_relay()

        caller = tenant.run(lambda: Capability.create(IndirectImpl()))
        assert caller.go() == "wrote"

    def test_own_domain_stays_in_walk(self, cleanup_domains):
        # A restricted domain cannot self-elevate with do_privileged.
        store = make_domain(cleanup_domains, "store6")
        tenant = make_domain(cleanup_domains, "tenant6", ["kv.read"])
        cap = store.run(lambda: Capability.create(StoreImpl()))
        abuser = tenant.run(lambda: Capability.create(RelayImpl(cap)))
        with pytest.raises(AccessDeniedError):
            abuser.privileged_relay()

    def test_scope_pops_on_exception(self, cleanup_domains):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            do_privileged(boom)
        # the priv frame must not linger
        assert exported_wire_context() is None

    def test_passes_args(self):
        assert do_privileged(lambda a, b=1: a + b, 2, b=3) == 5


class TestGuardedCapabilities:
    def test_guard_checked_before_entry(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store7")
        tenant = make_domain(cleanup_domains, "tenant7", ["other"])
        cap = store.run(
            lambda: Capability.create(StoreImpl(), guard="kv.enter")
        )

        class Caller(Remote):
            def go(self): ...

        class CallerImpl(Caller):
            def go(self):
                return cap.read()

        caller = tenant.run(lambda: Capability.create(CallerImpl()))
        with pytest.raises(AccessDeniedError) as info:
            caller.go()
        assert info.value.permission == "kv.enter:*"

    def test_unguarded_unchanged(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store8")
        cap = store.run(lambda: Capability.create(StoreImpl()))
        assert cap.guard is None
        assert cap.read() == "data"

    def test_guard_property(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store9")
        cap = store.run(
            lambda: Capability.create(StoreImpl(), guard="kv.enter:x")
        )
        assert str(cap.guard) == "kv.enter:x"

    def test_unrestricted_caller_passes_guard(self, cleanup_domains):
        store = make_domain(cleanup_domains, "store10")
        cap = store.run(
            lambda: Capability.create(StoreImpl(), guard="kv.enter")
        )
        assert cap.read() == "data"


class TestWireContext:
    def test_unrestricted_exports_none(self):
        assert exported_wire_context() is None
        assert not restricted()

    def test_restricted_exports_sets(self, cleanup_domains):
        tenant = make_domain(cleanup_domains, "tenant11", ["kv.read"])
        seen = {}

        class Probe(Remote):
            def go(self): ...

        class ProbeImpl(Probe):
            def go(self):
                seen["ctx"] = exported_wire_context()
                seen["restricted"] = restricted()

        probe = tenant.run(lambda: Capability.create(ProbeImpl()))
        probe.go()
        assert seen["restricted"]
        sets = [PermissionSet.from_wire(w) for w in seen["ctx"]]
        assert any(s.implies(Permission.parse("kv.read")) for s in sets)

    def test_access_control_context_capture_check(self, cleanup_domains):
        tenant = make_domain(cleanup_domains, "tenant12", ["kv.read"])
        captured = {}

        class Probe(Remote):
            def go(self): ...

        class ProbeImpl(Probe):
            def go(self):
                captured["ctx"] = current_context()

        probe = tenant.run(lambda: Capability.create(ProbeImpl()))
        probe.go()
        ctx = captured["ctx"]
        assert isinstance(ctx, AccessControlContext)
        ctx.check(Permission.parse("kv.read"))
        with pytest.raises(AccessDeniedError):
            ctx.check(Permission.parse("kv.write"))

    def test_compressed_roundtrip(self, cleanup_domains):
        tenant = make_domain(cleanup_domains, "tenant13", ["kv.read"])
        captured = {}

        class Probe(Remote):
            def go(self): ...

        class ProbeImpl(Probe):
            def go(self):
                captured["wire"] = current_context().compressed()

        probe = tenant.run(lambda: Capability.create(ProbeImpl()))
        probe.go()
        rebuilt = AccessControlContext.from_compressed(captured["wire"])
        with pytest.raises(AccessDeniedError):
            rebuilt.check(Permission.parse("kv.write"))


class TestErrorSerialization:
    def test_typed_fields_cross_the_wire(self):
        err = AccessDeniedError("denied here", permission="kv.write:*",
                                domain="tenant-a")
        back = loads(dumps(err))
        assert isinstance(back, AccessDeniedError)
        assert back.permission == "kv.write:*"
        assert back.domain == "tenant-a"
        assert str(back) == "denied here"
