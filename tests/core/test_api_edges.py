"""Edge cases across the public API surface."""

import pytest

from repro.core import (
    Capability,
    Domain,
    NotSerializableError,
    Remote,
    RemoteException,
    fast_copy,
    serializable,
)


class Kw(Remote):
    def combine(self, a, b=10, *rest, **named): ...


class KwImpl(Kw):
    def combine(self, a, b=10, *rest, **named):
        return a + b + sum(rest) + sum(named.values())


class TestKeywordAndVarargs:
    def test_kwargs_cross_domains(self):
        cap = Capability.create(KwImpl(), domain=Domain("kw"))
        assert cap.combine(1) == 11
        assert cap.combine(1, 2) == 3
        assert cap.combine(1, 2, 3, 4) == 10
        assert cap.combine(1, b=2, extra=5) == 8

    def test_kwargs_are_copied(self):
        class Taker(Remote):
            def take(self, **named): ...

        class TakerImpl(Taker):
            def __init__(self):
                self.seen = None

            def take(self, **named):
                self.seen = named["data"]
                return True

        impl = TakerImpl()
        cap = Capability.create(impl, domain=Domain("kw2"))
        payload = [1, 2, 3]
        cap.take(data=payload)
        assert impl.seen == payload
        assert impl.seen is not payload


class TestCopyModes:
    def test_per_capability_copy_mode(self):
        @fast_copy
        @serializable
        class Both:
            def __init__(self, values):
                self.values = values

        seen = []

        class Sink(Remote):
            def take(self, value): ...

        class SinkImpl(Sink):
            def take(self, value):
                seen.append(value)
                return True

        domain = Domain("modes")
        impl = SinkImpl()
        for mode in ("auto", "serial", "fast"):
            cap = domain.run(lambda: Capability.create(impl, copy=mode))
            original = Both([1, 2])
            cap.take(original)
            assert seen[-1] is not original
            assert seen[-1].values == [1, 2]

    def test_invalid_copy_mode_rejected(self):
        class I(Remote):
            def f(self): ...

        class Impl(I):
            def f(self):
                return 1

        with pytest.raises(ValueError):
            Capability.create(Impl(), domain=Domain("bad-mode"),
                              copy="quantum")


class TestInheritanceShapes:
    def test_implementation_subclass_reuses_interfaces(self):
        class Base(Remote):
            def f(self): ...

        class Impl(Base):
            def f(self):
                return "base"

        class SubImpl(Impl):
            def f(self):
                return "sub"

        domain = Domain("inherit")
        cap = domain.run(lambda: Capability.create(SubImpl()))
        assert cap.f() == "sub"
        assert isinstance(cap, Base)

    def test_diamond_interfaces(self):
        class A(Remote):
            def fa(self): ...

        class B(Remote):
            def fb(self): ...

        class AB(A, B):
            def fa(self):
                return 1

            def fb(self):
                return 2

        cap = Capability.create(AB(), domain=Domain("diamond"))
        assert cap.fa() == 1
        assert cap.fb() == 2
        assert isinstance(cap, A) and isinstance(cap, B)


class TestReturnPaths:
    def test_none_return_crosses(self):
        class V(Remote):
            def void(self): ...

        class VImpl(V):
            def void(self):
                return None

        cap = Capability.create(VImpl(), domain=Domain("void"))
        assert cap.void() is None

    def test_generator_return_rejected(self):
        class G(Remote):
            def gen(self): ...

        class GImpl(G):
            def gen(self):
                return (x for x in range(3))  # not copyable

        cap = Capability.create(GImpl(), domain=Domain("gen"))
        with pytest.raises((RemoteException, NotSerializableError)):
            cap.gen()

    def test_capability_returned_by_reference(self):
        class Maker(Remote):
            def make(self): ...

        class Leaf(Remote):
            def leaf(self): ...

        class LeafImpl(Leaf):
            def leaf(self):
                return "leaf"

        class MakerImpl(Maker):
            def make(self):
                return Capability.create(LeafImpl())

        maker_domain = Domain("maker")
        maker = maker_domain.run(lambda: Capability.create(MakerImpl()))
        leaf_cap = maker.make()
        assert isinstance(leaf_cap, Capability)
        assert leaf_cap.leaf() == "leaf"
        # created inside the callee's segment -> owned by the callee domain
        assert leaf_cap.creator is maker_domain
