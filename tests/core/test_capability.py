"""Capabilities: stub generation, invocation, revocation, failure
propagation."""

import gc
import weakref

import pytest

from repro.core import (
    Capability,
    Domain,
    Remote,
    RemoteException,
    RemoteInterfaceError,
    RevokedException,
    remote_interfaces,
    remote_methods,
)


class ReadFile(Remote):
    def read_byte(self): ...
    def read_bytes(self, n): ...


class WriteFile(Remote):
    def write_bytes(self, data): ...


class ReadWriteImpl(ReadFile, WriteFile):
    def __init__(self):
        self.written = []

    def read_byte(self):
        return 7

    def read_bytes(self, n):
        return bytes(n)

    def write_bytes(self, data):
        self.written.append(data)
        return len(data)

    def not_remote(self):
        return "internal"


@pytest.fixture()
def domain():
    return Domain("cap-test")


@pytest.fixture()
def cap(domain):
    return domain.run(lambda: Capability.create(ReadWriteImpl()))


class TestRemoteInterfaces:
    def test_interfaces_discovered(self):
        assert set(remote_interfaces(ReadWriteImpl)) == {ReadFile, WriteFile}

    def test_methods_union(self):
        assert set(remote_methods(ReadWriteImpl)) == {
            "read_byte", "read_bytes", "write_bytes",
        }

    def test_no_interface_rejected(self):
        class Naked:
            def f(self):
                return 1

        with pytest.raises(RemoteInterfaceError):
            Capability.create(Naked())

    def test_empty_interface_rejected(self):
        class Empty(Remote):
            pass

        class Impl(Empty):
            pass

        with pytest.raises(RemoteInterfaceError):
            Capability.create(Impl())

    def test_missing_implementation_rejected(self):
        class Iface(Remote):
            def f(self): ...

        class Impl(Iface):
            f = None  # deliberately breaks the contract

        with pytest.raises(RemoteInterfaceError):
            remote_methods(Impl)


class TestStubs:
    def test_stub_implements_interfaces(self, cap):
        assert isinstance(cap, ReadFile)
        assert isinstance(cap, WriteFile)
        assert isinstance(cap, Capability)

    def test_stub_is_not_the_target(self, cap):
        assert not isinstance(cap, ReadWriteImpl)

    def test_only_interface_methods_exposed(self, cap):
        assert not hasattr(cap, "not_remote")

    def test_stub_class_cached(self, domain):
        first = domain.run(lambda: Capability.create(ReadWriteImpl()))
        second = domain.run(lambda: Capability.create(ReadWriteImpl()))
        assert type(first) is type(second)
        assert first is not second

    def test_stub_source_recorded(self, cap):
        assert "_lrmi" in type(cap).__stub_source__

    def test_calls_work(self, cap):
        assert cap.read_byte() == 7
        assert cap.read_bytes(3) == b"\x00\x00\x00"
        assert cap.write_bytes(b"xy") == 2


class TestRevocation:
    def test_revoked_call_throws(self, cap):
        cap.revoke()
        with pytest.raises(RevokedException):
            cap.read_byte()

    def test_revocation_is_immediate_and_total(self, cap):
        assert cap.read_byte() == 7
        cap.revoke()
        for method in ("read_byte",):
            with pytest.raises(RevokedException):
                getattr(cap, method)()

    def test_revoked_property(self, cap):
        assert not cap.revoked
        cap.revoke()
        assert cap.revoked

    def test_revocation_releases_target_memory(self, domain):
        target = ReadWriteImpl()
        cap = domain.run(lambda: Capability.create(target))
        ref = weakref.ref(target)
        del target
        gc.collect()
        assert ref() is not None  # the stub still pins the target
        cap.revoke()
        gc.collect()
        assert ref() is None  # paper: target becomes collectible

    def test_domain_tracks_live_capabilities(self, domain):
        caps = [domain.run(lambda: Capability.create(ReadWriteImpl()))
                for _ in range(3)]
        assert len(domain.capabilities()) == 3
        caps[0].revoke()
        assert len(domain.capabilities()) == 2

    def test_separate_capabilities_revoke_independently(self, domain):
        target = ReadWriteImpl()
        first = domain.run(lambda: Capability.create(target))
        second = domain.run(lambda: Capability.create(target))
        first.revoke()
        with pytest.raises(RevokedException):
            first.read_byte()
        assert second.read_byte() == 7


class TestFailurePropagation:
    def test_callee_exception_copied_to_caller(self, domain):
        class Boom(Remote):
            def go(self): ...

        class BoomImpl(Boom):
            def go(self):
                raise ValueError("from callee")

        cap = domain.run(lambda: Capability.create(BoomImpl()))
        with pytest.raises(ValueError, match="from callee") as info:
            cap.go()
        # the exception is a copy, not the callee's object
        assert info.value.args == ("from callee",)

    def test_uncopyable_result_raises_remote_exception(self, domain):
        class Leak(Remote):
            def get(self): ...

        class Opaque:
            pass

        class LeakImpl(Leak):
            def get(self):
                return Opaque()

        cap = domain.run(lambda: Capability.create(LeakImpl()))
        with pytest.raises(RemoteException):
            cap.get()

    def test_uncopyable_argument_raises_remote_exception(self, cap):
        class Opaque:
            pass

        with pytest.raises(RemoteException):
            cap.write_bytes(Opaque())

    def test_creator_and_label(self, domain, cap):
        assert cap.creator is domain
        assert "ReadWriteImpl" in cap.label
        assert "cap-test" in repr(cap)

    def test_create_in_terminated_domain_rejected(self, domain):
        from repro.core import DomainError

        domain.terminate()
        with pytest.raises((DomainError, RemoteException)):
            domain.run(lambda: Capability.create(ReadWriteImpl()))


class TestCallingThroughCapabilityChains:
    def test_capability_passed_through_call_stays_reference(self, domain):
        class Registry(Remote):
            def register(self, cap): ...

        class RegistryImpl(Registry):
            def __init__(self):
                self.seen = None

            def register(self, cap):
                self.seen = cap
                return True

        class Target(Remote):
            def hit(self): ...

        class TargetImpl(Target):
            def hit(self):
                return "direct"

        registry_impl = RegistryImpl()
        registry = domain.run(lambda: Capability.create(registry_impl))
        target_cap = domain.run(lambda: Capability.create(TargetImpl()))
        registry.register(target_cap)
        assert registry_impl.seen is target_cap
        assert registry_impl.seen.hit() == "direct"

    def test_nested_lrmi(self, domain):
        """Domain A calls B, whose implementation calls C."""
        class Leaf(Remote):
            def leaf(self): ...

        class LeafImpl(Leaf):
            def leaf(self):
                return Domain.current().name

        class Mid(Remote):
            def via(self, leaf_cap): ...

        class MidImpl(Mid):
            def via(self, leaf_cap):
                return f"{Domain.current().name}->{leaf_cap.leaf()}"

        domain_b = Domain("B")
        domain_c = Domain("C")
        leaf = domain_c.run(lambda: Capability.create(LeafImpl()))
        mid = domain_b.run(lambda: Capability.create(MidImpl()))
        assert mid.via(leaf) == "B->C"
