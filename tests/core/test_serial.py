"""The from-scratch serializer: round trips, cycles, registration rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NotSerializableError,
    SerialRegistry,
    copy_via_serialization,
    dumps,
    loads,
    serializable,
)
from repro.core.serial import class_fields


def roundtrip(value, **kwargs):
    return loads(dumps(value, **kwargs), **kwargs)


class TestPrimitives:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**40, -(2**40), 2**100, -(2**100),
        0.0, -1.5, 3.14159, float("inf"),
        "", "hello", "üñïçödé ✓", b"", b"bytes\x00\xff",
    ])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_nan_roundtrip(self):
        result = roundtrip(float("nan"))
        assert result != result

    def test_bool_is_not_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1
        assert not isinstance(roundtrip(1), bool)


class TestContainers:
    def test_list(self):
        assert roundtrip([1, "a", None, [2, 3]]) == [1, "a", None, [2, 3]]

    def test_tuple_type_preserved(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert isinstance(roundtrip((1, 2)), tuple)

    def test_dict(self):
        assert roundtrip({"a": 1, 2: [3]}) == {"a": 1, 2: [3]}

    def test_sets(self):
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        assert roundtrip(frozenset({1, 2})) == frozenset({1, 2})
        assert isinstance(roundtrip(frozenset({1})), frozenset)

    def test_bytearray(self):
        value = bytearray(b"mutable")
        copy = roundtrip(value)
        assert copy == value
        assert copy is not value

    def test_copy_is_deep(self):
        inner = [1, 2]
        copy = roundtrip([inner, inner])
        copy[0].append(3)
        assert inner == [1, 2]

    def test_shared_substructure_preserved(self):
        inner = [1]
        copy = roundtrip([inner, inner])
        assert copy[0] is copy[1]

    def test_cycles(self):
        value = []
        value.append(value)
        copy = roundtrip(value)
        assert copy[0] is copy

    def test_dict_cycle(self):
        value = {}
        value["self"] = value
        copy = roundtrip(value)
        assert copy["self"] is copy


@serializable
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def __eq__(self, other):
        return isinstance(other, Point) and (self.x, self.y) == (
            other.x, other.y
        )


class TestObjects:
    def test_registered_class_roundtrip(self):
        assert roundtrip(Point(1, 2)) == Point(1, 2)

    def test_unregistered_class_rejected(self):
        class Hidden:
            pass

        with pytest.raises(NotSerializableError, match="not registered"):
            dumps(Hidden())

    def test_object_cycle(self):
        a = Point(1, 2)
        a.x = a
        copy = roundtrip(a)
        assert copy.x is copy

    def test_exception_roundtrip(self):
        exc = ValueError("broken", 42)
        copy = roundtrip(exc)
        assert isinstance(copy, ValueError)
        assert copy.args == ("broken", 42)

    def test_unregistered_exception_falls_back_to_ancestor(self):
        class CustomError(ValueError):
            pass

        copy = roundtrip(CustomError("detail"))
        assert isinstance(copy, ValueError)
        assert copy.args == ("detail",)

    def test_capability_outside_lrmi_rejected(self):
        from repro.core import Capability, Domain, Remote

        class I(Remote):
            def f(self): ...

        class Impl(I):
            def f(self):
                return 1

        cap = Capability.create(Impl(), domain=Domain("serial-test"))
        with pytest.raises(NotSerializableError, match="outside an LRMI"):
            dumps(cap)

    def test_capability_table_passthrough(self):
        from repro.core import Capability, Domain, Remote

        class I(Remote):
            def f(self): ...

        class Impl(I):
            def f(self):
                return 1

        cap = Capability.create(Impl(), domain=Domain("serial-test2"))
        table = []
        copy = copy_via_serialization({"cap": cap, "n": 1},
                                      capability_table=table)
        assert copy["cap"] is cap  # by reference through the side table
        assert copy["n"] == 1


class TestRegistry:
    def test_custom_registry_isolated(self):
        registry = SerialRegistry()

        class Local:
            def __init__(self, v):
                self.v = v

        registry.register(Local)
        copy = roundtrip(Local(9), registry=registry)
        assert copy.v == 9
        with pytest.raises(NotSerializableError):
            dumps(Local(9))  # default registry does not know it

    def test_class_fields_from_slots(self):
        class Slotted:
            __slots__ = ("a", "b")

        assert class_fields(Slotted) == ("a", "b")

    def test_class_fields_from_dataclass(self):
        import dataclasses

        @dataclasses.dataclass
        class Data:
            x: int
            y: str

        assert class_fields(Data) == ("x", "y")

    def test_explicit_fields_win(self):
        class Any:
            pass

        assert class_fields(Any, explicit=["only"]) == ("only",)

    def test_truncated_stream_rejected(self):
        data = dumps([1, 2, 3])
        with pytest.raises(NotSerializableError, match="truncated"):
            loads(data[:-2])

    def test_trailing_bytes_rejected(self):
        data = dumps(7)
        with pytest.raises(NotSerializableError, match="trailing"):
            loads(data + b"\x00")


_json_like = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False) | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=20,
)


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(_json_like)
    def test_roundtrip_identity(self, value):
        assert roundtrip(value) == value

    @settings(max_examples=40, deadline=None)
    @given(_json_like)
    def test_deterministic_encoding(self, value):
        assert dumps(value) == dumps(value)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(), max_size=8))
    def test_copy_never_aliases_mutables(self, value):
        copy = roundtrip(value)
        assert copy == value
        if value:
            assert copy is not value
