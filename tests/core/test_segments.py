"""Thread segments: the interposed thread API and cross-domain thread
protection (paper §3.1, "Threads")."""

import threading
import time

import pytest

from repro.core import (
    Capability,
    Domain,
    Remote,
    RemoteException,
    SegmentStoppedException,
    checkpoint,
    current_handle,
    current_segment,
)
from repro.core.segments import ThreadSegment, pop, push


class TestSegmentBasics:
    def test_push_pop(self):
        domain = Domain("seg")
        segment = push(domain)
        assert current_segment() is segment
        assert segment.domain is domain
        pop()
        assert current_segment() is not segment

    def test_handles_name_one_segment(self):
        domain = Domain("seg2")
        with domain.context():
            handle = current_handle()
            assert handle.domain_name == "seg2"
            assert handle.alive

    def test_no_segment_no_handle(self):
        with pytest.raises(RuntimeError):
            current_handle()

    def test_stop_raises_at_checkpoint(self):
        domain = Domain("seg3")
        with pytest.raises(SegmentStoppedException):
            with domain.context():
                current_handle().stop()
                checkpoint()

    def test_priority_clamped(self):
        segment = ThreadSegment(Domain("seg4"))
        from repro.core.segments import SegmentHandle

        handle = SegmentHandle(segment)
        handle.set_priority(42)
        assert handle.priority == 10
        handle.set_priority(-1)
        assert handle.priority == 1


class Service(Remote):
    def attack_caller(self): ...
    def suicide(self): ...
    def leak_handle(self): ...
    def fine(self): ...


class ServiceImpl(Service):
    def __init__(self):
        self.leaked = None

    def attack_caller(self):
        # A malicious callee can only reach its OWN segment handle; there
        # is no API to reach the caller's segment.
        handle = current_handle()
        assert handle.domain_name != "caller"
        return handle.domain_name

    def suicide(self):
        current_handle().stop()
        checkpoint()
        return "unreachable"

    def leak_handle(self):
        self.leaked = current_handle()
        return True

    def fine(self):
        return "ok"


class TestCrossDomainThreadProtection:
    def setup_method(self):
        self.server = Domain("server")
        self.caller = Domain("caller")
        self.cap = self.server.run(
            lambda: Capability.create(ServiceImpl())
        )

    def test_callee_segment_is_callee_domain(self):
        result = self.caller.run(self.cap.attack_caller)
        assert result == "server"

    def test_callee_suicide_becomes_remote_exception(self):
        """A callee stopping its own segment must not kill the caller."""
        with pytest.raises(RemoteException):
            self.caller.run(self.cap.suicide)
        # caller still alive and usable:
        assert self.caller.run(self.cap.fine) == "ok"

    def test_leaked_handle_is_dead_after_return(self):
        """Paper: the callee may stash its Thread object, but after the
        call returns, acting on it cannot touch the caller."""
        impl = ServiceImpl()
        cap = self.server.run(lambda: Capability.create(impl))
        self.caller.run(cap.leak_handle)
        leaked = impl.leaked
        assert leaked is not None
        assert not leaked.alive  # segment died when the call returned
        leaked.stop()  # harmless: the segment is gone
        assert self.caller.run(cap.fine) == "ok"

    def test_caller_stop_fires_on_return_from_callee(self):
        """If the caller's segment is stopped while it waits in a callee,
        the stop is delivered when control returns to the caller side."""
        caller_handle = {}

        def run_caller():
            caller_handle["h"] = current_handle()
            result = self.cap.fine()
            checkpoint()  # stop delivered here
            return result

        with pytest.raises(SegmentStoppedException):
            with self.caller.context():
                caller_handle["h"] = current_handle()
                caller_handle["h"].stop()
                self.cap.fine()  # LRMI boundary checkpoints the caller seg

    def test_suspend_resume_roundtrip(self):
        domain = Domain("suspender")
        stages = []

        def worker():
            handle = current_handle()
            stages.append(("handle", handle))
            while True:
                checkpoint()
                stages.append("tick")
                time.sleep(0.002)

        thread = domain.spawn(worker)
        deadline = time.monotonic() + 2.0
        while len(stages) < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        handle = stages[0][1]
        handle.suspend()
        time.sleep(0.05)
        count_suspended = len(stages)
        time.sleep(0.1)
        # no progress while suspended (allow one in-flight tick)
        assert len(stages) <= count_suspended + 1
        handle.resume()
        time.sleep(0.1)
        assert len(stages) > count_suspended + 1
        handle.stop()
        thread.join(2.0)
        assert not thread.is_alive()

    def test_stop_wakes_suspended_segment(self):
        """Termination must kill suspended segments too, not hang them."""
        domain = Domain("susp-kill")

        def worker():
            handle = current_handle()
            handle.suspend()
            checkpoint()  # blocks here until resumed or stopped

        thread = domain.spawn(worker)
        time.sleep(0.05)
        domain.terminate()
        thread.join(2.0)
        assert not thread.is_alive()


class TestSegmentsAcrossRealThreads:
    def test_segments_are_thread_local(self):
        domain_a = Domain("tl-a")
        domain_b = Domain("tl-b")
        seen = {}

        def in_thread():
            with domain_b.context():
                seen["thread"] = Domain.current().name

        with domain_a.context():
            worker = threading.Thread(target=in_thread)
            worker.start()
            worker.join()
            seen["main"] = Domain.current().name
        assert seen == {"main": "tl-a", "thread": "tl-b"}
