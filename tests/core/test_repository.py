"""The system-wide capability repository."""

import pytest

from repro.core import (
    Capability,
    Domain,
    DomainError,
    NameAlreadyBoundError,
    NameNotBoundError,
    Remote,
    Repository,
    RevokedException,
)


class Svc(Remote):
    def hit(self): ...


class SvcImpl(Svc):
    def hit(self):
        return "hit"


@pytest.fixture()
def repo():
    return Repository()


@pytest.fixture()
def server():
    return Domain("repo-server")


@pytest.fixture()
def cap(server):
    return server.run(lambda: Capability.create(SvcImpl()))


class TestBinding:
    def test_bind_lookup(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        assert repo.lookup("svc") is cap
        assert repo.lookup("svc").hit() == "hit"

    def test_double_bind_rejected(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        with pytest.raises(NameAlreadyBoundError):
            repo.bind("svc", cap, domain=server)

    def test_lookup_missing_rejected(self, repo):
        with pytest.raises(NameNotBoundError):
            repo.lookup("ghost")

    def test_only_capabilities_bindable(self, repo, server):
        with pytest.raises(TypeError):
            repo.bind("bad", SvcImpl(), domain=server)
        with pytest.raises(TypeError):
            repo.bind("bad", [1, 2], domain=server)

    def test_names_sorted(self, repo, server, cap):
        repo.bind("b", cap, domain=server)
        repo.bind("a", cap, domain=server)
        assert repo.names() == ["a", "b"]

    def test_binder_recorded(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        assert repo.binder_of("svc") is server


class TestOwnership:
    def test_unbind_by_binder(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        repo.unbind("svc", domain=server)
        with pytest.raises(NameNotBoundError):
            repo.lookup("svc")

    def test_unbind_by_other_domain_rejected(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        intruder = Domain("intruder")
        with pytest.raises(DomainError):
            repo.unbind("svc", domain=intruder)
        assert repo.lookup("svc") is cap

    def test_rebind_by_binder(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        replacement = server.run(lambda: Capability.create(SvcImpl()))
        repo.rebind("svc", replacement, domain=server)
        assert repo.lookup("svc") is replacement

    def test_rebind_by_other_rejected(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        intruder = Domain("intruder2")
        other_cap = intruder.run(lambda: Capability.create(SvcImpl()))
        with pytest.raises(DomainError):
            repo.rebind("svc", other_cap, domain=intruder)

    def test_rebind_unbound_name_binds(self, repo, server, cap):
        repo.rebind("fresh", cap, domain=server)
        assert repo.lookup("fresh") is cap


class TestFailurePropagation:
    def test_lookup_of_revoked_capability_succeeds_use_fails(
        self, repo, server, cap
    ):
        repo.bind("svc", cap, domain=server)
        cap.revoke()
        found = repo.lookup("svc")  # lookup still works...
        with pytest.raises(RevokedException):
            found.hit()  # ...the use reports the failure

    def test_sweep_revoked(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        other = server.run(lambda: Capability.create(SvcImpl()))
        repo.bind("other", other, domain=server)
        cap.revoke()
        assert repo.sweep_revoked() == 1
        assert repo.names() == ["other"]

    def test_termination_then_sweep(self, repo, server, cap):
        repo.bind("svc", cap, domain=server)
        server.terminate()
        assert repo.sweep_revoked() == 1
        assert repo.names() == []


class TestGlobalRepository:
    def test_domain_get_repository(self, repository):
        assert Domain.get_repository() is repository

    def test_paper_usage_pattern(self, repository):
        """Domain 1 binds, Domain 2 looks up and invokes (paper §3.1)."""
        domain1 = Domain("Domain1")
        target = SvcImpl()
        cap = domain1.run(lambda: Capability.create(target))
        Domain.get_repository().bind("Domain1ReadFile", cap, domain=domain1)

        found = Domain.get_repository().lookup("Domain1ReadFile")
        assert found.hit() == "hit"
