"""Per-tenant quota enforcement (``repro.core.quota``).

The contract under test: budgets evaluate from live accounting plus
out-of-process reports, soft breaches throttle (state only), hard
breaches are sticky and fire the kill callback exactly once — off the
charging thread — and a host death folds its last report into retained
usage so restarts never reset a tenant's budget position.
"""

import threading
import time

import pytest

from repro.core import Domain, get_accountant
from repro.core.errors import QuotaExceededException, RemoteException
from repro.core.quota import (
    HARD,
    OK,
    SOFT,
    QuotaCell,
    QuotaManager,
    QuotaSpec,
    RateWindow,
    get_quota_manager,
)


class TestQuotaSpec:
    def test_defaults_disable_every_dimension(self):
        spec = QuotaSpec()
        assert spec.cpu_ticks is None
        assert spec.memory_bytes is None
        assert spec.requests_per_sec is None

    def test_is_immutable(self):
        spec = QuotaSpec(cpu_ticks=100)
        with pytest.raises(AttributeError):
            spec.cpu_ticks = 200

    @pytest.mark.parametrize("kwargs", [
        {"cpu_ticks": 0}, {"cpu_ticks": -1},
        {"memory_bytes": 0}, {"requests_per_sec": -5},
        {"soft_fraction": 0.0}, {"soft_fraction": 1.5},
    ])
    def test_rejects_nonpositive_limits(self, kwargs):
        with pytest.raises(ValueError):
            QuotaSpec(**kwargs)

    def test_repr_names_limits(self):
        assert "cpu_ticks=7" in repr(QuotaSpec(cpu_ticks=7))


class TestRateWindow:
    def test_rate_counts_recent_events(self):
        window = RateWindow(window_s=1.0)
        now = 100.0
        for _ in range(10):
            window.note(now)
        assert window.rate(now) == pytest.approx(10.0)
        assert window.total == 10

    def test_old_events_age_out(self):
        window = RateWindow(window_s=1.0)
        window.note(100.0, n=50)
        assert window.rate(100.0) == pytest.approx(50.0)
        assert window.rate(102.5) == 0.0

    def test_bucket_gc_bounds_memory(self):
        window = RateWindow(window_s=1.0, buckets=10)
        for step in range(500):
            window.note(100.0 + step * 0.1)
        assert len(window._buckets) <= 65


class TestQuotaCell:
    def test_ok_below_soft_threshold(self):
        cell = QuotaCell("t", QuotaSpec(cpu_ticks=100))
        assert cell.charge_cpu(50) == OK
        assert cell.state == OK

    def test_soft_then_hard_on_cpu(self):
        cell = QuotaCell("t", QuotaSpec(cpu_ticks=100, soft_fraction=0.8))
        assert cell.charge_cpu(80) == SOFT
        assert cell.charge_cpu(20) == HARD
        assert cell.breached[0] == "cpu_ticks"

    def test_hard_is_sticky(self):
        cell = QuotaCell("t", QuotaSpec(requests_per_sec=5))
        now = 100.0
        for _ in range(5):
            cell.charge_request(now)
        assert cell.state == HARD
        # The window went quiet — the verdict must not resurrect.
        assert cell.evaluate(now + 10.0) == HARD

    def test_memory_reads_through_account(self):
        domain = Domain("quota-mem")
        account = get_accountant().account(domain)
        cell = QuotaCell("t", QuotaSpec(memory_bytes=1000), account)
        account.charge_allocation(400)
        assert cell.evaluate() == OK
        account.charge_copy(700)  # copies into the domain count too
        assert cell.evaluate() == HARD
        assert cell.memory_used() >= 1100
        get_accountant().release_domain(domain)

    def test_reconcile_replaces_live_external_view(self):
        cell = QuotaCell("t", QuotaSpec(memory_bytes=1000))
        cell.reconcile({"allocated_bytes": 300, "bytes_copied_in": 100})
        assert cell.memory_used() == 400
        # A later report REPLACES the live view (host counters are
        # cumulative), it does not add to it.
        cell.reconcile({"allocated_bytes": 500, "bytes_copied_in": 100})
        assert cell.memory_used() == 600

    def test_fold_external_survives_host_restart(self):
        cell = QuotaCell("t", QuotaSpec(cpu_ticks=1000))
        cell.reconcile({"cpu_ticks": 400})
        cell.fold_external()
        # The respawned host reports from zero; usage must not reset.
        assert cell.cpu_used() == 400
        cell.reconcile({"cpu_ticks": 250})
        assert cell.cpu_used() == 650
        assert cell.usage()["cpu_ticks"] == 650

    def test_exceeded_error_is_typed_remote_exception(self):
        cell = QuotaCell("t", QuotaSpec(cpu_ticks=10))
        cell.charge_cpu(10)
        error = cell.exceeded_error()
        assert isinstance(error, QuotaExceededException)
        assert isinstance(error, RemoteException)
        assert "cpu_ticks" in str(error)

    def test_snapshot_shape(self):
        cell = QuotaCell("t", QuotaSpec(requests_per_sec=100))
        cell.charge_request(50.0)
        snap = cell.snapshot(50.0)
        assert snap["state"] == OK
        assert snap["limits"]["requests_per_sec"] == 100
        assert snap["usage"]["requests"] == 1
        assert "QuotaCell" in repr(cell)


class TestQuotaManager:
    def test_unquoted_tenant_is_always_ok(self):
        manager = QuotaManager()
        assert manager.admit("ghost") == OK
        assert manager.charge_request("ghost") == OK
        assert manager.charge_cpu("ghost", 10**9) == OK
        assert manager.reconcile("ghost", {"cpu_ticks": 10**9}) == OK

    def test_kill_fires_exactly_once_off_the_charging_thread(self):
        manager = QuotaManager()
        kills = []
        done = threading.Event()

        def on_kill(key, cell):
            kills.append((key, threading.current_thread().name))
            done.set()

        manager.set_quota("t", QuotaSpec(cpu_ticks=10), on_kill=on_kill)
        charging = threading.current_thread().name
        for _ in range(3):  # repeated breaches: one kill only
            manager.charge_cpu("t", 10)
        assert done.wait(2.0)
        time.sleep(0.05)
        assert len(kills) == 1
        assert kills[0][0] == "t"
        assert kills[0][1] != charging
        assert manager.kills_fired == 1

    def test_kill_exceptions_do_not_take_the_manager_down(self):
        manager = QuotaManager()
        fired = threading.Event()

        def on_kill(key, cell):
            fired.set()
            raise RuntimeError("teardown failed")

        manager.set_quota("t", QuotaSpec(requests_per_sec=1),
                          on_kill=on_kill)
        now = 10.0
        manager.charge_request("t", now)
        manager.charge_request("t", now)
        assert fired.wait(2.0)
        assert manager.admit("t", now) == HARD  # still functional

    def test_throttled_keys_lists_soft_and_hard(self):
        manager = QuotaManager()
        manager.set_quota("soft", QuotaSpec(cpu_ticks=100))
        manager.set_quota("hard", QuotaSpec(cpu_ticks=10))
        manager.set_quota("fine", QuotaSpec(cpu_ticks=1000))
        manager.charge_cpu("soft", 85)
        manager.charge_cpu("hard", 50)
        manager.charge_cpu("fine", 1)
        assert set(manager.throttled_keys()) == {"soft", "hard"}

    def test_reconcile_can_trigger_the_kill(self):
        manager = QuotaManager()
        done = threading.Event()
        manager.set_quota("t", QuotaSpec(memory_bytes=100),
                          on_kill=lambda key, cell: done.set())
        manager.reconcile("t", {"allocated_bytes": 150})
        assert done.wait(2.0)

    def test_remove_and_report(self):
        manager = QuotaManager()
        manager.set_quota("a", QuotaSpec(cpu_ticks=10))
        report = manager.report()
        assert report["a"]["state"] == OK
        assert manager.remove("a") is not None
        assert manager.cell("a") is None
        assert manager.remove("a") is None

    def test_default_manager_singleton(self):
        assert get_quota_manager() is get_quota_manager()
