"""Sealed transfer classes: deep immutability as a zero-copy tier."""

import pytest

from repro.core import Capability, Domain, Remote, transfer
from repro.core.sealed import FrozenMap, sealed


@sealed
class Point:
    __slots__ = ("x", "y")

    def __init__(self, x, y):
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)


class TestSealedDecorator:
    def test_instances_are_frozen(self):
        point = Point(1, 2)
        with pytest.raises(AttributeError):
            point.x = 5
        with pytest.raises(AttributeError):
            del point.x
        assert (point.x, point.y) == (1, 2)

    def test_class_is_final(self):
        with pytest.raises(TypeError):
            class Sub(Point):
                __slots__ = ()

    def test_requires_slots(self):
        with pytest.raises(TypeError):
            @sealed
            class Dicty:
                def __init__(self):
                    self.x = 1

    def test_marked_sealed(self):
        assert Point.__sealed__ is True

    def test_accepts_class_whose_new_requires_arguments(self):
        """Regression: the dict probe used to instantiate the class
        (``cls.__new__(cls)``), so any sealed class with a required
        ``__new__`` argument was falsely rejected with the constructor's
        TypeError.  The layout check (``__dictoffset__``) needs no
        instance."""
        @sealed
        class Picky:
            __slots__ = ("value",)

            def __new__(cls, value):
                return super().__new__(cls)

            def __init__(self, value):
                object.__setattr__(self, "value", value)

        assert Picky(7).value == 7
        assert Picky.__sealed__ is True

    def test_rejects_dict_inherited_from_base(self):
        """``__slots__`` on the decorated class is not enough: a
        dict-bearing base still gives instances a mutable ``__dict__``
        (nonzero ``__dictoffset__``), which must be refused."""
        class OpenBase:
            pass

        with pytest.raises(TypeError):
            @sealed
            class Sneaky(OpenBase):
                __slots__ = ("x",)


class TestSealedTransfer:
    def test_crosses_by_reference_auto_mode(self):
        point = Point(3, 4)
        assert transfer(point) is point

    def test_crosses_by_reference_all_modes(self):
        point = Point(3, 4)
        assert transfer(point, mode="fast") is point
        assert transfer(point, mode="serial") is point

    def test_crosses_lrmi_by_reference_both_directions(self):
        class Echo(Remote):
            def echo(self, value): ...

        class EchoImpl(Echo):
            def echo(self, value):
                return value

        domain = Domain("sealed-lrmi")
        capability = domain.run(lambda: Capability.create(EchoImpl()))
        point = Point(7, 8)
        assert capability.echo(point) is point

    def test_sealed_inside_container_not_copied(self):
        point = Point(1, 1)
        copied = transfer([point, point])
        assert copied[0] is point and copied[1] is point


class TestFrozenMap:
    def test_read_api(self):
        frozen = FrozenMap({"a": "1", "b": "2"})
        assert frozen["a"] == "1"
        assert frozen.get("missing") is None
        assert "b" in frozen and "c" not in frozen
        assert sorted(frozen) == ["a", "b"]
        assert len(frozen) == 2
        assert dict(frozen.items()) == {"a": "1", "b": "2"}
        assert frozen.to_dict() == {"a": "1", "b": "2"}

    def test_equality_with_dict_and_frozenmap(self):
        frozen = FrozenMap({"a": "1"})
        assert frozen == {"a": "1"}
        assert frozen == FrozenMap({"a": "1"})
        assert frozen != FrozenMap({"a": "2"})

    def test_no_mutation_api(self):
        frozen = FrozenMap({"a": "1"})
        with pytest.raises(TypeError):
            frozen["a"] = "2"  # no __setitem__
        with pytest.raises(AttributeError):
            frozen._map = {}

    def test_rejects_mutable_contents(self):
        with pytest.raises(TypeError):
            FrozenMap({"a": [1, 2]})
        with pytest.raises(TypeError):
            FrozenMap({("t",): "v"})  # tuple key: not a primitive

    def test_copy_construction_shares_validated_state(self):
        original = FrozenMap({"a": "1"})
        again = FrozenMap(original)
        assert again == original

    def test_transfer_by_reference(self):
        frozen = FrozenMap({"k": "v"})
        assert transfer(frozen) is frozen

    def test_detached_from_source_dict(self):
        source = {"a": "1"}
        frozen = FrozenMap(source)
        source["a"] = "mutated"
        assert frozen["a"] == "1"
