"""Generated fast-copy: specialization, cycle handling, equivalence with
the serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NotSerializableError,
    fast_copy,
    fast_copy_value,
    serializable,
    transfer,
)
from repro.core.fastcopy import DEFAULT_REGISTRY, FastCopyRegistry


def plain_transfer(value, memo):
    return transfer(value, memo=memo)


@fast_copy
@serializable
class Box:
    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Box) and other.value == self.value


@fast_copy(cyclic=True, fields=("name", "next"))
class Link:
    def __init__(self, name, next_link=None):
        self.name = name
        self.next = next_link


class TestGeneration:
    def test_copier_is_generated_code(self):
        info = DEFAULT_REGISTRY.lookup(Box)
        assert info is not None
        assert "def _fastcopy_Box" in info.source
        assert "new.value = transfer(obj.value, memo)" in info.source \
            or "for key, value in state.items()" in info.source

    def test_explicit_fields_specialized(self):
        info = DEFAULT_REGISTRY.lookup(Link)
        assert "new.name" in info.source
        assert "new.next" in info.source

    def test_cyclic_flag_adds_memo_lookup(self):
        info = DEFAULT_REGISTRY.lookup(Link)
        assert "memo.get(id(obj))" in info.source
        non_cyclic = DEFAULT_REGISTRY.lookup(Box)
        assert "memo.get(id(obj))" not in non_cyclic.source


class TestCopying:
    def test_basic_copy(self):
        original = Box(42)
        copy = fast_copy_value(original, plain_transfer)
        assert copy == original
        assert copy is not original

    def test_nested_fastcopy_objects(self):
        original = Box(Box(7))
        copy = fast_copy_value(original, plain_transfer)
        assert copy.value.value == 7
        assert copy.value is not original.value

    def test_mutation_isolation(self):
        original = Box([1, 2, 3])
        copy = fast_copy_value(original, plain_transfer)
        copy.value.append(4)
        assert original.value == [1, 2, 3]

    def test_cycle_with_memo(self):
        head = Link("a")
        head.next = Link("b", head)  # cycle
        copy = fast_copy_value(head, plain_transfer)
        assert copy.name == "a"
        assert copy.next.name == "b"
        assert copy.next.next is copy

    def test_dag_sharing_preserved_with_memo(self):
        shared = Link("shared")
        left = Link("left", shared)
        right = Link("right", shared)
        root = Link("root", None)
        root.next = left
        left.next = shared
        # copy a structure where 'shared' is reachable twice
        pair = [left, right]
        memo = {}
        copied_left = fast_copy_value(left, plain_transfer, memo=memo)
        copied_right = fast_copy_value(right, plain_transfer, memo=memo)
        assert copied_left.next is copied_right.next

    def test_unregistered_rejected(self):
        class Unknown:
            pass

        with pytest.raises(NotSerializableError, match="not a fast-copy"):
            fast_copy_value(Unknown(), plain_transfer)

    def test_custom_registry(self):
        registry = FastCopyRegistry()

        class Local:
            def __init__(self, v):
                self.v = v

        registry.register(Local)
        copy = fast_copy_value(Local(5), plain_transfer, registry=registry)
        assert copy.v == 5


class TestEquivalenceWithSerialization:
    """Property: for values both mechanisms accept, fast-copy and the
    serializer must produce structurally identical results."""

    @settings(max_examples=60, deadline=None)
    @given(st.recursive(
        st.integers() | st.text(max_size=10) | st.none()
        | st.binary(max_size=10),
        lambda children: st.lists(children, max_size=3)
        | st.builds(Box, children),
        max_leaves=10,
    ))
    def test_same_result(self, value):
        from repro.core import copy_via_serialization

        fast = transfer(value, mode="fast")
        slow = copy_via_serialization(value)
        assert _structurally_equal(fast, slow)


def _structurally_equal(a, b):
    if isinstance(a, Box) and isinstance(b, Box):
        return _structurally_equal(a.value, b.value)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _structurally_equal(x, y) for x, y in zip(a, b)
        )
    return a == b
