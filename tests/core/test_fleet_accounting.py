"""Retained-totals accounting: a terminated domain's final counters fold
into the accountant's retired totals (mirroring the prefork master's
retired-worker accounting), so ``fleet_totals`` reconciles exactly with
client-observed traffic across quota kills and servlet hot-swaps.
"""

import threading

import pytest

from repro.core import Domain
from repro.core.accounting import Accountant, install, uninstall


@pytest.fixture()
def accountant():
    accountant = Accountant()
    install(accountant)
    yield accountant
    uninstall()


class TestRetainedTotals:
    def test_release_folds_final_counters(self, accountant):
        domain = Domain("tenant-a")
        account = accountant.account(domain)
        account.charge_copy(100)
        account.charge_allocation(50)
        for _ in range(7):
            account.charge_request()
        accountant.release_domain(domain)
        retired = accountant.retired_totals()
        assert retired["bytes_copied_in"] == 100
        assert retired["copy_operations"] == 1
        assert retired["allocated_bytes"] == 50
        assert retired["requests"] == 7

    def test_release_of_unknown_domain_is_a_noop(self, accountant):
        assert accountant.release_domain(Domain("ghost")) is None
        assert accountant.retired_totals()["requests"] == 0
        assert accountant.fleet_totals()["released_domains"] == 0

    def test_fleet_totals_span_live_and_released(self, accountant):
        dead = Domain("dead-tenant")
        live = Domain("live-tenant")
        accountant.account(dead).charge_copy(30)
        accountant.account(dead).charge_request()
        accountant.account(live).charge_copy(70)
        accountant.release_domain(dead)
        totals = accountant.fleet_totals()
        # Fleet view is unchanged by the kill: traffic happened.
        assert totals["bytes_copied_in"] == 100
        assert totals["requests"] == 1
        assert totals["released_domains"] == 1

    def test_released_account_snapshot_is_returned(self, accountant):
        domain = Domain("tenant-b")
        accountant.account(domain).charge_request()
        released = accountant.release_domain(domain)
        assert released.requests == 1
        # The key is gone: a same-named successor starts at zero.
        successor = Domain("tenant-b")
        assert accountant.account(successor).requests == 0

    def test_fold_includes_dead_thread_cells(self, accountant):
        """Charges made by threads that died inside the terminated
        domain (the quota-kill scenario) must still reconcile."""
        domain = Domain("tenant-c")
        account = accountant.account(domain)

        def worker():
            for _ in range(100):
                account.charge_request()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        accountant.release_domain(domain)
        assert accountant.retired_totals()["requests"] == 400
        assert accountant.fleet_totals()["requests"] == 400

    def test_repeated_releases_accumulate(self, accountant):
        for round_number in range(1, 4):
            domain = Domain(f"gen-{round_number}")
            accountant.account(domain).charge_allocation(10)
            accountant.release_domain(domain)
        totals = accountant.fleet_totals()
        assert totals["allocated_bytes"] == 30
        assert totals["allocations"] == 3
        assert totals["released_domains"] == 3
