"""The LRMI calling convention (paper §3): capabilities by reference,
everything else deep-copied, applied recursively."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Capability,
    Domain,
    NotSerializableError,
    Remote,
    RemoteException,
    fast_copy,
    serializable,
    transfer,
    transfer_args,
    transfer_exception,
)


class Ping(Remote):
    def ping(self): ...


class PingImpl(Ping):
    def ping(self):
        return "pong"


@pytest.fixture()
def cap():
    return Capability.create(PingImpl(), domain=Domain("conv"))


@fast_copy
@serializable
class Holder:
    def __init__(self, inner):
        self.inner = inner


class TestPrimitivesPassThrough:
    @pytest.mark.parametrize("value", [
        None, True, 0, 17, -3, 2.5, "text", b"bytes", complex(1, 2),
    ])
    def test_identity(self, value):
        assert transfer(value) is value


class TestCapabilitiesByReference:
    def test_top_level(self, cap):
        assert transfer(cap) is cap

    def test_nested_in_container(self, cap):
        copied = transfer([cap, 1])
        assert copied[0] is cap
        assert copied is not None

    def test_nested_in_object_field(self, cap):
        copied = transfer(Holder(cap))
        assert copied.inner is cap

    def test_deeply_nested(self, cap):
        copied = transfer({"a": [Holder([cap])]})
        assert copied["a"][0].inner[0] is cap


class TestDeepCopy:
    def test_containers_copied(self):
        original = [1, [2, 3]]
        copied = transfer(original)
        assert copied == original
        assert copied is not original
        assert copied[1] is not original[1]

    def test_objects_copied_recursively(self):
        original = Holder(Holder([1]))
        copied = transfer(original)
        assert copied is not original
        assert copied.inner is not original.inner
        assert copied.inner.inner == [1]
        copied.inner.inner.append(2)
        assert original.inner.inner == [1]

    def test_unregistered_rejected(self):
        class Opaque:
            pass

        with pytest.raises(NotSerializableError):
            transfer(Opaque())

    def test_domain_object_cannot_cross(self):
        with pytest.raises(NotSerializableError):
            transfer(Domain("leaky"))


class TestModes:
    def test_serial_mode_ignores_fastcopy_registration(self):
        value = Holder([1])
        copied = transfer(value, mode="serial")
        assert copied.inner == [1]
        assert copied is not value

    def test_fast_mode_structural_containers(self):
        value = [bytearray(b"x"), {1: [2]}]
        copied = transfer(value, mode="fast")
        assert copied[0] == bytearray(b"x")
        assert copied[1] == {1: [2]}
        copied[1][1].append(3)
        assert value[1][1] == [2]

    def test_fast_mode_cycles(self):
        value = []
        value.append(value)
        copied = transfer(value, mode="fast")
        assert copied[0] is copied

    def test_bad_mode_rejected(self):
        from repro.core.convention import check_mode

        with pytest.raises(ValueError):
            check_mode("teleport")


class TestArgsAndExceptions:
    def test_transfer_args(self, cap):
        args, kwargs = transfer_args((1, [2], cap), {"k": [3]})
        assert args[0] == 1
        assert args[1] == [2]
        assert args[2] is cap
        assert kwargs["k"] == [3]

    def test_remote_exceptions_pass_through(self):
        exc = RemoteException("already kernel-level")
        assert transfer_exception(exc) is exc

    def test_copyable_exception_copied(self):
        exc = ValueError("detail")
        copied = transfer_exception(exc)
        assert isinstance(copied, ValueError)
        assert copied is not exc

    def test_uncopyable_exception_wrapped(self):
        class WeirdError(Exception):
            def __init__(self, handle):
                self.handle = handle
                super().__init__("weird")

            def __reduce__(self):
                raise TypeError

        # give it an unserializable payload and no registration by
        # breaking the args contract
        weird = WeirdError(object())
        weird.args = (object(),)
        copied = transfer_exception(weird)
        assert isinstance(copied, Exception)


class TestToctou:
    """The §2 TOCTOU attack: mutate a byte buffer after the callee
    validated it.  The calling convention defeats it: the callee works on
    a private copy."""

    def test_buffer_mutation_after_call_invisible(self):
        observed = {}

        class Loader(Remote):
            def submit(self, code): ...

        class LoaderImpl(Loader):
            def submit(self, code):
                observed["at_call"] = bytes(code)
                observed["buffer"] = code
                return True

        cap = Capability.create(LoaderImpl(), domain=Domain("toctou"))
        buffer = bytearray(b"GOOD CODE")
        cap.submit(buffer)
        buffer[:] = b"EVIL CODE"  # attacker overwrites after validation
        assert observed["buffer"] == bytearray(b"GOOD CODE")
        assert observed["at_call"] == b"GOOD CODE"


_payloads = st.recursive(
    st.integers() | st.text(max_size=8) | st.none() | st.binary(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3)
    | st.builds(Holder, children),
    max_leaves=12,
)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(_payloads)
    def test_copy_structurally_equal_and_disjoint(self, value):
        copied = transfer(value)
        assert _equal(copied, value)
        _assert_disjoint_mutables(copied, value)

    @settings(max_examples=40, deadline=None)
    @given(_payloads)
    def test_double_transfer_stable(self, value):
        once = transfer(value)
        twice = transfer(once)
        assert _equal(once, twice)


def _equal(a, b):
    if isinstance(a, Holder) and isinstance(b, Holder):
        return _equal(a.inner, b.inner)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _equal(a[k], b[k]) for k in a
        )
    return a == b


def _assert_disjoint_mutables(a, b):
    if isinstance(a, (list, dict, Holder)):
        assert a is not b
    if isinstance(a, Holder):
        _assert_disjoint_mutables(a.inner, b.inner)
    elif isinstance(a, list):
        for x, y in zip(a, b):
            _assert_disjoint_mutables(x, y)
    elif isinstance(a, dict):
        for key in a:
            _assert_disjoint_mutables(a[key], b[key])
