"""Sealed-region lifecycle: seal/grant/revoke, pooling, fail-closed reads.

Single-process coverage of the region kernel — every transition of the
grant state machine that does not need a second OS process (the wire leg
lives in ``tests/ipc/test_regions_xproc.py``, the SIGKILL leg in the
chaos matrix).  The invariant under test throughout: once a region is
revoked — explicitly, by pool recycle, by GC, or by owner death — every
read path raises the typed :class:`RegionRevokedError`, never returns
stale bytes.
"""

import gc
import os

import pytest

from repro.core import RegionRevokedError, SealedRegion, seal, transfer
from repro.core.regions import (
    HEADER_SIZE,
    REVOKED_GENERATION,
    AttachmentCache,
    _segment_name,
    _shared_memory,
    purge_pid,
)


@pytest.fixture()
def cache():
    attachments = AttachmentCache()
    try:
        yield attachments
    finally:
        attachments.close()


class TestSealing:
    def test_round_trip_reads(self):
        payload = bytes(range(256)) * 8
        region = seal(payload)
        try:
            assert len(region) == len(payload)
            assert region.bytes() == payload
            assert bytes(region) == payload
            assert region.owner and not region.revoked
        finally:
            region.revoke()

    def test_view_is_zero_copy_and_read_only(self):
        region = seal(b"immutable")
        try:
            view = region.view()
            assert bytes(view) == b"immutable"
            assert view.readonly
            with pytest.raises(TypeError):
                view[0] = 0
        finally:
            region.revoke()

    def test_seal_of_a_region_is_idempotent(self):
        region = seal(b"once")
        try:
            assert seal(region) is region
            assert SealedRegion.seal(region) is region
        finally:
            region.revoke()

    def test_seal_rejects_non_byteslike(self):
        with pytest.raises(TypeError):
            seal("text is not bytes")
        with pytest.raises(TypeError):
            seal([1, 2, 3])

    def test_equality_with_bytes_and_regions(self):
        region = seal(b"same")
        other = seal(b"same")
        different = seal(b"diff")
        try:
            assert region == b"same"
            assert b"same" == region  # reflected: bytes on the left
            assert region == other
            assert region != different
            assert region != b"nope"
        finally:
            region.revoke()
            other.revoke()
            different.revoke()

    def test_crosses_in_process_by_reference(self):
        region = seal(b"by-reference")
        try:
            assert transfer(region) is region
            copied = transfer([region, region])
            assert copied[0] is region and copied[1] is region
        finally:
            region.revoke()


class TestRevocation:
    def test_revoke_is_idempotent_and_latches(self):
        region = seal(b"short-lived")
        region.revoke()
        region.revoke()  # second revoke: no-op, no error
        assert region.revoked
        with pytest.raises(RegionRevokedError):
            region.bytes()
        with pytest.raises(RegionRevokedError):
            region.view()
        with pytest.raises(RegionRevokedError):
            region.grant_descriptor()

    def test_revoke_releases_issued_views(self):
        region = seal(b"viewed")
        view = region.view()
        region.revoke()
        with pytest.raises(ValueError):
            bytes(view)  # released memoryview: unusable, not stale

    def test_pool_recycle_bumps_generation(self):
        first = seal(b"a" * 64)
        name, generation = first.name, first.generation
        first.revoke()
        second = seal(b"b" * 64)  # same size class: recycled segment
        try:
            assert second.name == name
            assert second.generation > generation
        finally:
            second.revoke()

    def test_gc_of_unrevoked_owner_poisons_not_leaks(self, cache):
        """An owner dropped without revoke() must fail attached readers
        typed — the finalizer poisons the shared header."""
        region = seal(b"dropped on the floor")
        descriptor = region.grant_descriptor()
        view = cache.resolve(descriptor)
        assert view.bytes() == b"dropped on the floor"
        del region
        gc.collect()
        with pytest.raises(RegionRevokedError):
            view.bytes()
        with pytest.raises(RegionRevokedError):
            cache.resolve(descriptor)


class TestGrantDescriptors:
    def test_descriptor_shape(self):
        region = seal(b"d" * 32)
        try:
            kind, name, generation, offset, length = \
                region.grant_descriptor()
            assert kind == "region"
            assert name == region.name
            assert generation == region.generation != REVOKED_GENERATION
            assert offset == HEADER_SIZE
            assert length == 32
        finally:
            region.revoke()

    def test_resolve_round_trip(self, cache):
        region = seal(b"granted payload")
        try:
            view = cache.resolve(region.grant_descriptor())
            assert not view.owner
            assert view.bytes() == b"granted payload"
            assert view == region
        finally:
            region.revoke()

    def test_owner_revocation_reaches_attached_views(self, cache):
        """The shared header is the broadcast channel: no wire frame is
        needed for an attached process to observe the revocation."""
        region = seal(b"broadcast")
        view = cache.resolve(region.grant_descriptor())
        assert view.bytes() == b"broadcast"
        region.revoke()
        with pytest.raises(RegionRevokedError):
            view.bytes()
        assert view.revoked

    def test_stale_generation_refused_after_recycle(self, cache):
        """A descriptor that outlived a pool recycle must not read the
        NEW tenant's bytes."""
        first = seal(b"x" * 128)
        stale = first.grant_descriptor()
        first.revoke()
        second = seal(b"y" * 128)  # recycles the same segment
        try:
            assert second.name == stale[1]
            with pytest.raises(RegionRevokedError):
                cache.resolve(stale)
            # The current grant still resolves fine.
            fresh = cache.resolve(second.grant_descriptor())
            assert fresh.bytes() == b"y" * 128
        finally:
            second.revoke()

    def test_poison_generation_refused_without_attach(self, cache):
        with pytest.raises(RegionRevokedError):
            cache.resolve(("region", "jkr1g1", REVOKED_GENERATION, 16, 1))

    def test_unknown_segment_refused_typed(self, cache):
        with pytest.raises(RegionRevokedError):
            cache.resolve(("region", "jkr999999g999", 7, 16, 1))

    def test_out_of_bounds_grant_refused(self, cache):
        region = seal(b"z" * 16)
        try:
            kind, name, generation, offset, _length = \
                region.grant_descriptor()
            with pytest.raises(RegionRevokedError):
                cache.resolve((kind, name, generation, offset, 10_000))
        finally:
            region.revoke()


class TestOwnerDeath:
    def test_dead_owner_reads_fail_closed_and_purge_reclaims(self, cache):
        """A view whose owner was SIGKILLed must read as revoked (nobody
        can poison the header anymore), and ``purge_pid`` reclaims the
        dead owner's segments by name."""
        read_fd, write_fd = os.pipe()
        child = os.fork()
        if child == 0:  # the owner-to-be, dying without cleanup
            os.close(read_fd)
            region = seal(b"orphaned bytes")
            line = repr(region.grant_descriptor()).encode()
            os.write(write_fd, line)
            os.close(write_fd)
            os._exit(0)  # skips atexit: the segment outlives the owner
        os.close(write_fd)
        payload = os.read(read_fd, 4096)
        os.close(read_fd)
        os.waitpid(child, 0)
        descriptor = eval(payload)  # trusted: our own child wrote it
        assert descriptor[1].startswith(f"jkr{child}g")
        view = cache.resolve(descriptor)
        with pytest.raises(RegionRevokedError):
            view.bytes()
        cache.invalidate(descriptor[1])
        removed = purge_pid(child)
        assert descriptor[1] in removed
        assert purge_pid(child) == []  # idempotent


class TestPurgeAndCacheHygiene:
    def test_purge_pid_targets_only_that_pid(self):
        fake_pid = 4_000_000  # beyond pid_max: never a live process
        name = _segment_name(fake_pid, 1)
        segment = _shared_memory(create=True, size=4096, name=name)
        segment.close()
        mine = seal(b"still mine")
        try:
            removed = purge_pid(fake_pid)
            assert removed == [name]
            assert mine.bytes() == b"still mine"  # untouched
        finally:
            mine.revoke()

    def test_cache_close_reports_zero_failures_when_clean(self, cache):
        region = seal(b"clean close")
        view = cache.resolve(region.grant_descriptor())
        view.revoke()
        assert cache.close() == 0
        region.revoke()
