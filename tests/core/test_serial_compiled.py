"""The compiled transfer layer: registration-time writers/readers, batched
sequence tags, buffer pooling/reentrancy, and acyclic wire mode — all
asserted equivalent to the fully generic serializer path."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NotSerializableError, dumps, loads, serializable
from repro.core.serial import (
    DEFAULT_REGISTRY,
    ObjectReader,
    ObjectWriter,
    SerialRegistry,
)


def generic_dumps(value, registry=None):
    return ObjectWriter(registry, compiled=False).dumps(value)


def generic_loads(data, registry=None):
    return ObjectReader(data, registry, compiled=False).loads()


@serializable(fields=("a", "b", "c", "label", "blob", "extra"))
class Typed:
    a: int
    b: int
    c: float
    label: str
    blob: bytes

    def __init__(self, a=1, b=2, c=3.0, label="x", blob=b"y", extra=None):
        self.a, self.b, self.c = a, b, c
        self.label, self.blob, self.extra = label, blob, extra


@serializable
class Node:
    def __init__(self, value=None, link=None):
        self.value = value
        self.link = link


@serializable(fields=("payload",), acyclic=True)
class AcyclicBox:
    def __init__(self, payload):
        self.payload = payload


class TestCompiledGeneration:
    def test_registration_compiles_writer_and_reader(self):
        descriptor = DEFAULT_REGISTRY.lookup_class(Typed)
        assert descriptor.writer is not None
        assert descriptor.reader is not None
        assert "def _write_Typed" in descriptor.writer_source
        assert "def _read_Typed" in descriptor.reader_source

    def test_contiguous_numeric_fields_batch_into_one_struct(self):
        descriptor = DEFAULT_REGISTRY.lookup_class(Typed)
        # a, b, c collapse into one multi-field pack with a single
        # combined type check.
        assert "type(v0) is int and type(v1) is int and type(v2) is float" \
            in descriptor.writer_source
        assert descriptor.writer_source.count("except _PackError") == 1

    def test_dict_state_classes_stay_generic(self):
        descriptor = DEFAULT_REGISTRY.lookup_class(Node)
        assert descriptor.fields is None
        assert descriptor.writer is None


class TestWireCompatibility:
    """Compiled and generic paths are two implementations of one wire
    format: each side must read the other's bytes."""

    def payloads(self):
        return [
            Typed(),
            Typed(a=2**100, b=-1, c=float("inf"), label="üñï ✓",
                  blob=b"\x00\xff", extra=[1, "mixed", None]),
            Typed(a="not an int", b=None, c="nope", label=7, blob=3.5),
            {"k": [Typed(), {"nested": (1.5, "s")}]},
            ValueError("boom", 7),
        ]

    def test_compiled_reads_generic_bytes(self):
        for payload in self.payloads():
            data = generic_dumps(payload)
            assert _same_shape(loads(data), payload)

    def test_generic_reads_compiled_bytes(self):
        for payload in self.payloads():
            data = dumps(payload)
            assert _same_shape(generic_loads(data), payload)

    def test_byte_identical_without_batched_sequences(self):
        # Payloads with no homogeneous int/float sequences produce the
        # exact same bytes through either writer.
        for payload in [
            Typed(), {"a": Typed(label="z")}, ("s", 1, 2.5, None, b"b"),
        ]:
            assert dumps(payload) == generic_dumps(payload)

    def test_batched_sequences_round_trip_types(self):
        for payload in [
            [1, 2, 3], (4, 5, 6), [1.5, 2.5], (0.0, -0.0),
            [True, False], [1, True], [2**70, 1], [1, 2.0],
        ]:
            copy = loads(dumps(payload))
            assert copy == payload
            assert [type(item) for item in copy] \
                == [type(item) for item in payload]


class TestSharingAndCycles:
    def test_dag_sharing_preserved(self):
        shared = Typed(label="shared")
        copy = loads(dumps([shared, shared, [shared]]))
        assert copy[0] is copy[1]
        assert copy[2][0] is copy[0]

    def test_shared_batched_list_preserved(self):
        inner = [1, 2, 3]
        copy = loads(dumps({"x": inner, "y": inner}))
        assert copy["x"] is copy["y"]

    def test_object_cycle(self):
        node = Node("head")
        node.link = Node("tail", node)
        copy = loads(dumps(node))
        assert copy.link.link is copy

    def test_cycle_through_compiled_class(self):
        box = Typed()
        box.extra = {"self": box}
        copy = loads(dumps(box))
        assert copy.extra["self"] is copy


class TestAcyclicMode:
    def test_round_trip(self):
        copy = loads(dumps(AcyclicBox([1, "two"])))
        assert copy.payload == [1, "two"]

    def test_no_memo_entry_means_duplication_not_backref(self):
        box = AcyclicBox([1])
        copy = loads(dumps([box, box]))
        assert copy[0] is not copy[1]  # opt-in: sharing is not tracked
        assert copy[0].payload == copy[1].payload

    def test_generic_path_agrees_on_the_wire(self):
        box = AcyclicBox((1, "s"))
        assert generic_loads(dumps([box, box]))[1].payload == (1, "s")
        assert loads(generic_dumps([box, box]))[1].payload == (1, "s")

    def test_backrefs_after_acyclic_object_stay_aligned(self):
        shared = [1, "x"]
        value = [AcyclicBox(0), shared, shared]
        for data in (dumps(value), generic_dumps(value)):
            for copy in (loads(data), generic_loads(data)):
                assert copy[1] is copy[2]


class TestContainerHandlerAliasing:
    """The convention-layer structural container handlers must preserve
    the same within-transfer aliasing the serializer path always did."""

    def test_shared_bytearray_in_list(self):
        from repro.core import transfer

        shared = bytearray(b"x")
        copy = transfer([shared, shared])
        assert copy[0] is copy[1]
        assert copy[0] is not shared

    def test_shared_serializable_instance_copies_once(self):
        from repro.core import transfer

        node = Node("payload")
        copy = transfer([node, {"again": node}])
        assert copy[0] is copy[1]["again"]
        assert copy[0] is not node

    def test_shared_substructure_across_set_elements(self):
        from repro.core import fast_copy, transfer

        @fast_copy(fields=("value",))
        class FcNode:
            def __init__(self, value):
                self.value = value

        shared = bytearray(b"s")
        copy = transfer({FcNode(shared), FcNode(shared)})
        values = [element.value for element in copy]
        assert values[0] is values[1]
        assert values[0] is not shared

    def test_shared_substructure_across_frozenset_elements(self):
        from repro.core import fast_copy, transfer

        @fast_copy(fields=("value",))
        class FzNode:
            def __init__(self, value):
                self.value = value

        shared = bytearray(b"f")
        copy = transfer(frozenset({FzNode(shared), FzNode(shared)}))
        values = [element.value for element in copy]
        assert values[0] is values[1]

    def test_fast_mode_shared_bytearray(self):
        from repro.core import transfer

        shared = bytearray(b"y")
        copy = transfer([shared, {"k": shared}], mode="fast")
        assert copy[0] is copy[1]["k"]

    def test_shared_mixed_frozenset_copies_once(self):
        from repro.core import transfer

        mixed = frozenset({Node("n")})
        copy = transfer([mixed, mixed])
        assert copy[0] is copy[1]

    def test_spoofed_class_attribute_cannot_cross_by_reference(self):
        from repro.core import fast_copy, transfer

        class Liar:
            # Claims to be an int via __class__; type() knows better.
            @property
            def __class__(self):
                return int

        @fast_copy(fields=("inner",))
        class Carrier:
            def __init__(self, inner):
                self.inner = inner

        with pytest.raises(NotSerializableError):
            transfer(Carrier(Liar()))

        @fast_copy
        class DictCarrier:
            def __init__(self, inner):
                self.inner = inner

        with pytest.raises(NotSerializableError):
            transfer(DictCarrier(Liar()))


class TestSubclasses:
    def test_container_subclasses_copy_structurally(self):
        from repro.core import transfer

        class MyList(list):
            pass

        for mode in ("fast", "auto"):
            copied = transfer([MyList([1, 2])], mode=mode)
            assert copied[0] == [1, 2]
            assert type(copied[0]) is MyList
            assert copied[0] is not None

    def test_dict_subclasses_copy_via_dict_protocol(self):
        import collections

        from repro.core import transfer

        counter = collections.Counter({"a": 5, "b": 2})
        ordered = collections.OrderedDict([("x", [1]), ("y", 2)])
        for mode in ("fast", "auto"):
            copied = transfer(counter, mode=mode)
            assert copied == counter  # counts survive, not key-iteration
            assert type(copied) is collections.Counter
            copied = transfer(ordered, mode=mode)
            assert copied == ordered
            assert type(copied) is collections.OrderedDict
            assert copied["x"] is not ordered["x"]

    def test_serializable_capability_subclass_stays_by_reference(self):
        from repro.core import Capability, Domain, Remote

        class Iface(Remote):
            def poke(self): ...

        class Impl(Iface):
            def poke(self):
                return "live"

        cap = Capability.create(Impl(), domain=Domain("capser"))
        serializable(type(cap), name="test.StubByValue?")
        try:
            table = []
            data = dumps({"cap": cap}, capability_table=table)
            copy = loads(data, capability_table=table)
            assert copy["cap"] is cap  # by reference, never byte-encoded
            with pytest.raises(NotSerializableError, match="outside an LRMI"):
                dumps(cap)
        finally:
            registry = DEFAULT_REGISTRY
            descriptor = registry.lookup_class(type(cap))
            del registry._by_class[type(cap)]
            del registry._by_name[descriptor.name]
            del registry._by_encoded[descriptor.name.encode("utf-8")]

    def test_subclass_of_registered_class_rejected(self):
        class Sub(Typed):
            pass

        with pytest.raises(NotSerializableError, match="not registered"):
            dumps(Sub())
        with pytest.raises(NotSerializableError, match="not registered"):
            generic_dumps(Sub())


class TestReaderFallback:
    def test_mismatched_registration_falls_back_to_stream_names(self):
        class Swapped:
            def __init__(self, first, second):
                self.first = first
                self.second = second

        writer_side = SerialRegistry()
        writer_side.register(Swapped, name="fb.Swapped",
                             fields=("first", "second"))
        reader_side = SerialRegistry()
        reader_side.register(Swapped, name="fb.Swapped",
                             fields=("second", "first"))

        data = ObjectWriter(writer_side).dumps(Swapped(1, "two"))
        copy = ObjectReader(data, reader_side).loads()
        assert copy.first == 1
        assert copy.second == "two"

    def test_fallback_keeps_backref_indices_aligned(self):
        class Holder:
            def __init__(self, inner, tail):
                self.inner = inner
                self.tail = tail

        writer_side = SerialRegistry()
        writer_side.register(Holder, name="fb.Holder",
                             fields=("inner", "tail"))
        reader_side = SerialRegistry()
        reader_side.register(Holder, name="fb.Holder",
                             fields=("tail", "inner"))

        shared = ["s"]
        data = ObjectWriter(writer_side).dumps(
            [Holder(shared, 1), shared]
        )
        copy = ObjectReader(data, reader_side).loads()
        assert copy[0].inner is copy[1]


class TestReentrancy:
    def test_nested_dumps_during_write_does_not_corrupt(self):
        probe = {}

        @serializable(fields=("trigger", "tail"))
        class Reentrant:
            def __init__(self):
                self._trigger = "armed"
                self._tail = 99

            @property
            def trigger(self):
                # A field read that serializes something else mid-write —
                # the shape of a capability stub invoked during an LRMI
                # argument copy.
                probe["nested"] = dumps([1, 2, 3])
                return "fired"

            @trigger.setter
            def trigger(self, value):
                self._trigger = value

            @property
            def tail(self):
                return self._tail

            @tail.setter
            def tail(self, value):
                self._tail = value

        copy = loads(dumps(Reentrant()))
        assert copy._trigger == "fired"
        assert copy._tail == 99
        assert loads(probe["nested"]) == [1, 2, 3]

    def test_same_writer_instance_is_reusable(self):
        writer = ObjectWriter()
        first = writer.dumps([1, "a"])
        second = writer.dumps([1, "a"])
        assert first == second
        assert loads(second) == [1, "a"]

    def test_concurrent_dumps_across_threads(self):
        payloads = [
            [index, "x" * index, {"n": index}] for index in range(8)
        ]
        failures = []

        def worker(payload):
            try:
                for _ in range(200):
                    if loads(dumps(payload)) != payload:
                        failures.append(payload)
                        return
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(payload,))
            for payload in payloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False) | st.text(max_size=12)
    | st.binary(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=4), children, max_size=4)
    | st.builds(lambda v: Typed(extra=v), children)
    | st.builds(Node, children),
    max_leaves=24,
)


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(_values)
    def test_compiled_round_trip_equals_generic_round_trip(self, value):
        via_compiled = loads(dumps(value))
        via_generic = generic_loads(generic_dumps(value))
        assert _same_shape(via_compiled, via_generic)

    @settings(max_examples=60, deadline=None)
    @given(_values)
    def test_cross_mode_streams_interchangeable(self, value):
        assert _same_shape(loads(generic_dumps(value)),
                           generic_loads(dumps(value)))

    @settings(max_examples=60, deadline=None)
    @given(_values)
    def test_deterministic(self, value):
        assert dumps(value) == dumps(value)


def _same_shape(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, Typed):
        return (a.a, a.b, a.c, a.label, a.blob) \
            == (b.a, b.b, b.c, b.label, b.blob) \
            and _same_shape(a.extra, b.extra)
    if isinstance(a, Node):
        return _same_shape(a.value, b.value) and _same_shape(a.link, b.link)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            _same_shape(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            _same_shape(a[key], b[key]) for key in a
        )
    if isinstance(a, BaseException):
        return a.args == b.args
    return a == b


@serializable(fields=("samples", "weights"))
class Batched:
    samples: list[int]
    weights: list[float]

    def __init__(self, samples=(), weights=()):
        self.samples = list(samples)
        self.weights = list(weights)


class TestByteWideBatches:
    """The u8 batch tags: an all-0..255 int sequence packs via
    ``bytes(items)`` — an eighth of the ``>Nq`` payload — without
    loosening the 64-bit tags' strict no-bool semantics."""

    def test_u8_payload_is_byte_wide(self):
        small = dumps(list(range(256)))
        wide = dumps([256] + list(range(1, 256)))  # one element overflows
        assert len(small) < len(wide) - 7 * 250

    def test_u8_round_trip_types_and_values(self):
        for payload in [
            list(range(256)), tuple(range(256)), [0], (255,),
            [0, 255, 128],
        ]:
            copy = loads(dumps(payload))
            assert copy == payload
            assert type(copy) is type(payload)
            assert all(type(item) is int for item in copy)

    def test_bools_and_negatives_stay_off_the_u8_path(self):
        for payload in [[True, False], [1, True], [-1, 5], [0, 256]]:
            copy = loads(dumps(payload))
            assert copy == payload
            assert [type(item) for item in copy] \
                == [type(item) for item in payload]

    def test_generic_reader_rejects_nothing_it_wrote(self):
        # The u8 tags are compiled-writer-only; the generic reader (and
        # the compiled one) must both decode them.
        payload = [7] * 100
        data = dumps(payload)
        assert loads(data) == payload
        assert generic_loads(data) == payload

    def test_truncated_u8_stream_is_typed_error(self):
        data = dumps(list(range(64)))
        with pytest.raises(NotSerializableError):
            loads(data[:-3])


class TestDeclaredBatchFields:
    """``list[int]`` / ``list[float]`` annotations skip the homogeneity
    scan; the declaration is trusted, and lying payloads still round-trip
    through the generic per-element fallback."""

    def test_declared_fields_round_trip(self):
        box = Batched(samples=range(200), weights=[0.5, 1.5, -2.0])
        copy = loads(dumps(box))
        assert copy.samples == list(range(200))
        assert copy.weights == [0.5, 1.5, -2.0]

    def test_declared_int_field_uses_u8_packing_when_possible(self):
        tight = dumps(Batched(samples=[9] * 400))
        loose = dumps(Batched(samples=[9] * 399 + [300]))
        assert len(tight) < len(loose) - 7 * 390

    def test_lying_declaration_falls_back_per_element(self):
        box = Batched(samples=[1, "nope", 3])  # violates list[int]
        copy = loads(dumps(box))
        assert copy.samples == [1, "nope", 3]

    def test_int_elements_in_float_field_pack_as_floats(self):
        box = Batched(weights=[1, 2.5])
        copy = loads(dumps(box))
        assert copy.weights == [1.0, 2.5]

    def test_generic_writer_agrees_on_values(self):
        box = Batched(samples=range(50), weights=[3.25])
        via_generic = generic_loads(generic_dumps(box))
        via_compiled = loads(dumps(box))
        assert via_compiled.samples == via_generic.samples
        assert via_compiled.weights == via_generic.weights
