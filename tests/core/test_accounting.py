"""Per-domain resource accounting."""

import pytest

from repro.core import Capability, Domain, Remote, get_accountant, serializable
from repro.core.accounting import Accountant, install, uninstall


class Sink(Remote):
    def take(self, value): ...


class SinkImpl(Sink):
    def take(self, value):
        return 0


@serializable
class Blob:
    def __init__(self, data):
        self.data = data


@pytest.fixture()
def accountant():
    accountant = Accountant()
    install(accountant)
    yield accountant
    uninstall()


class TestAccounts:
    def test_fresh_account_zeroed(self, accountant):
        account = accountant.account(Domain("acct0"))
        assert account.snapshot() == {
            "bytes_copied_in": 0,
            "copy_operations": 0,
            "allocations": 0,
            "allocated_bytes": 0,
            "requests": 0,
        }

    def test_charge_allocation(self, accountant):
        domain = Domain("acct1")
        accountant.charge_allocation(128, domain=domain)
        accountant.charge_allocation(64, domain=domain)
        account = accountant.account(domain)
        assert account.allocations == 2
        assert account.allocated_bytes == 192

    def test_lrmi_copies_charged_to_callee(self, accountant):
        server = Domain("acct-server")
        cap = server.run(lambda: Capability.create(SinkImpl(),
                                                   copy="serial"))
        cap.take(Blob(b"x" * 100))
        account = accountant.account(server)
        assert account.copy_operations >= 1
        assert account.bytes_copied_in > 100

    def test_bigger_payload_bigger_charge(self, accountant):
        server = Domain("acct-server2")
        cap = server.run(lambda: Capability.create(SinkImpl(),
                                                   copy="serial"))
        cap.take(Blob(b"x" * 10))
        small = accountant.account(server).bytes_copied_in
        cap.take(Blob(b"x" * 1000))
        big = accountant.account(server).bytes_copied_in - small
        assert big > small

    def test_release_domain_closes_account(self, accountant):
        domain = Domain("acct2")
        accountant.charge_allocation(10, domain=domain)
        released = accountant.release_domain(domain)
        assert released.allocated_bytes == 10
        assert accountant.account(domain).allocated_bytes == 0

    def test_report_lists_all_domains(self, accountant):
        accountant.charge_allocation(1, domain=Domain("acct-a"))
        accountant.charge_allocation(2, domain=Domain("acct-b"))
        report = accountant.report()
        assert "acct-a" in report
        assert "acct-b" in report

    def test_default_accountant_exists(self):
        assert get_accountant() is get_accountant()

    def test_charges_outside_domains_dropped(self, accountant):
        accountant.charge_copy(100, domain=None)
        # no current domain on this thread and none passed: silently
        # dropped rather than mis-charged
        assert accountant.report() == {}

    def test_charge_request(self, accountant):
        domain = Domain("acct-req")
        accountant.charge_request(domain=domain)
        accountant.charge_request(domain=domain)
        assert accountant.account(domain).requests == 2

    def test_sharded_counter_concurrent_increments_exact(self):
        import threading

        from repro.core.accounting import ShardedCounter

        counter = ShardedCounter()
        threads = [
            threading.Thread(
                target=lambda: [counter.add(1) for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_sharded_counter_folds_dead_thread_cells(self):
        import threading

        from repro.core.accounting import ShardedCounter

        counter = ShardedCounter()
        threads = [
            threading.Thread(target=lambda: counter.add(10))
            for _ in range(20)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        del threads
        assert counter.value == 200
        # dead threads' cells folded into the base, not kept forever
        assert len(counter._cells) <= 1
        counter.add(5)
        assert counter.value == 205
