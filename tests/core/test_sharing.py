"""Shared-class rules: no static state, transitive consistency."""

import pytest

from repro.core import (
    Domain,
    SharingError,
    check_no_static_state,
    references,
    share_class,
)


class CleanMessage:
    """No static state: shareable."""

    VERSION = 3  # immutable constant: allowed
    NAMES = ("a", "b")  # immutable tuple: allowed

    def __init__(self, text):
        self.text = text

    def shout(self):
        return self.text.upper()

    @property
    def size(self):
        return len(self.text)

    @staticmethod
    def helper():
        return 1

    @classmethod
    def make(cls):
        return cls("")


class LeakyRegistry:
    """Mutable class attribute: the covert channel the rule forbids."""

    instances = []

    def __init__(self):
        LeakyRegistry.instances.append(self)


class TestStaticStateCheck:
    def test_clean_class_passes(self):
        assert check_no_static_state(CleanMessage) is CleanMessage

    def test_mutable_list_rejected(self):
        with pytest.raises(SharingError, match="mutable static state"):
            check_no_static_state(LeakyRegistry)

    def test_mutable_dict_rejected(self):
        class WithDict:
            cache = {}

        with pytest.raises(SharingError):
            check_no_static_state(WithDict)

    def test_mutable_set_rejected(self):
        class WithSet:
            seen = set()

        with pytest.raises(SharingError):
            check_no_static_state(WithSet)

    def test_nested_mutable_in_tuple_rejected(self):
        class Sneaky:
            config = (1, [2])  # tuple hiding a list

        with pytest.raises(SharingError):
            check_no_static_state(Sneaky)

    def test_slots_and_annotations_allowed(self):
        class Slotted:
            __slots__ = ("x",)
            limit: int = 10

        assert check_no_static_state(Slotted) is Slotted


class TestSharedClass:
    def test_share_and_install(self):
        shared = share_class(CleanMessage)
        domain = Domain("sharee")
        installed = shared.install(domain)
        assert "CleanMessage" in installed
        module = domain.load_module(
            "uses", "msg = CleanMessage('hi')\nresult = msg.shout()\n"
        )
        assert module.result == "HI"

    def test_leaky_class_cannot_be_shared(self):
        with pytest.raises(SharingError):
            share_class(LeakyRegistry)

    def test_referenced_classes_install_together(self):
        class Part:
            def __init__(self):
                self.n = 1

        @references(Part)
        class Whole:
            def make_part(self):
                return Part()

        shared = share_class(Whole)
        assert Part in shared.referenced
        domain = Domain("sharee2")
        installed = shared.install(domain)
        assert set(installed) == {"Whole", "Part"}
        module = domain.load_module(
            "uses", "w = Whole()\nn = w.make_part().n\n"
        )
        assert module.n == 1

    def test_leaky_referenced_class_rejected(self):
        @references(LeakyRegistry)
        class Carrier:
            pass

        with pytest.raises(SharingError):
            share_class(Carrier)

    def test_transitive_references(self):
        class Inner:
            pass

        @references(Inner)
        class Middle:
            pass

        shared = share_class(CleanMessage, referenced=[Middle])
        assert Inner in shared.referenced
        assert Middle in shared.referenced

    def test_conflicting_install_rejected(self):
        """A domain cannot bind one name to two different classes —
        the consistency rule."""
        class Thing:
            pass

        first = Thing

        class Thing:  # noqa: F811 - deliberate redefinition
            pass

        second = Thing
        domain = Domain("conflict")
        share_class(first).install(domain)
        with pytest.raises(SharingError, match="different class"):
            share_class(second).install(domain)

    def test_reinstalling_same_class_ok(self):
        domain = Domain("idempotent")
        shared = share_class(CleanMessage)
        shared.install(domain)
        shared.install(domain)  # no error
