"""The measurement harness: timers, table rendering, paper data, and the
workload fixtures (smoke-level: tiny batches)."""

import pytest

from repro.bench import (
    PAGE_SIZES,
    Table1Fixture,
    Table4Fixture,
    format_table,
    make_documents,
    measure,
    measure_batch,
    paper,
)


class TestTimer:
    def test_measure_returns_positive(self):
        result = measure(lambda: sum(range(50)), min_time=0.001, rounds=2)
        assert result.ns_per_op > 0
        assert result.us_per_op == result.ns_per_op / 1000.0

    def test_measure_calibrates_number(self):
        result = measure(lambda: None, min_time=0.001, rounds=2)
        assert result.number >= 1

    def test_measure_batch(self):
        calls = []

        def batched(n):
            calls.append(n)

        result = measure_batch(batched, batch=100, rounds=2)
        assert calls == [100, 100]
        assert result.number == 100


class TestTableRendering:
    def test_alignment_and_values(self):
        text = format_table(
            "Demo", ["name", "value"],
            [["row-a", 1.234], ["row-b", 12345.0]],
        )
        assert "Demo" in text
        assert "row-a" in text
        assert "1.234" in text
        assert "12,345" in text

    def test_large_and_small_float_formats(self):
        text = format_table("T", ["x"], [[0.031], [42.5], [9001.0]])
        assert "0.031" in text
        assert "42.5" in text
        assert "9,001" in text


class TestPaperData:
    def test_all_tables_present(self):
        assert set(paper.TABLE1["rows"]) == {
            "Regular method invocation",
            "Interface method invocation",
            "Thread info lookup",
            "Acquire/release lock",
            "J-Kernel LRMI",
        }
        assert set(paper.TABLE2["rows"]) == {
            "NT-RPC", "COM out-of-proc", "COM in-proc",
        }
        assert set(paper.TABLE5["rows"]) == {
            "10 bytes", "100 bytes", "1000 bytes",
        }
        assert set(paper.TABLE6["rows"]) == {
            "L4", "Exokernel", "Eros", "J-Kernel",
        }

    def test_paper_shapes_internally_consistent(self):
        t1 = paper.TABLE1["rows"]
        # the paper's own numbers satisfy the shapes we assert of ours
        assert t1["Interface method invocation"][0] > \
            10 * t1["Regular method invocation"][0]
        assert t1["Acquire/release lock"][1] > \
            5 * t1["Acquire/release lock"][0]
        t2 = paper.TABLE2["rows"]
        assert t2["COM out-of-proc"] > 1000 * t2["COM in-proc"]
        for iis, jws, jk in paper.TABLE5["rows"].values():
            assert jws < iis / 2
            assert jk > iis / 2


class TestWorkloadFixtures:
    def test_documents_cover_page_sizes(self):
        documents = make_documents()
        for size in PAGE_SIZES:
            assert len(documents[f"/doc{size}"]) == size

    @pytest.mark.parametrize("profile", ["msvm", "sunvm"])
    def test_table1_fixture_measures(self, profile):
        fixture = Table1Fixture(profile)
        row = fixture.row(batch=60)
        assert set(row) == set(paper.TABLE1["rows"])
        assert all(value > 0 for value in row.values())

    def test_table1_lrmi3_returns_value(self):
        fixture = Table1Fixture("sunvm")
        assert fixture.lrmi3_us(batch=30) > 0

    def test_table4_fixture_measures_all_shapes(self):
        fixture = Table4Fixture()
        for shape in Table4Fixture.SHAPES:
            assert fixture.copy_us(shape, "serial", min_time=0.002) > 0
            assert fixture.copy_us(shape, "fast", min_time=0.002) > 0

    def test_table4_raw_bytes_variant(self):
        fixture = Table4Fixture()
        assert fixture.raw_bytes_us(64, "serial", min_time=0.002) > 0


class TestRunnerRegistry:
    def test_all_six_tables_registered(self):
        from repro.bench.runner import TABLES

        assert sorted(TABLES) == [1, 2, 3, 4, 5, 6]
        for title, builder in TABLES.values():
            assert callable(builder)
            assert title.startswith("Table")
