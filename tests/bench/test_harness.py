"""The measurement harness: timers, table rendering, paper data, and the
workload fixtures (smoke-level: tiny batches)."""

import pytest

from repro.bench import (
    PAGE_SIZES,
    Table1Fixture,
    Table4Fixture,
    format_table,
    make_documents,
    measure,
    measure_batch,
    paper,
)


class TestTimer:
    def test_measure_returns_positive(self):
        result = measure(lambda: sum(range(50)), min_time=0.001, rounds=2)
        assert result.ns_per_op > 0
        assert result.us_per_op == result.ns_per_op / 1000.0

    def test_measure_calibrates_number(self):
        result = measure(lambda: None, min_time=0.001, rounds=2)
        assert result.number >= 1

    def test_measure_batch(self):
        calls = []

        def batched(n):
            calls.append(n)

        result = measure_batch(batched, batch=100, rounds=2)
        assert calls == [100, 100]
        assert result.number == 100


class TestTableRendering:
    def test_alignment_and_values(self):
        text = format_table(
            "Demo", ["name", "value"],
            [["row-a", 1.234], ["row-b", 12345.0]],
        )
        assert "Demo" in text
        assert "row-a" in text
        assert "1.234" in text
        assert "12,345" in text

    def test_large_and_small_float_formats(self):
        text = format_table("T", ["x"], [[0.031], [42.5], [9001.0]])
        assert "0.031" in text
        assert "42.5" in text
        assert "9,001" in text


class TestPaperData:
    def test_all_tables_present(self):
        assert set(paper.TABLE1["rows"]) == {
            "Regular method invocation",
            "Interface method invocation",
            "Thread info lookup",
            "Acquire/release lock",
            "J-Kernel LRMI",
        }
        assert set(paper.TABLE2["rows"]) == {
            "NT-RPC", "COM out-of-proc", "COM in-proc",
        }
        assert set(paper.TABLE5["rows"]) == {
            "10 bytes", "100 bytes", "1000 bytes",
        }
        assert set(paper.TABLE6["rows"]) == {
            "L4", "Exokernel", "Eros", "J-Kernel",
        }

    def test_paper_shapes_internally_consistent(self):
        t1 = paper.TABLE1["rows"]
        # the paper's own numbers satisfy the shapes we assert of ours
        assert t1["Interface method invocation"][0] > \
            10 * t1["Regular method invocation"][0]
        assert t1["Acquire/release lock"][1] > \
            5 * t1["Acquire/release lock"][0]
        t2 = paper.TABLE2["rows"]
        assert t2["COM out-of-proc"] > 1000 * t2["COM in-proc"]
        for iis, jws, jk in paper.TABLE5["rows"].values():
            assert jws < iis / 2
            assert jk > iis / 2


class TestWorkloadFixtures:
    def test_documents_cover_page_sizes(self):
        documents = make_documents()
        for size in PAGE_SIZES:
            assert len(documents[f"/doc{size}"]) == size

    @pytest.mark.parametrize("profile", ["msvm", "sunvm"])
    def test_table1_fixture_measures(self, profile):
        fixture = Table1Fixture(profile)
        row = fixture.row(batch=60)
        assert set(row) == set(paper.TABLE1["rows"])
        assert all(value > 0 for value in row.values())

    def test_table1_lrmi3_returns_value(self):
        fixture = Table1Fixture("sunvm")
        assert fixture.lrmi3_us(batch=30) > 0

    def test_table4_fixture_measures_all_shapes(self):
        fixture = Table4Fixture()
        for shape in Table4Fixture.SHAPES:
            assert fixture.copy_us(shape, "serial", min_time=0.002) > 0
            assert fixture.copy_us(shape, "fast", min_time=0.002) > 0

    def test_table4_raw_bytes_variant(self):
        fixture = Table4Fixture()
        assert fixture.raw_bytes_us(64, "serial", min_time=0.002) > 0


class TestRunnerRegistry:
    def test_all_six_tables_registered(self):
        from repro.bench.runner import TABLES

        assert sorted(TABLES) == [1, 2, 3, 4, 5, 6]
        for title, builder in TABLES.values():
            assert callable(builder)
            assert title.startswith("Table")


def _load_save_baseline():
    import importlib.util
    from pathlib import Path

    path = (Path(__file__).resolve().parents[2]
            / "benchmarks" / "save_baseline.py")
    spec = importlib.util.spec_from_file_location("save_baseline", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBaselineCompare:
    """The --check comparison logic, exercised without measuring."""

    def test_matching_metrics_within_tolerance_pass(self):
        sb = _load_save_baseline()
        lines, regressions, new_keys = sb.compare_metrics(
            {"null_lrmi_us": 1.0}, {"null_lrmi_us": 1.1}, tolerance=0.20
        )
        assert regressions == []
        assert new_keys == []
        assert any("null_lrmi_us" in line for line in lines)

    def test_regression_detected_beyond_tolerance(self):
        sb = _load_save_baseline()
        _lines, regressions, _new = sb.compare_metrics(
            {"null_lrmi_us": 1.0}, {"null_lrmi_us": 1.5}, tolerance=0.20
        )
        assert regressions == [("null_lrmi_us", 1.0, 1.5)]

    def test_unknown_measured_keys_are_record_only(self):
        """The satellite fix: keys the snapshot predates (prefork_*,
        xproc_*) must never read as regressions — record-only."""
        sb = _load_save_baseline()
        lines, regressions, new_keys = sb.compare_metrics(
            {"null_lrmi_us": 1.0},
            {"null_lrmi_us": 1.0,
             "xproc_null_lrmi_us": 60.0,
             "prefork_pages_per_sec_2w": 9000.0},
        )
        assert regressions == []
        assert set(new_keys) == {"xproc_null_lrmi_us",
                                 "prefork_pages_per_sec_2w"}
        assert sum("record-only" in line for line in lines) >= 2

    def test_dropped_snapshot_keys_do_not_fail(self):
        sb = _load_save_baseline()
        lines, regressions, _new = sb.compare_metrics(
            {"renamed_away_us": 5.0}, {}
        )
        assert regressions == []
        assert any("dropped" in line for line in lines)

    def test_exempt_keys_never_gate(self):
        """xproc socket round trips are recorded, not µs-gated: the wire
        cost tracks the host kernel, the gated signal is the ratio."""
        sb = _load_save_baseline()
        _lines, regressions, _new = sb.compare_metrics(
            {"xproc_null_lrmi_us": 50.0}, {"xproc_null_lrmi_us": 500.0}
        )
        assert regressions == []

    def test_shape_gate_xproc_ratio_floor(self):
        sb = _load_save_baseline()
        regressions = []
        snapshot = {"shape": {"xproc_over_inproc_null_lrmi": 2.0}}
        sb.check_shapes(snapshot, regressions, remeasure_http=False)
        assert regressions == [
            ("shape.xproc_over_inproc_null_lrmi", sb.XPROC_RATIO_FLOOR, 2.0)
        ]

    def test_shape_gate_prefork_only_on_multicore(self):
        sb = _load_save_baseline()
        base = {
            "shape": {},
            "prefork_pages_per_sec_2w": 100.0,
            "http_pages_per_sec_jk_100b": 200.0,
        }
        # single core: recorded, never gated
        regressions = []
        sb.check_shapes({**base, "cpu_count": 1}, regressions,
                        remeasure_http=False)
        assert regressions == []
        # multi core: 2 workers below the single-process number fails
        regressions = []
        sb.check_shapes({**base, "cpu_count": 4}, regressions,
                        remeasure_http=False)
        assert regressions and regressions[0][0] == \
            "prefork_2w_over_table5_jk"

    def test_step_summary_written_and_formatted(self, tmp_path):
        sb = _load_save_baseline()
        snapshot = {
            "shape": {"jk_over_native_http": 0.83,
                      "xproc_over_inproc_null_lrmi": 66.0,
                      "prefork_2w_over_1w": 0.95},
            "null_lrmi_us": 0.86,
            "xproc_null_lrmi_us": 56.1,
            "cpu_count": 1,
        }
        line = sb.step_summary_line(snapshot, [], ["prefork_pages_per_sec_2w"])
        assert line.startswith("perf: ")
        assert "0.83" in line and "66.0" in line
        target = tmp_path / "summary.md"
        assert sb.write_step_summary(line, stream_path=str(target))
        assert target.read_text().strip() == line

    def test_step_summary_noop_outside_actions(self, monkeypatch):
        sb = _load_save_baseline()
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert sb.write_step_summary("perf: nothing") is False


class TestTable6Fixture:
    """Smoke: the cross-process fixture measures, and the paper's
    in-process-wins shape holds with a wide margin."""

    def test_crossing_costs_have_paper_shape(self):
        from repro.bench import Table6Fixture

        fixture = Table6Fixture()
        try:
            inproc = fixture.inproc_null_us(min_time=0.02)
            xproc = fixture.xproc_null_us(min_time=0.02)
        finally:
            fixture.close()
        assert inproc > 0
        assert xproc > 5 * inproc, (inproc, xproc)

    def test_prefork_throughput_positive(self):
        from repro.bench import Table6Fixture

        pages = Table6Fixture.prefork_pages_per_sec(
            1, clients=2, requests_per_client=25
        )
        assert pages > 0
