"""Differential LRMI testing: in-process kernel vs cross-process wire.

``tests/jkvm/test_lrmi_differential.py`` pins the hosted kernel to the
enforced VM kernel with one scenario matrix; this suite runs the SAME
matrix through the cross-process transport (``repro.ipc.lrmi``) — the
same remote interface, implemented by the same class, deployed in a
forked domain-host process behind a marshalling proxy — and asserts the
caller observes identical outcomes.  The calling convention is one
contract; moving the callee to another OS process must not change it:

* null call, int-argument call (values returned unchanged),
* reference arguments (callee mutations invisible to the caller; the
  returned copy carries them),
* immutable ``str`` arguments (value preserved),
* object graphs (the copy recurses; the caller's nodes stay untouched),
* revocation before a call and revocation *during* a call (the in-flight
  call completes; the next one fails),
* callee exceptions (propagate, typed, with the caller usable after),
* cross-process re-entry (caller -> host -> caller callback),

plus the transport-only scenarios no in-process kernel has: a crashed
host process surfacing as :class:`DomainUnavailableException` (never a
hang), revocation broadcast flipping the client-side proxy, and kernel
stats over the control channel.
"""

import os
import signal
import time

import pytest

from repro.core import (
    Capability,
    Domain,
    DomainUnavailableException,
    Remote,
    RevokedException,
)
from repro.ipc import DomainHostProcess, RemoteCapability, connect

OK = "ok"
REVOKED = "revoked"
CALLEE_EXCEPTION = "callee-exception"


class IDiff(Remote):
    def ping(self): ...
    def add3(self, a, b, c): ...
    def fill(self, buf): ...
    def echo(self, text): ...
    def boom(self): ...
    def revoke_it(self, cap): ...
    def call_back(self, cb): ...
    def bump(self, outer): ...


class DiffImpl(IDiff):
    def ping(self):
        return 99

    def add3(self, a, b, c):
        return a + b + c

    def fill(self, buf):
        buf[0] = 77
        return buf

    def echo(self, text):
        return text

    def boom(self):
        raise RuntimeError("boom")

    def revoke_it(self, cap):
        cap.revoke()
        return 1

    def call_back(self, cb):
        return cb.ping() + 1

    def bump(self, outer):
        inner = outer[0]
        inner[0] += 1
        return inner


class PingImpl(IDiff):
    """Client-side callback target for the re-entry scenario."""

    def ping(self):
        return 99

    def add3(self, a, b, c): ...
    def fill(self, buf): ...
    def echo(self, text): ...
    def boom(self): ...
    def revoke_it(self, cap): ...
    def call_back(self, cb): ...
    def bump(self, outer): ...


def _diff_setup():
    domain = Domain("xdiff-server")
    cap = domain.run(lambda: Capability.create(DiffImpl(), label="diff"))
    return {"diff": cap}


class InProcessWorld:
    """The hosted-kernel reference leg (same shape as the jkvm suite)."""

    name = "in-process"

    def __init__(self):
        self.server = Domain("diff-server")
        self.client_domain = Domain("diff-client")
        self.cap = self.server.run(lambda: Capability.create(DiffImpl()))

    def close(self):
        pass

    def _call(self, fn):
        try:
            return self.client_domain.run(fn)
        except RevokedException:
            return (REVOKED,)
        except RuntimeError:
            return (CALLEE_EXCEPTION,)

    def make_callback(self):
        return self.client_domain.run(
            lambda: Capability.create(PingImpl())
        )

    def revoke(self):
        self.server.run(self.cap.revoke)


class XProcWorld:
    """The same scenarios through a forked domain host."""

    name = "cross-process"

    def __init__(self):
        self.host = DomainHostProcess(_diff_setup, name="xdiff").start()
        self.client = connect(self.host)
        self.cap = self.client.lookup("diff")
        self.client_domain = Domain("xdiff-client")

    def close(self):
        self.client.close()
        self.host.stop()

    def _call(self, fn):
        try:
            return self.client_domain.run(fn)
        except RevokedException:
            return (REVOKED,)
        except RuntimeError:
            return (CALLEE_EXCEPTION,)

    def make_callback(self):
        return self.client_domain.run(
            lambda: Capability.create(PingImpl())
        )

    def revoke(self):
        self.cap.revoke()


def _scenario_null_call(world):
    result = world._call(lambda: world.cap.ping())
    return result if isinstance(result, tuple) else (OK, result)


def _scenario_int_args(world):
    result = world._call(lambda: world.cap.add3(1, 2, 3))
    return result if isinstance(result, tuple) else (OK, result)


def _scenario_reference_args(world):
    buf = [0, 0, 0, 0]
    result = world._call(lambda: world.cap.fill(buf))
    if isinstance(result, tuple):
        return result
    return (OK, result[0], buf[0])


def _scenario_string_arg(world):
    result = world._call(lambda: world.cap.echo("hello"))
    return result if isinstance(result, tuple) else (OK, result)


def _scenario_graph_args(world):
    inner = [5]
    outer = [inner]
    result = world._call(lambda: world.cap.bump(outer))
    if isinstance(result, tuple):
        return result
    return (OK, result[0], inner[0])


def _scenario_revoked_call(world):
    world.revoke()
    return _scenario_null_call(world)


def _scenario_revoke_mid_call(world):
    first = world._call(lambda: world.cap.revoke_it(world.cap))
    if isinstance(first, tuple):
        return first
    after = _scenario_null_call(world)
    return (OK, first) + after


def _scenario_callee_throw(world):
    outcome = world._call(lambda: world.cap.boom())
    # the caller stays usable: its domain context fully unwound
    from repro.core import current_domain

    assert current_domain() is None
    return outcome if isinstance(outcome, tuple) else (OK, outcome)


def _scenario_reentry(world):
    callback = world.make_callback()
    result = world._call(lambda: world.cap.call_back(callback))
    return result if isinstance(result, tuple) else (OK, result)


SCENARIOS = {
    "null_call": (_scenario_null_call, (OK, 99)),
    "int_args": (_scenario_int_args, (OK, 6)),
    # callee saw its copy and mutated it (77); the caller's buffer kept 0
    "reference_args": (_scenario_reference_args, (OK, 77, 0)),
    "string_arg": (_scenario_string_arg, (OK, "hello")),
    # the callee bumped the copied graph; the caller's nodes kept 5
    "graph_args": (_scenario_graph_args, (OK, 6, 5)),
    "revoked_call": (_scenario_revoked_call, (REVOKED,)),
    # the in-flight call survives its own revocation; the next one fails
    "revoke_mid_call": (_scenario_revoke_mid_call, (OK, 1, REVOKED)),
    "callee_throw": (_scenario_callee_throw, (CALLEE_EXCEPTION,)),
    "reentry": (_scenario_reentry, (OK, 100)),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_inproc_and_xproc_agree(scenario):
    """The differential matrix: in-process kernel vs cross-process wire."""
    run, expected = SCENARIOS[scenario]
    inproc = InProcessWorld()
    xproc = XProcWorld()
    try:
        inproc_outcome = run(inproc)
        xproc_outcome = run(xproc)
    finally:
        inproc.close()
        xproc.close()
    assert inproc_outcome == xproc_outcome, (
        f"{scenario}: in-process={inproc_outcome} "
        f"cross-process={xproc_outcome}"
    )
    assert inproc_outcome == expected


class TestTransportSemantics:
    """Wire-layer behaviors with no in-process analogue."""

    def test_lookup_returns_proxy_with_stable_identity(self):
        world = XProcWorld()
        try:
            assert isinstance(world.cap, RemoteCapability)
            again = world.client.lookup("diff")
            assert again is world.cap  # one proxy per export id
        finally:
            world.close()

    def test_revocation_broadcast_flips_local_proxy(self):
        world = XProcWorld()
        try:
            assert world.cap.ping() == 99
            world.cap.revoke()
            # the control round trip already processed the broadcast
            assert world.cap.revoked
            with pytest.raises(RevokedException):
                world.cap.ping()
        finally:
            world.close()

    def test_domain_terminate_revokes_exports(self):
        world = XProcWorld()
        try:
            assert world.cap.ping() == 99
            world.client.terminate("diff")
            with pytest.raises(RevokedException):
                world.cap.ping()
        finally:
            world.close()

    def test_host_stats_reconcile(self):
        world = XProcWorld()
        try:
            for _ in range(5):
                world.cap.ping()
            stats = world.client.stats()
            assert stats["pid"] != os.getpid()
            assert "diff" in stats["bindings"]
            assert stats["exports"] >= 1
        finally:
            world.close()

    def test_concurrent_clients_share_exports(self):
        world = XProcWorld()
        try:
            other = connect(world.host)
            cap2 = other.lookup("diff")
            assert cap2.add3(1, 1, 1) == 3
            assert world.cap.add3(2, 2, 2) == 6
            other.close()
        finally:
            world.close()


class TestHostCrash:
    """A dead host must surface as a typed error, never a hang."""

    def test_crash_raises_domain_unavailable_not_hang(self):
        world = XProcWorld()
        try:
            assert world.cap.ping() == 99
            os.kill(world.host.pid, signal.SIGKILL)
            started = time.monotonic()
            with pytest.raises(DomainUnavailableException):
                # Existing pooled connections die with the process; a
                # fresh connection gets ECONNREFUSED.  Either way: typed
                # failure, promptly.
                for _ in range(10):
                    world.cap.ping()
            assert time.monotonic() - started < 10.0
        finally:
            world.close()

    def test_connect_to_dead_host_fails_fast(self):
        world = XProcWorld()
        world.close()
        client = connect(world.host)
        with pytest.raises(DomainUnavailableException):
            client.lookup("diff")
        client.close()

    def test_inflight_during_crash_does_not_hang(self):
        """Kill the host while a call is in flight: the caller gets a
        typed exception within the wire timeout, not a stuck thread."""
        import threading

        class Slow(IDiff):
            def ping(self):
                time.sleep(30)
                return 1

            def add3(self, a, b, c): ...
            def fill(self, buf): ...
            def echo(self, text): ...
            def boom(self): ...
            def revoke_it(self, cap): ...
            def call_back(self, cb): ...
            def bump(self, outer): ...

        def slow_setup():
            domain = Domain("slow-server")
            cap = domain.run(lambda: Capability.create(Slow()))
            return {"slow": cap}

        host = DomainHostProcess(slow_setup, name="slow").start()
        client = connect(host)
        cap = client.lookup("slow")
        outcome = {}

        def caller():
            try:
                cap.ping()
                outcome["result"] = "returned"
            except DomainUnavailableException:
                outcome["result"] = "unavailable"
            except Exception as exc:  # pragma: no cover - diagnostic
                outcome["result"] = repr(exc)

        thread = threading.Thread(target=caller, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the call reach the host
        os.kill(host.pid, signal.SIGKILL)
        thread.join(10.0)
        assert not thread.is_alive(), "in-flight call hung after host death"
        assert outcome["result"] == "unavailable"
        client.close()
        host.stop()
