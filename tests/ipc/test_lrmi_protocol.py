"""Cross-process LRMI protocol units, exercised IN-process.

The differential suite (`test_xproc_lrmi.py`) proves the semantics
through real forked hosts; a forked child's lines are invisible to the
parent's coverage tracer, so this suite drives the same host-side
machinery — :class:`_HostKernel`, :class:`_Connection`, the marshal
layer, the export table — over a ``socketpair`` with a serving thread in
THIS process.  That pins the protocol pieces (framing, descriptors,
error replies, broadcast, control verbs) at unit level, where a
malformed-frame regression shows up as one failing assertion instead of
a hung fork.
"""

import socket
import threading

import pytest

from repro.core import Capability, Domain, Remote, RevokedException
from repro.core.errors import NotSerializableError
from repro.ipc import ExportTable, ProtocolError, RemoteCapability
from repro.ipc.lrmi import (
    OP_BYE,
    OP_CALL,
    OP_CONTROL,
    _Connection,
    _ConnectionPeer,
    _HostKernel,
    _Peer,
    _describe,
    _resolve,
    exported_methods,
    marshal,
    unmarshal,
)


class IUnit(Remote):
    def ping(self): ...
    def echo(self, value): ...
    def fail(self): ...
    def call_back(self, cb): ...


class UnitImpl(IUnit):
    def ping(self):
        return 7

    def echo(self, value):
        return value

    def fail(self):
        raise ValueError("unit boom")

    def call_back(self, cb):
        return cb.ping() * 2


def _capability(label="unit"):
    domain = Domain(f"unit-{label}")
    return domain.run(lambda: Capability.create(UnitImpl(), label=label))


class _Harness:
    """A host kernel served over a socketpair, no fork involved."""

    def __init__(self, bindings):
        self.kernel = _HostKernel(bindings)
        client_sock, host_sock = socket.socketpair()
        client_sock.settimeout(10.0)
        host_sock.settimeout(10.0)
        self.host_conn = _Connection(host_sock, None,
                                     dispatcher=self.kernel.handle_control)
        self.host_conn.peer = _ConnectionPeer(self.kernel, self.host_conn)
        self.kernel.register_connection(self.host_conn)
        self.client = _Peer()
        self.client_conn = _Connection(client_sock, self.client)
        self.client.call = lambda eid, m, a, k: self.client_conn.call(
            OP_CALL, (eid, m, a, k)
        )
        self.client.control = lambda verb, *args: self.client_conn.call(
            OP_CONTROL, (verb, args)
        )
        self.thread = threading.Thread(
            target=self.host_conn.serve_loop, daemon=True
        )
        self.thread.start()

    def lookup(self, name):
        return self.client.control("lookup", name)

    def close(self):
        try:
            self.client_conn._send(OP_BYE, 0, b"")
        except OSError:
            pass
        self.client_conn.close()
        self.thread.join(5.0)
        self.host_conn.close()


@pytest.fixture()
def harness():
    instance = _Harness({"unit": _capability()})
    yield instance
    instance.close()


class TestProtocolRoundTrips:
    def test_lookup_and_call(self, harness):
        proxy = harness.lookup("unit")
        assert isinstance(proxy, RemoteCapability)
        assert proxy.ping() == 7
        assert proxy.echo([1, 2, 3]) == [1, 2, 3]

    def test_callee_exception_typed(self, harness):
        proxy = harness.lookup("unit")
        with pytest.raises(ValueError, match="unit boom"):
            proxy.fail()

    def test_unknown_binding_raises(self, harness):
        with pytest.raises(KeyError):
            harness.lookup("ghost")

    def test_unknown_control_verb(self, harness):
        with pytest.raises(ProtocolError):
            harness.client.control("frobnicate")

    def test_call_on_swept_export_raises_revoked(self, harness):
        proxy = harness.lookup("unit")
        # revoke behind the export table's back, then sweep directly
        capability = harness.kernel.exports.get(proxy._export_id)
        capability.revoke()
        dropped = harness.kernel.exports.sweep()
        assert dropped == [proxy._export_id]
        with pytest.raises(RevokedException):
            proxy.ping()

    def test_revoke_control_broadcasts(self, harness):
        proxy = harness.lookup("unit")
        assert harness.client.control("revoke", proxy._export_id) is True
        # the broadcast interleaved ahead of the control result
        assert proxy.revoked
        with pytest.raises(RevokedException):
            proxy.ping()

    def test_terminate_control(self, harness):
        proxy = harness.lookup("unit")
        assert harness.client.control("terminate", "unit") is True
        with pytest.raises(RevokedException):
            proxy.ping()

    def test_stats_and_ping_verbs(self, harness):
        harness.lookup("unit")
        stats = harness.client.control("stats")
        assert stats["bindings"] == ["unit"]
        assert stats["exports"] >= 1
        assert "unit" in stats["domains"]
        assert harness.client.control("ping") == "pong"

    def test_nested_callback_over_one_socket(self, harness):
        proxy = harness.lookup("unit")
        callback = _capability("cb")  # lives client-side
        # host -> client call interleaves inside the client's await
        assert proxy.call_back(callback) == 14


class TestMarshalLayer:
    def test_describe_real_capability_exports(self):
        peer = _Peer()
        capability = _capability()
        kind, export_id, label, methods = _describe(peer, capability)
        assert kind == "export"
        assert peer.exports.get(export_id) is capability
        assert set(methods) >= {"ping", "echo", "fail", "call_back"}

    def test_describe_own_proxy_goes_back(self):
        peer = _Peer()
        proxy = peer.proxy_for(5, "p", ("ping",))
        assert _describe(peer, proxy) == ("back", 5)

    def test_describe_foreign_proxy_rejected(self):
        peer, other = _Peer(), _Peer()
        proxy = other.proxy_for(5, "p", ("ping",))
        with pytest.raises(NotSerializableError):
            _describe(peer, proxy)

    def test_resolve_back_unknown_export_is_revoked(self):
        peer = _Peer()
        with pytest.raises(RevokedException):
            _resolve(peer, ("back", 12345))

    def test_resolve_unknown_descriptor_kind(self):
        with pytest.raises(ProtocolError):
            _resolve(_Peer(), ("sideways", 1))

    def test_marshal_unmarshal_round_trip_with_capability(self):
        sender, receiver = _Peer(), _Peer()
        capability = _capability()
        data = marshal(sender, {"cap": capability, "n": 3})
        value = unmarshal(receiver, data)
        assert value["n"] == 3
        # a real capability crossed as an export: the receiver holds a
        # proxy naming the sender's export id
        proxy = value["cap"]
        assert isinstance(proxy, RemoteCapability)
        assert sender.exports.get(proxy._export_id) is capability

    def test_marshal_unmarshal_back_reference(self):
        sender, receiver = _Peer(), _Peer()
        capability = _capability()
        export_id = receiver.exports.export(capability)
        proxy = sender.proxy_for(export_id, "unit", ("ping",))
        # sending the receiver's own export back collapses the proxy to
        # the original capability object — identity preserved
        data = marshal(sender, [proxy])
        (resolved,) = unmarshal(receiver, data)
        assert resolved is capability

    def test_proxy_identity_stable_per_export(self):
        peer = _Peer()
        first = peer.proxy_for(9, "x", ("ping",))
        second = peer.proxy_for(9, "x", ("ping",))
        assert first is second

    def test_mark_revoked_flips_cached_proxies_only(self):
        peer = _Peer()
        proxy = peer.proxy_for(3, "x", ("ping",))
        peer.mark_revoked([3, 99])  # unknown ids are ignored
        assert proxy.revoked


class TestExportTable:
    def test_export_is_idempotent_per_object(self):
        table = ExportTable()
        capability = _capability()
        first = table.export(capability)
        assert table.export(capability) == first
        assert table.get(first) is capability
        assert len(table) == 1

    def test_sweep_only_drops_revoked(self):
        table = ExportTable()
        live = _capability("live")
        doomed = _capability("doomed")
        table.export(live)
        doomed_id = table.export(doomed)
        doomed.revoke()
        assert table.sweep() == [doomed_id]
        assert table.get(doomed_id) is None
        assert len(table) == 1

    def test_exported_methods_of_proxy(self):
        peer = _Peer()
        proxy = peer.proxy_for(1, "x", ("b", "a"))
        assert exported_methods(proxy) == ("b", "a")


class TestWireRobustness:
    def test_short_frame_rejected(self):
        from repro.ipc import send_frame
        from repro.ipc.lrmi import WireError

        a, b = socket.socketpair()
        try:
            send_frame(a, b"xx")  # below the 5-byte header
            conn = _Connection(b, _Peer())
            with pytest.raises(WireError, match="short frame"):
                conn._recv()
        finally:
            a.close()
            b.close()

    def test_peer_base_requires_overrides(self):
        peer = _Peer()
        with pytest.raises(NotImplementedError):
            peer.call(1, "m", (), {})
        with pytest.raises(NotImplementedError):
            peer.control("stats")

    def test_connection_peer_control_rejected(self):
        kernel = _HostKernel({"unit": _capability()})
        a, b = socket.socketpair()
        try:
            conn = _Connection(b, None)
            peer = _ConnectionPeer(kernel, conn)
            with pytest.raises(ProtocolError):
                peer.control("revoke", 1)
        finally:
            a.close()
            b.close()

    def test_send_revoked_on_dead_socket_closes_connection(self):
        a, b = socket.socketpair()
        conn = _Connection(b, _Peer())
        a.close()
        b.close()
        conn.send_revoked([1, 2])
        assert conn.closed

    def test_uncopyable_callee_exception_degrades_to_remote(self, harness):
        from repro.core import RemoteException

        class Opaque:
            pass

        # an exception whose args cannot serialize must still cross,
        # wrapped, instead of killing the serving connection
        capability = harness.kernel.exports  # reach in: bind a new impl

        class WeirdImpl(IUnit):
            def ping(self):
                raise ValueError(Opaque())

            def echo(self, value): ...
            def fail(self): ...
            def call_back(self, cb): ...

        weird = Domain("weird").run(
            lambda: Capability.create(WeirdImpl(), label="weird")
        )
        harness.kernel.bindings["weird"] = weird
        proxy = harness.lookup("weird")
        # the in-process stub wraps the uncopyable args first; either
        # wrapper layer is acceptable — what matters is a typed
        # RemoteException, not a dead connection
        with pytest.raises(RemoteException, match="ValueError"):
            proxy.ping()

    def test_client_side_revoked_broadcast_into_serving_loop(self, harness):
        # a client may broadcast too (symmetric protocol): the host's
        # serve loop applies it to its proxy cache and keeps serving
        from repro.ipc.lrmi import OP_REVOKED
        from repro.core.serial import dumps

        harness.client_conn._send(OP_REVOKED, 0, dumps([123]))
        proxy = harness.lookup("unit")
        assert proxy.ping() == 7

    def test_proxy_repr_states(self):
        peer = _Peer()
        proxy = peer.proxy_for(4, "thing", ("ping",))
        assert "live" in repr(proxy)
        peer.mark_revoked([4])
        assert "revoked" in repr(proxy)


class TestDomainClientEdges:
    """Client-pool behaviors against a real (forked) host."""

    def _world(self):
        from repro.ipc import DomainHostProcess, connect

        def setup():
            domain = Domain("edge-server")
            return {
                "unit": domain.run(
                    lambda: Capability.create(UnitImpl(), label="unit")
                ),
                "plain": domain.run(
                    lambda: Capability.create(UnitImpl(), label="plain")
                ),
            }

        host = DomainHostProcess(setup, name="edges").start()
        return host, connect(host)

    def test_closed_client_refuses_calls(self):
        from repro.core import DomainUnavailableException

        host, client = self._world()
        try:
            proxy = client.lookup("unit")
            assert proxy.ping() == 7
            client.close()
            with pytest.raises(DomainUnavailableException):
                client.lookup("unit")
        finally:
            host.stop()

    def test_proxy_revoke_on_dead_host_is_silent(self):
        import os as os_module
        import signal

        host, client = self._world()
        try:
            proxy = client.lookup("unit")
            os_module.kill(host.pid, signal.SIGKILL)
            import time

            time.sleep(0.1)
            proxy.revoke()  # must not raise: dead host == revoked
            assert proxy.revoked
            with pytest.raises(RevokedException):
                proxy.ping()
        finally:
            client.close()
            host.stop()

    def test_pool_reuses_connections(self):
        host, client = self._world()
        try:
            proxy = client.lookup("unit")
            for _ in range(10):
                assert proxy.ping() == 7
            # the steady state runs on one pooled connection
            assert len(client._free) == 1
        finally:
            client.close()
            host.stop()

    def test_context_manager_closes(self):
        host, client = self._world()
        try:
            with client as open_client:
                assert open_client.lookup("unit").ping() == 7
            assert client._closed
        finally:
            host.stop()
