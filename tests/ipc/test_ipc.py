"""IPC substrate: framing, cross-process RPC, COM activation modes."""

import socket
import threading

import pytest

from repro.ipc import (
    IN_PROC,
    OUT_OF_PROC,
    ComError,
    ComInterface,
    ComRegistry,
    RpcClient,
    RpcError,
    RpcServerProcess,
    WireError,
    create_instance,
    null_server,
    recv_frame,
    send_frame,
)


class TestWire:
    def _pair(self):
        return socket.socketpair()

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            send_frame(a, b"hello")
            assert recv_frame(b) == b"hello"
        finally:
            a.close()
            b.close()

    def test_empty_frame(self):
        a, b = self._pair()
        try:
            send_frame(a, b"")
            assert recv_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_multiple_frames_ordered(self):
        a, b = self._pair()
        try:
            for i in range(5):
                send_frame(a, bytes([i]))
            for i in range(5):
                assert recv_frame(b) == bytes([i])
        finally:
            a.close()
            b.close()

    def test_closed_mid_frame(self):
        a, b = self._pair()
        a.sendall(b"\x00\x00\x00\x10part")
        a.close()
        with pytest.raises(WireError, match="closed"):
            recv_frame(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = self._pair()
        try:
            with pytest.raises(WireError, match="too large"):
                send_frame(a, b"x" * (64 * 1024 * 1024 + 1))
        finally:
            a.close()
            b.close()


class TestNtRpc:
    def test_null_and_echo(self):
        with null_server() as server:
            with RpcClient(server.path) as client:
                assert client.call("null") == b""
                assert client.call("echo", b"payload") == b"payload"

    def test_unknown_method_raises(self):
        with null_server() as server:
            with RpcClient(server.path) as client:
                with pytest.raises(RpcError, match="no such method"):
                    client.call("missing")

    def test_handler_exception_propagates(self):
        def bad(payload):
            raise ValueError("server side broke")

        with RpcServerProcess({"bad": bad}) as server:
            with RpcClient(server.path) as client:
                with pytest.raises(RpcError, match="server side broke"):
                    client.call("bad")

    def test_many_sequential_calls(self):
        with null_server() as server:
            with RpcClient(server.path) as client:
                for i in range(100):
                    assert client.call("echo", str(i).encode()) == \
                        str(i).encode()

    def test_concurrent_clients(self):
        with null_server() as server:
            errors = []

            def worker():
                try:
                    with RpcClient(server.path) as client:
                        for i in range(20):
                            assert client.call("echo", b"x") == b"x"
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

    def test_crossing_real_process_boundary(self):
        import os

        parent_pid = os.getpid()

        def tell_pid(payload):
            return str(os.getpid()).encode()

        with RpcServerProcess({"pid": tell_pid}) as server:
            with RpcClient(server.path) as client:
                server_pid = int(client.call("pid"))
        assert server_pid != parent_pid


class TestNtRpcInProcess:
    """The server-side dispatch loop, driven without a fork (forked
    children are invisible to the coverage tracer; the protocol still
    deserves line-level pinning)."""

    def test_serve_connection_dispatch_and_errors(self):
        from repro.ipc.ntrpc import _serve_connection

        a, b = socket.socketpair()
        handlers = {
            "echo": lambda payload: payload,
            "none": lambda payload: None,
            "bad": lambda payload: 1 / 0,
        }
        worker = threading.Thread(
            target=_serve_connection, args=(b, handlers), daemon=True
        )
        worker.start()
        try:
            send_frame(a, b"echo\x00data")
            assert recv_frame(a) == b"\x00data"
            send_frame(a, b"none\x00")
            assert recv_frame(a) == b"\x00"  # None reply -> empty body
            send_frame(a, b"bad\x00")
            reply = recv_frame(a)
            assert reply[0] == 1 and b"ZeroDivisionError" in reply[1:]
            send_frame(a, b"missing\x00")
            reply = recv_frame(a)
            assert reply[0] == 1 and b"no such method" in reply[1:]
        finally:
            a.close()
            worker.join(5.0)
        assert not worker.is_alive()

    def test_serve_forever_in_thread(self, tmp_path):
        import uuid

        from repro.ipc.ntrpc import serve_forever

        path = str(tmp_path / f"rpc-{uuid.uuid4().hex[:8]}.sock")
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_forever,
            args=(path, {"null": lambda payload: b""}, ready),
            daemon=True,
        )
        thread.start()
        assert ready.wait(5.0)
        with RpcClient(path) as client:
            assert client.call("null") == b""


_CALC = ComInterface("ICalc", ["add", "concat", "null_op"])


class Calc:
    def add(self, a, b):
        return a + b

    def concat(self, a, b):
        return a + b

    def null_op(self):
        return 0


def _registry():
    registry = ComRegistry()
    registry.register_class("CLSID_Calc", Calc, _CALC)
    return registry


class TestComInProc:
    def test_vtable_call(self):
        pointer = create_instance(_registry(), "CLSID_Calc", IN_PROC)
        assert pointer.method("add")(2, 3) == 5
        assert pointer.invoke(_CALC.vtable_index("add"), 4, 5) == 9

    def test_query_interface(self):
        pointer = create_instance(_registry(), "CLSID_Calc", IN_PROC)
        assert pointer.query_interface("ICalc") is pointer
        with pytest.raises(ComError, match="E_NOINTERFACE"):
            pointer.query_interface("IUnknown2")

    def test_unregistered_class(self):
        with pytest.raises(ComError, match="CLASSNOTREG"):
            create_instance(_registry(), "CLSID_Ghost", IN_PROC)

    def test_unknown_method(self):
        with pytest.raises(ComError, match="no method"):
            _CALC.vtable_index("subtract")


class TestComOutOfProc:
    def test_marshalled_calls(self):
        pointer = create_instance(_registry(), "CLSID_Calc", OUT_OF_PROC)
        try:
            assert pointer.method("add")(40, 2) == 42
            assert pointer.method("concat")("foo", "bar") == "foobar"
            assert pointer.method("null_op")() == 0
        finally:
            pointer._com_host.stop()

    def test_bytes_arguments(self):
        pointer = create_instance(_registry(), "CLSID_Calc", OUT_OF_PROC)
        try:
            assert pointer.method("concat")(b"ab", b"cd") == b"abcd"
        finally:
            pointer._com_host.stop()

    def test_bad_activation_context(self):
        with pytest.raises(ComError, match="unknown activation"):
            create_instance(_registry(), "CLSID_Calc", "somewhere")
