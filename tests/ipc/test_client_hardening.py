"""DomainClient robustness: pooled-connection health checks on checkout,
per-call deadlines, and bounded retry-with-backoff for idempotent calls.

The regression this pins down: a pooled connection whose peer died while
it sat idle (host crash, host restart) used to be handed straight to the
next caller, which then burned a full transport error on a socket that
was *known* dead.  Checkout now validates with a zero-timeout peek —
evicting EOF'd sockets while keeping ones that merely have a revocation
broadcast queued.
"""

import os
import signal
import time

import pytest

from repro.core import (
    Capability,
    Domain,
    DomainUnavailableException,
    Remote,
    RevokedException,
)
from repro.ipc import DomainHostProcess, connect
from repro.ipc.lrmi import IDEMPOTENT_CONTROL, DomainClient


class IEcho(Remote):
    def echo(self, text): ...
    def nap(self, seconds): ...


class EchoImpl(IEcho):
    def echo(self, text):
        return text

    def nap(self, seconds):
        time.sleep(seconds)
        return "rested"


def _echo_setup():
    domain = Domain("hardening-server")
    cap = domain.run(lambda: Capability.create(EchoImpl(), label="echo"))
    return {"echo": cap, "victim": domain.run(
        lambda: Capability.create(EchoImpl(), label="victim"))}


@pytest.fixture()
def host():
    host = DomainHostProcess(_echo_setup, name="hardening").start()
    yield host
    host.stop()


class TestCheckoutHealthCheck:
    def test_dead_pooled_connections_are_evicted(self, host):
        client = connect(host)
        proxy = client.lookup("echo")
        assert proxy.echo("hi") == "hi"
        assert len(client._free) >= 1
        # Kill the host: every pooled connection is now half-dead.
        os.kill(host.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while host.alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.05)  # let the kernel deliver the EOFs
        with pytest.raises(DomainUnavailableException):
            proxy.echo("again")
        # The stale socket was dropped at checkout, not burned mid-call.
        assert client.evicted >= 1
        client.close()

    def test_restarted_host_is_reached_through_fresh_connections(self, host):
        client = connect(host)
        proxy = client.lookup("echo")
        assert proxy.echo("one") == "one"
        os.kill(host.pid, signal.SIGKILL)
        while host.alive():
            time.sleep(0.01)
        time.sleep(0.05)
        host.start()  # restart-in-place: same socket path
        # The pool's stale connection is evicted and a fresh one dialed;
        # the re-looked-up capability works without client surgery.
        fresh = client.lookup("echo")
        assert fresh.echo("two") == "two"
        assert client.evicted >= 1
        client.close()

    def test_pending_broadcast_does_not_evict(self, host):
        """A readable pooled socket holding a revocation broadcast is
        HEALTHY — eviction must key on EOF, not on readability."""
        client = connect(host)
        victim = client.lookup("victim")
        echo = client.lookup("echo")
        assert echo.echo("warm") == "warm"
        evicted_before = client.evicted
        # Revoke server-side: the broadcast lands on the idle pooled
        # connection while nobody is reading it.
        client.control("revoke", victim._export_id)
        time.sleep(0.1)
        assert echo.echo("after") == "after"
        assert client.evicted == evicted_before
        with pytest.raises(RevokedException):
            victim.echo("dead")
        client.close()

    def test_closed_client_refuses_checkout(self, host):
        client = connect(host)
        client.close()
        with pytest.raises(DomainUnavailableException):
            client.stats()


class TestCallDeadlines:
    def test_deadline_bounds_a_slow_call(self, host):
        client = connect(host, call_deadline=0.3, timeout=30.0)
        proxy = client.lookup("echo")
        start = time.monotonic()
        with pytest.raises(DomainUnavailableException):
            proxy.nap(5.0)
        assert time.monotonic() - start < 2.0
        client.close()

    def test_fast_calls_unaffected_by_deadline(self, host):
        client = connect(host, call_deadline=5.0)
        proxy = client.lookup("echo")
        for _ in range(10):
            assert proxy.echo("quick") == "quick"
        assert client.stats()["pid"] == host.pid
        client.close()


class TestIdempotentRetry:
    def test_control_verbs_are_declared_idempotent(self):
        assert {"lookup", "stats", "ping"} <= IDEMPOTENT_CONTROL
        assert "terminate" not in IDEMPOTENT_CONTROL
        assert "revoke" not in IDEMPOTENT_CONTROL

    def test_lookup_retries_through_a_host_restart(self, host):
        client = connect(host, retries=20, backoff=0.05)
        assert client.lookup("echo").echo("pre") == "pre"
        os.kill(host.pid, signal.SIGKILL)
        while host.alive():
            time.sleep(0.01)

        # Restart the host concurrently with the retrying lookup: the
        # client's backoff loop must bridge the outage window.
        import threading

        def respawn():
            time.sleep(0.2)
            host.start()

        spawner = threading.Thread(target=respawn)
        spawner.start()
        try:
            proxy = client.lookup("echo")
            assert proxy.echo("post") == "post"
        finally:
            spawner.join()
            client.close()

    def test_non_idempotent_methods_do_not_retry(self, host):
        client = connect(host, retries=5, backoff=0.01)
        proxy = client.lookup("echo")
        assert proxy.echo("up") == "up"
        os.kill(host.pid, signal.SIGKILL)
        while host.alive():
            time.sleep(0.01)
        start = time.monotonic()
        with pytest.raises(DomainUnavailableException):
            proxy.echo("down")  # echo not declared idempotent: one shot
        assert time.monotonic() - start < 1.0
        client.close()

    def test_declared_idempotent_methods_retry(self, host):
        client = DomainClient(host.path, retries=3, backoff=0.01,
                              idempotent=("echo",))
        proxy = client.lookup("echo")
        assert proxy.echo("fine") == "fine"  # retry path, healthy host
        client.close()

    def test_retries_stop_at_the_deadline(self, host):
        client = connect(host, retries=50, backoff=0.2, call_deadline=0.5)
        os.kill(host.pid, signal.SIGKILL)
        while host.alive():
            time.sleep(0.01)
        start = time.monotonic()
        with pytest.raises(DomainUnavailableException):
            client.stats()
        assert time.monotonic() - start < 3.0
        client.close()


class TestPooledSocketToctou:
    """The reused-socket TOCTOU window (ported from ntrpc, PR 7): the
    checkout probe can pass and the host die before the send — the
    probe's answer is stale the moment it returns."""

    def test_blinded_probe_still_recovers_via_fresh_dial(self, host,
                                                         monkeypatch):
        """With the health probe blinded (simulating the probe-then-die
        race exactly), a NON-idempotent call on the stale pooled socket
        must transparently retry once on a freshly dialed connection —
        with ``retries=0``, proving the one-shot fresh-dial retry in
        ``_exchange`` is independent of the idempotent-retry budget."""
        client = connect(host)
        assert client.retries == 0
        proxy = client.lookup("echo")
        assert proxy.echo("warm") == "warm"  # pools a live connection
        os.kill(host.pid, signal.SIGKILL)
        while host.alive():
            time.sleep(0.01)
        host.start()  # restart-in-place: same socket path, live again
        # Recreate the export in the replacement host through a second
        # client (export ids are assigned at lookup; the fresh kernel
        # hands out the same first id) — the first client's pooled
        # socket stays stale and untouched.
        other = connect(host)
        assert other.lookup("echo")._export_id == proxy._export_id
        other.close()
        # Blind the probe: checkout hands out the dead pooled socket,
        # exactly as if the host had died between probe and send.
        monkeypatch.setattr(DomainClient, "_healthy",
                            staticmethod(lambda connection: True))
        evicted_before = client.evicted
        assert proxy.echo("back") == "back"
        # The save came from the fresh-dial retry, not from eviction.
        assert client.evicted == evicted_before
        client.close()

    def test_timed_out_reused_call_never_retries(self, host):
        """The discriminator: a deadline expiry on a reused connection
        must NOT redial — the time is spent, and replaying a
        non-idempotent call after a timeout could execute it twice."""
        client = connect(host, call_deadline=0.4)
        proxy = client.lookup("echo")
        assert proxy.echo("warm") == "warm"
        start = time.monotonic()
        with pytest.raises(DomainUnavailableException):
            proxy.nap(5.0)  # runs past the deadline on a reused socket
        assert time.monotonic() - start < 2.0
        client.close()
