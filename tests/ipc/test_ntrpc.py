"""The hardened ntrpc transport, tested standalone.

PR 6 left ntrpc a Table 2 prototype: ``_serve_connection`` swallowed
``OSError``/``WireError`` with a bare except-pass, ``serve_forever``
leaked the bound socket path, and the client had no deadlines, no
retry, no liveness.  This suite pins the hardened behaviour the fleet
coordinator depends on: typed errors for every failure mode, whole-call
deadlines that expire instead of hanging, checkout health + bounded
retry bridging a server restart, built-in heartbeat, graceful stop, and
stale-socket recovery on bind.
"""

import os
import socket
import threading
import time

import pytest

from repro.ipc.ntrpc import (
    PING_METHOD,
    RpcClient,
    RpcDeadlineError,
    RpcError,
    RpcHandlerError,
    RpcMethodNotFound,
    RpcServer,
    RpcServerProcess,
    RpcTransportError,
)
from repro.ipc.wire import send_frame

pytestmark = pytest.mark.timeout(60)


def _threaded_server(tmp_path, handlers, name="ntrpc.sock"):
    """An RpcServer serving from a daemon thread, ready when returned."""
    path = str(tmp_path / name)
    server = RpcServer(path, handlers)
    ready = threading.Event()
    thread = threading.Thread(target=server.serve, args=(ready,),
                              daemon=True)
    thread.start()
    assert ready.wait(5.0)
    return server, thread


class TestTypedErrors:
    def test_unknown_method_raises_method_not_found(self, tmp_path):
        server, _ = _threaded_server(tmp_path, {"ok": lambda p: p})
        try:
            with RpcClient(server.path) as client:
                with pytest.raises(RpcMethodNotFound) as err:
                    client.call("nope")
                assert "no such method" in str(err.value)
                # The connection survives the error: strict
                # request/reply keeps framing aligned.
                assert client.call("ok", b"x") == b"x"
        finally:
            server.stop()

    def test_handler_raise_crosses_as_handler_error(self, tmp_path):
        def boom(payload):
            raise ValueError("kaboom")

        server, _ = _threaded_server(tmp_path, {"boom": boom})
        try:
            with RpcClient(server.path) as client:
                with pytest.raises(RpcHandlerError) as err:
                    client.call("boom")
                assert "kaboom" in str(err.value)
        finally:
            server.stop()

    def test_dial_refused_is_transport_error(self, tmp_path):
        client = RpcClient(str(tmp_path / "nobody-home.sock"))
        with pytest.raises(RpcTransportError):
            client.call("anything")

    def test_error_hierarchy(self):
        # Callers catch RpcError for totality; deadlines are transport
        # errors (the wire state is unknown after expiry).
        assert issubclass(RpcTransportError, RpcError)
        assert issubclass(RpcDeadlineError, RpcTransportError)
        assert issubclass(RpcMethodNotFound, RpcError)
        assert issubclass(RpcHandlerError, RpcError)


class TestFraming:
    def test_mid_frame_disconnect_is_counted_not_swallowed(self, tmp_path):
        """The PR 6 prototype pass-ed this away; now it's a recorded
        typed error on the server."""
        server, _ = _threaded_server(tmp_path, {"ok": lambda p: p})
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(server.path)
            raw.sendall((10).to_bytes(4, "big") + b"abc")  # truncated
            raw.close()
            deadline = time.monotonic() + 5
            while not server.transport_errors and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.transport_errors
            assert isinstance(server.transport_errors[0],
                              RpcTransportError)
        finally:
            server.stop()

    def test_clean_disconnect_between_frames_is_not_an_error(
            self, tmp_path):
        server, _ = _threaded_server(tmp_path, {"ok": lambda p: p})
        try:
            with RpcClient(server.path) as client:
                assert client.call("ok", b"x") == b"x"
            time.sleep(0.05)  # let the serving thread observe the EOF
            assert server.transport_errors == []
        finally:
            server.stop()

    def test_oversized_frame_is_rejected(self, tmp_path):
        server, _ = _threaded_server(tmp_path, {"ok": lambda p: p})
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(server.path)
            send_frame(raw, b"ok\x00" + b"x")  # prove the path works
            raw.sendall((1 << 31).to_bytes(4, "big"))
            deadline = time.monotonic() + 5
            while not server.transport_errors and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert any("frame too large" in str(e)
                       for e in server.transport_errors)
            raw.close()
        finally:
            server.stop()

    def test_on_error_callback_sees_typed_error(self, tmp_path):
        seen = []
        path = str(tmp_path / "cb.sock")
        server = RpcServer(path, {"ok": lambda p: p},
                           on_error=seen.append)
        ready = threading.Event()
        threading.Thread(target=server.serve, args=(ready,),
                         daemon=True).start()
        assert ready.wait(5.0)
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(path)
            raw.sendall((8).to_bytes(4, "big") + b"xy")
            raw.close()
            deadline = time.monotonic() + 5
            while not seen and time.monotonic() < deadline:
                time.sleep(0.01)
            assert seen and isinstance(seen[0], RpcTransportError)
        finally:
            server.stop()


class TestDeadlines:
    def test_call_deadline_expires_instead_of_hanging(self, tmp_path):
        release = threading.Event()

        def slow(payload):
            release.wait(30)
            return b"late"

        server, _ = _threaded_server(tmp_path, {"slow": slow})
        try:
            client = RpcClient(server.path, call_deadline=0.2)
            start = time.monotonic()
            with pytest.raises(RpcDeadlineError):
                client.call("slow")
            assert time.monotonic() - start < 5.0
        finally:
            release.set()
            server.stop()

    def test_per_call_deadline_overrides_client_default(self, tmp_path):
        release = threading.Event()

        def slow(payload):
            release.wait(30)
            return b"late"

        server, _ = _threaded_server(tmp_path, {"slow": slow})
        try:
            client = RpcClient(server.path)  # no default deadline
            with pytest.raises(RpcDeadlineError):
                client.call("slow", deadline=0.2)
        finally:
            release.set()
            server.stop()

    def test_deadline_expiry_is_never_retried(self, tmp_path):
        """A deadline bounds total wait; retrying past it would turn
        the bound into a suggestion."""
        calls = []
        release = threading.Event()

        def slow(payload):
            calls.append(1)
            release.wait(30)
            return b"late"

        server, _ = _threaded_server(tmp_path, {"slow": slow})
        try:
            client = RpcClient(server.path, call_deadline=0.2, retries=5)
            with pytest.raises(RpcDeadlineError):
                client.call("slow")
            time.sleep(0.1)
            assert len(calls) == 1
        finally:
            release.set()
            server.stop()

    def test_invalid_call_deadline_rejected_at_construction(self):
        with pytest.raises(ValueError):
            RpcClient("/nonexistent", call_deadline=0)


class TestRetryAndCheckout:
    def test_retry_bridges_a_server_restart(self, tmp_path):
        with RpcServerProcess({"echo": lambda p: p}) as first:
            client = RpcClient(first.path, retries=8, backoff=0.05)
            assert client.call("echo", b"a") == b"a"
            first.kill()  # crash: stale socket path left behind

            # Restart on the SAME path in the background while the
            # client is mid-retry.
            second = RpcServerProcess({"echo": lambda p: p})
            second.path = first.path

            def respawn():
                time.sleep(0.15)
                second.start()

            threading.Thread(target=respawn, daemon=True).start()
            try:
                assert client.call("echo", b"b") == b"b"
            finally:
                second.stop()

    def test_no_retries_by_default(self, tmp_path):
        with RpcServerProcess({"echo": lambda p: p}) as server:
            client = RpcClient(server.path)
            assert client.call("echo", b"a") == b"a"
            server.kill()
            with pytest.raises(RpcTransportError):
                client.call("echo", b"b")

    def test_checkout_redials_a_dead_pooled_socket(self, tmp_path):
        """EOF on an idle pooled socket means the peer died; the next
        call must redial, not fail on the corpse."""
        path = str(tmp_path / "restart.sock")
        server, _ = _threaded_server(tmp_path, {"echo": lambda p: p},
                                     name="restart.sock")
        client = RpcClient(path)
        assert client.call("echo", b"a") == b"a"
        server.stop()  # client's pooled socket is now readable (EOF)

        server2, _ = _threaded_server(tmp_path, {"echo": lambda p: p},
                                      name="restart.sock")
        try:
            assert client.call("echo", b"b") == b"b"
        finally:
            server2.stop()

    def test_reused_socket_reset_retries_on_a_fresh_dial(
            self, tmp_path, monkeypatch):
        """The checkout probe is only a snapshot: a peer that died just
        before the call can pass it and reset the socket mid-exchange.
        The call must retry once on a fresh dial (keep-alive style) —
        independent of the ``retries`` knob — not surface the corpse's
        ECONNRESET."""
        from repro.ipc import ntrpc

        server, _ = _threaded_server(tmp_path, {"echo": lambda p: p},
                                     name="restart.sock")
        client = RpcClient(server.path)  # retries=0
        assert client.call("echo", b"a") == b"a"
        server.stop()
        server2, _ = _threaded_server(tmp_path, {"echo": lambda p: p},
                                      name="restart.sock")
        # Blind the probe so checkout hands back the dead pooled
        # socket as if it were healthy — the losing side of the race.
        monkeypatch.setattr(ntrpc.select, "select",
                            lambda r, w, x, t=0: ([], [], []))
        try:
            assert client.call("echo", b"b") == b"b"
        finally:
            server2.stop()


class TestHeartbeat:
    def test_ping_answered_by_the_serve_loop(self, tmp_path):
        # No handler registered for __ping__: the loop itself answers.
        server, _ = _threaded_server(tmp_path, {})
        try:
            with RpcClient(server.path) as client:
                assert client.ping()
        finally:
            server.stop()

    def test_registered_handler_shadows_builtin_ping(self, tmp_path):
        server, _ = _threaded_server(
            tmp_path, {PING_METHOD: lambda p: b"custom"})
        try:
            with RpcClient(server.path) as client:
                assert client.call(PING_METHOD) == b"custom"
        finally:
            server.stop()

    def test_ping_deadline_expires_against_wedged_server(self, tmp_path):
        # A bound-but-never-accepting socket: connect succeeds (backlog),
        # the ping round trip cannot complete.
        path = str(tmp_path / "wedged.sock")
        wedge = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        wedge.bind(path)
        wedge.listen(1)
        try:
            client = RpcClient(path)
            with pytest.raises(RpcDeadlineError):
                client.ping(deadline=0.2)
        finally:
            wedge.close()


class TestServerLifecycle:
    def test_stop_unlinks_socket_path(self, tmp_path):
        server, thread = _threaded_server(tmp_path, {"ok": lambda p: p})
        path = server.path
        assert os.path.exists(path)
        server.stop()
        thread.join(5.0)
        assert not os.path.exists(path)

    def test_stop_unblocks_connected_clients(self, tmp_path):
        server, thread = _threaded_server(tmp_path, {"ok": lambda p: p})
        client = RpcClient(server.path).connect()
        assert client.call("ok", b"x") == b"x"
        server.stop()
        thread.join(5.0)
        with pytest.raises(RpcTransportError):
            client.call("ok", b"y")

    def test_bind_recovers_stale_socket_from_crashed_predecessor(
            self, tmp_path):
        """The PR 6 serve_forever leaked its path: a restart on the
        same address failed with EADDRINUSE.  bind() now unlinks the
        stale path, mirroring DomainHostProcess.start."""
        path = str(tmp_path / "stale.sock")
        with RpcServerProcess({"echo": lambda p: p}) as first:
            first.path = path  # before start
        # __exit__ called stop -> no process yet; drive it manually:
        first = RpcServerProcess({"echo": lambda p: p})
        first.path = path
        first.start()
        with RpcClient(path) as client:
            assert client.call("echo", b"a") == b"a"
        first.kill()  # SIGKILL: socket path deliberately left behind
        assert os.path.exists(path)

        second = RpcServerProcess({"echo": lambda p: p})
        second.path = path
        second.start()  # must not fail on the stale path
        try:
            with RpcClient(path) as client:
                assert client.call("echo", b"b") == b"b"
        finally:
            second.stop()

    def test_double_stop_is_idempotent(self, tmp_path):
        server, thread = _threaded_server(tmp_path, {"ok": lambda p: p})
        server.stop()
        server.stop()
        thread.join(5.0)
