"""Sealed regions across the process boundary: grant handles, not bytes.

The cross-process leg of the region state machine, over a real forked
domain host:

* a 64KiB region crosses as a ``("region", name, generation, offset,
  length)`` grant on the LRMI side table and is readable on the far
  side (the acceptance scenario);
* the kernel revokes the callee's view when the call returns — a
  stashed view raises the typed :class:`RegionRevokedError` on the next
  access, and the error crosses the wire typed (it is serial-registered
  with the rest of the error hierarchy);
* a region granted in the *reply* direction resolves on the caller with
  the right bytes;
* a revoked owner region is refused at grant time, before any frame is
  sent;
* a respawned host rejects stale-generation grants (pool recycle bumped
  the generation under the same segment name);
* a servlet response with a body over the seal threshold rides a region
  end to end and formats to the same HTTP bytes;
* the host surfaces its swallowed ring-close failure count in stats.
"""

import pytest

from repro.core import Capability, Domain, RegionRevokedError, Remote, seal
from repro.ipc import DomainHostProcess, connect
from repro.web import ServletResponse
from repro.web.http import format_response

PAYLOAD_64K = bytes(range(256)) * 256  # 65536 bytes, content-checkable


class IRegionSink(Remote):
    def take_region(self, region): ...
    def stash(self, region): ...
    def read_stash(self): ...
    def echo_region(self, region): ...
    def resolve_raw(self, descriptor): ...
    def page(self, size): ...


class RegionSinkImpl(IRegionSink):
    def __init__(self):
        self._stashed = None

    def take_region(self, region):
        # A validated read, element-checked at the edges: proves the
        # callee sees the caller's bytes through the mapping.
        data = region.bytes()
        return (len(data), data[0], data[-1])

    def stash(self, region):
        self._stashed = region
        return region.bytes()[:4]

    def read_stash(self):
        return self._stashed.bytes()  # raises typed once revoked

    def echo_region(self, region):
        return region

    def resolve_raw(self, descriptor):
        from repro.core import AttachmentCache

        cache = AttachmentCache()
        try:
            return len(cache.resolve(descriptor))
        finally:
            cache.close()

    def page(self, size):
        return ServletResponse(
            200, {"content-type": "application/octet-stream"},
            PAYLOAD_64K[:size],
        )


def _sink_setup():
    domain = Domain("region-host")
    return {"sink": domain.run(
        lambda: Capability.create(RegionSinkImpl(), label="sink"))}


@pytest.fixture()
def world():
    host = DomainHostProcess(_sink_setup, name="regions").start()
    client = connect(host)
    try:
        yield client.lookup("sink"), client, host
    finally:
        client.close()
        host.stop()


class TestGrantCrossesProcess:
    def test_64k_region_readable_on_the_far_side(self, world):
        sink, _client, _host = world
        region = seal(PAYLOAD_64K)
        try:
            assert sink.take_region(region) == (65536, 0, 255)
            # The caller's owner region survives the call untouched —
            # only the callee's per-call view was revoked on return.
            assert region.bytes() == PAYLOAD_64K
            # A second grant of the same region rides the cached
            # attachment; the generation still matches.
            assert sink.take_region(region) == (65536, 0, 255)
        finally:
            region.revoke()

    def test_reply_direction_grant_resolves_on_caller(self, world):
        sink, _client, _host = world
        region = seal(b"echoed across and back" * 100)
        try:
            echoed = sink.echo_region(region)
            assert echoed is not region  # a view, not the owner
            assert echoed.bytes() == region.bytes()
        finally:
            region.revoke()

    def test_revoked_region_refused_at_grant_time(self, world):
        sink, _client, _host = world
        region = seal(b"never leaves")
        region.revoke()
        with pytest.raises(RegionRevokedError):
            sink.take_region(region)


class TestRevokeOnReturn:
    def test_stashed_view_raises_typed_after_the_call(self, world):
        sink, _client, _host = world
        region = seal(b"do not keep me" * 1000)
        try:
            assert sink.stash(region) == b"do n"
            # The host kept its view past the call; the kernel revoked
            # it on return, and the typed error crosses the wire.
            with pytest.raises(RegionRevokedError):
                sink.read_stash()
            # The owner is unaffected: granting again works.
            assert sink.stash(region) == b"do n"
        finally:
            region.revoke()


class TestStaleGrants:
    def test_respawned_host_rejects_a_recycled_generation(self, world):
        sink, client, host = world
        first = seal(b"s" * 4000)
        stale = first.grant_descriptor()
        assert sink.resolve_raw(stale) == 4000
        first.revoke()
        second = seal(b"t" * 4000)  # recycles the segment, bumps gen
        try:
            assert second.name == stale[1]
            host.stop()
            host.start()
            fresh_client = connect(host)
            try:
                fresh_sink = fresh_client.lookup("sink")
                with pytest.raises(RegionRevokedError):
                    fresh_sink.resolve_raw(stale)
                assert fresh_sink.resolve_raw(
                    second.grant_descriptor()) == 4000
            finally:
                fresh_client.close()
        finally:
            second.revoke()


class TestServletBodiesRideRegions:
    def test_big_response_body_crosses_as_a_region(self, world):
        from repro.core.regions import SEAL_THRESHOLD, SealedRegion

        sink, _client, _host = world
        size = max(SEAL_THRESHOLD, 32768)
        response = sink.page(size)
        assert type(response.body) is SealedRegion
        assert response.status == 200
        assert response.body == PAYLOAD_64K[:size]
        wire = format_response(response)
        assert wire.endswith(PAYLOAD_64K[:size])
        assert f"Content-Length: {size}".encode() in wire

    def test_small_response_body_stays_inline_bytes(self, world):
        sink, _client, _host = world
        response = sink.page(64)
        assert type(response.body) is bytes
        assert response.body == PAYLOAD_64K[:64]


class TestConnectionStats:
    def test_host_reports_ring_close_failures(self, world):
        sink, client, _host = world
        region = seal(PAYLOAD_64K)
        try:
            sink.take_region(region)
        finally:
            region.revoke()
        stats = client.stats()
        assert stats["ring_close_failures"] == 0
