"""Wire-path parametrization for the cross-process LRMI suite.

The compiled wire (per-method frame encoders, MF_CALL index dispatch,
constant-frame fast paths) and the generic tagged-stream fallback are
one behavioural contract: ``tests/ipc/test_xproc_lrmi.py``'s scenario
matrix runs twice, once per path, without the test file knowing.  The
flip happens by patching :data:`repro.ipc.lrmi.COMPILED_WIRE` *before*
any host process forks, so both ends of every connection agree on the
path for the duration of the test.
"""

import pytest

from repro.ipc import lrmi


@pytest.fixture(autouse=True)
def wire_path(request, monkeypatch):
    mode = getattr(request, "param", "compiled")
    monkeypatch.setattr(lrmi, "COMPILED_WIRE", mode != "generic")
    return mode


def pytest_generate_tests(metafunc):
    if (metafunc.module.__name__.endswith("test_xproc_lrmi")
            and "wire_path" in metafunc.fixturenames):
        metafunc.parametrize(
            "wire_path", ["compiled", "generic"], indirect=True
        )
