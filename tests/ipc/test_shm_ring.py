"""Shared-memory bulk-ring edges: wrap-around, fallback, stale grants.

The ring is an optimization with sharp failure edges; each gets pinned
here at the level where it lives — allocator arithmetic on a bare
:class:`BulkRing`, grant validation on a :class:`_Connection`, and the
full client↔host path over a real fork for the behaviour a user
observes (big payloads still round-trip when the ring wraps, overflows,
or cannot exist at all).
"""

import socket

import pytest

from repro.core import Capability, Domain, Remote
from repro.ipc import DomainHostProcess, ProtocolError, connect
from repro.ipc import lrmi
from repro.ipc.lrmi import MF_SHM, _Connection, _Peer
from repro.ipc.shm import GRANT, BulkRing, RingError


class TestBulkRingAllocator:
    def test_grant_view_round_trip(self):
        ring = BulkRing.create(4096)
        try:
            grant = ring.grant(b"hello ring")
            generation, offset, length = GRANT.unpack(grant)
            assert generation == ring.generation
            assert bytes(ring.view(generation, offset, length)) \
                == b"hello ring"
        finally:
            ring.close()

    def test_wrap_around_reuses_offset_zero(self):
        """A payload that does not fit the tail wraps to offset 0 — and
        the strictly-nested request/reply protocol means the bytes it
        overwrites are already dead."""
        ring = BulkRing.create(1024)
        try:
            first = ring.grant(b"a" * 700)
            _, offset_a, _ = GRANT.unpack(first)
            assert offset_a == 0
            second = ring.grant(b"b" * 700)  # tail is 324 bytes: wrap
            _, offset_b, length_b = GRANT.unpack(second)
            assert offset_b == 0
            assert bytes(ring.view(ring.generation, offset_b, length_b)) \
                == b"b" * 700
        finally:
            ring.close()

    def test_payload_larger_than_ring_returns_none(self):
        ring = BulkRing.create(256)
        try:
            assert ring.grant(b"x" * 257) is None
            assert ring.grant_parts((b"x" * 200, b"y" * 57)) is None
        finally:
            ring.close()

    def test_grant_parts_scatters_contiguously(self):
        ring = BulkRing.create(1024)
        try:
            grant = ring.grant_parts((b"head-", b"body-", b"tail"))
            generation, offset, length = GRANT.unpack(grant)
            assert bytes(ring.view(generation, offset, length)) \
                == b"head-body-tail"
        finally:
            ring.close()

    def test_stale_generation_refused(self):
        ring = BulkRing.create(256)
        try:
            grant = ring.grant(b"payload")
            generation, offset, length = GRANT.unpack(grant)
            with pytest.raises(RingError, match="generation"):
                ring.view(generation + 1, offset, length)
        finally:
            ring.close()

    def test_out_of_bounds_grant_refused(self):
        ring = BulkRing.create(256)
        try:
            with pytest.raises(RingError, match="exceeds"):
                ring.view(ring.generation, 200, 100)
        finally:
            ring.close()

    def test_close_unlinks_and_is_idempotent(self):
        ring = BulkRing.create(256)
        name = ring.name
        ring.close()
        ring.close()  # second close: no-op, no raise
        with pytest.raises((FileNotFoundError, OSError)):
            BulkRing.attach(name, ring.generation)

    def test_clean_close_counts_zero_swallowed_failures(self):
        ring = BulkRing.create(256)
        assert ring.close() == 0

    def test_leaked_view_export_is_counted_not_silenced(self):
        """A consumer that kept a live ``view`` export past the ring's
        life pins the mapping; ``close`` swallows the ``BufferError``
        (teardown must not fail) but reports it, so connection stats can
        surface the leak instead of hiding it in a bare ``pass``."""
        ring = BulkRing.create(4096)
        grant = ring.grant(b"pinned payload")
        generation, offset, length = GRANT.unpack(grant)
        leaked = ring.view(generation, offset, length)
        try:
            assert ring.close() == 1
        finally:
            leaked.release()


class TestGrantValidation:
    """``_Connection._open`` against hostile or stale grants."""

    def _connection(self):
        left, right = socket.socketpair()
        self._spare = right
        return _Connection(left, _Peer())

    def test_grant_before_announcement_rejected(self):
        conn = self._connection()
        try:
            payload = bytes((MF_SHM,)) + GRANT.pack(1, 0, 16)
            with pytest.raises(ProtocolError, match="before ring"):
                conn._open(payload)
        finally:
            conn.close()
            self._spare.close()

    def test_stale_generation_is_typed_protocol_error(self):
        """A respawned host replaying a grant against the previous
        incarnation's ring must get a typed refusal, never a read of
        unrelated bytes."""
        conn = self._connection()
        ring = BulkRing.create(512)
        try:
            ring.grant(b"live payload")
            conn._peer_ring = BulkRing.attach(ring.name,
                                              ring.generation + 7)
            payload = bytes((MF_SHM,)) + GRANT.pack(ring.generation, 0, 12)
            with pytest.raises(ProtocolError, match="generation"):
                conn._open(payload)
        finally:
            conn.close()  # closes the attached ring too
            ring.close()
            self._spare.close()

    def test_nested_grant_rejected(self):
        conn = self._connection()
        ring = BulkRing.create(512)
        try:
            grant = ring.grant(bytes((MF_SHM,)) + b"inner")
            conn._peer_ring = BulkRing.attach(ring.name, ring.generation)
            payload = bytes((MF_SHM,)) + grant
            with pytest.raises(ProtocolError, match="nested"):
                conn._open(payload)
        finally:
            conn.close()
            ring.close()
            self._spare.close()


class IEcho(Remote):
    def echo(self, value): ...


class EchoImpl(IEcho):
    def echo(self, value):
        return value


def _echo_setup():
    domain = Domain("ring-echo")
    return {"echo": domain.run(
        lambda: Capability.create(EchoImpl(), label="ring-echo")
    )}


@pytest.fixture()
def small_ring(monkeypatch):
    """Shrink the ring and threshold (pre-fork, so the host inherits
    both) to make wrap-around and overflow cheap to reach."""
    monkeypatch.setattr(lrmi, "RING_SIZE", 8192)
    monkeypatch.setattr(lrmi, "SHM_THRESHOLD", 2048)
    return 8192


class TestRingOverTheWire:
    def test_large_payloads_ride_the_ring_and_wrap(self, small_ring):
        """Payloads above SHM_THRESHOLD but below the ring size go via
        shared memory; enough of them in sequence force the bump
        allocator to wrap, and every echo still round-trips intact."""
        host = DomainHostProcess(_echo_setup, name="ring-wrap").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            payloads = [bytes([index]) * 5000 for index in range(6)]
            for payload in payloads:
                assert proxy.echo(payload) == payload
        finally:
            client.close()
            host.stop()

    def test_payload_larger_than_ring_falls_back_inline(self, small_ring):
        """A payload the ring cannot hold at all uses the inline socket
        frame — the ring is an optimization, not a protocol demand."""
        host = DomainHostProcess(_echo_setup, name="ring-over").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            huge = b"z" * (small_ring * 3)
            assert proxy.echo(huge) == huge
            # and the connection still works for ring-sized traffic after
            assert proxy.echo(b"w" * 5000) == b"w" * 5000
        finally:
            client.close()
            host.stop()

    def test_respawn_gets_fresh_ring_generation(self, small_ring):
        """Kill the host mid-conversation: the replacement connection
        negotiates fresh rings (fresh generations), and traffic resumes
        without any stale-grant confusion."""
        host = DomainHostProcess(_echo_setup, name="ring-respawn").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            assert proxy.echo(b"a" * 5000) == b"a" * 5000
            host.stop()
            replacement = DomainHostProcess(
                _echo_setup, name="ring-respawn"
            ).start()
            try:
                fresh_client = connect(replacement)
                try:
                    fresh = fresh_client.lookup("echo")
                    assert fresh.echo(b"b" * 5000) == b"b" * 5000
                finally:
                    fresh_client.close()
            finally:
                replacement.stop()
        finally:
            client.close()
            host.stop()
