"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.jvm import VM, ClassAssembler, MapResolver
from repro.jvm.classfile import (
    ACC_PRIVATE,
    ACC_PUBLIC,
    ACC_STATIC,
    CONSTRUCTOR_NAME,
)
from repro.jvm.instructions import ALOAD, INVOKESPECIAL, RETURN

PUBLIC_STATIC = ACC_PUBLIC | ACC_STATIC


def emit_default_constructor(ca, super_name="java/lang/Object"):
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, super_name, CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    return ca


def assemble(name, build, super_name="java/lang/Object", interfaces=(),
             fields=(), flags=ACC_PUBLIC, constructor=True):
    """Compact classfile builder: ``build(ca)`` adds methods."""
    ca = ClassAssembler(name, super_name=super_name, interfaces=interfaces,
                        flags=flags)
    for field_name, desc, *rest in fields:
        ca.field(field_name, desc, rest[0] if rest else ACC_PUBLIC)
    if constructor:
        emit_default_constructor(ca, super_name)
    if build is not None:
        build(ca)
    return ca.build()


def load_classes(vm, classfiles, loader_name="test"):
    """Define a batch of classfiles in a fresh loader; returns the loader."""
    loader = vm.new_loader(
        loader_name,
        resolver=MapResolver({cf.name: cf for cf in classfiles}),
    )
    for cf in classfiles:
        loader.load(cf.name)
    return loader


def static_method(ca, name, desc, emit):
    """Add a public static method; ``emit(m)`` writes the body."""
    m = ca.method(name, desc, PUBLIC_STATIC)
    emit(m)
    return m


def fresh_vm(profile="sunvm", **kwargs):
    return VM(profile=profile, **kwargs)
