"""The marketplace deny matrix, end to end.

Three attacks — a direct guarded call, ``do_privileged`` self-elevation,
and the confused deputy — each exercised in all three deployment shapes
a marketplace servlet can take: in-process (hosted Python behind LRMI
stubs), VM-hosted (verified MiniJVM bytecode behind the enforced VM
kernel), and out-of-process (a forked domain host behind the marshalled
wire, where the caller's restricted context crosses in the call frame).
Plus the web-facing surface: least-privilege install from generated
policy, and typed denials surfacing as HTTP 403.
"""

import pytest

from repro.core import (
    AccessDeniedError,
    Capability,
    Domain,
    Remote,
    check_permission,
    do_privileged,
)
from repro.ipc import DomainHostProcess, connect
from repro.web import JKernelWebServer, Servlet, ServletResponse
from repro.web.client import fetch_once


# -- shared in-process cast ----------------------------------------------------

class Vault(Remote):
    def write(self): ...


class VaultImpl(Vault):
    def write(self):
        check_permission("kv.write")
        return "written"


class Deputy(Remote):
    def relay(self): ...
    def vouch(self): ...


class DeputyImpl(Deputy):
    def __init__(self, vault):
        self._vault = vault

    def relay(self):
        return self._vault.write()

    def vouch(self):
        return do_privileged(self._vault.write)


class Attacker(Remote):
    def direct(self): ...
    def privileged(self): ...
    def via_deputy(self): ...
    def sanctioned(self): ...


class AttackerImpl(Attacker):
    def __init__(self, vault, deputy):
        self._vault = vault
        self._deputy = deputy

    def direct(self):
        return self._vault.write()

    def privileged(self):
        return do_privileged(self._vault.write)

    def via_deputy(self):
        return self._deputy.relay()

    def sanctioned(self):
        return self._deputy.vouch()


@pytest.fixture
def domains():
    created = []
    yield created
    for domain in created:
        domain.terminate()


def make_domain(created, name, policy=None):
    domain = Domain(name)
    if policy is not None:
        domain.set_policy(policy)
    created.append(domain)
    return domain


class TestInProcessMatrix:
    @pytest.fixture
    def attacker(self, domains):
        store = make_domain(domains, "mk-store")
        deputy = make_domain(domains, "mk-deputy",
                             ["kv.read", "kv.write"])
        tenant = make_domain(domains, "mk-tenant", ["kv.read"])
        vault = store.run(lambda: Capability.create(VaultImpl()))
        deputy_cap = deputy.run(
            lambda: Capability.create(DeputyImpl(vault))
        )
        return tenant.run(
            lambda: Capability.create(AttackerImpl(vault, deputy_cap))
        )

    def test_direct_denied(self, attacker):
        with pytest.raises(AccessDeniedError) as info:
            attacker.direct()
        assert info.value.permission == "kv.write:*"
        assert info.value.domain == "mk-tenant"

    def test_do_privileged_abuse_denied(self, attacker):
        with pytest.raises(AccessDeniedError) as info:
            attacker.privileged()
        assert info.value.domain == "mk-tenant"

    def test_confused_deputy_denied(self, attacker):
        with pytest.raises(AccessDeniedError) as info:
            attacker.via_deputy()
        assert info.value.domain == "mk-tenant"

    def test_deputy_vouch_allowed(self, attacker):
        # The sanctioned path: the deputy do_privilege's its own callee,
        # cutting the tenant out of the walk.
        assert attacker.sanctioned() == "written"


# -- VM-hosted matrix ----------------------------------------------------------

LEDGER = "mk/Ledger"
DEPUTY = "mk/Deputy"
KERNEL_SIG = "(Ljava/lang/String;)V"


def _build_vm_market():
    from repro.jkvm import JKernelVM
    from repro.jvm import ClassAssembler, interface
    from repro.jvm.classfile import CONSTRUCTOR_NAME
    from repro.jvm.instructions import (
        ALOAD,
        ICONST,
        INVOKEINTERFACE,
        INVOKESPECIAL,
        INVOKESTATIC,
        IRETURN,
        LDC_STR,
        RETURN,
    )

    def ctor(assembler):
        with assembler.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object",
                   CONSTRUCTOR_NAME, "()V")
            m.emit(RETURN)

    ledger_iface = interface(LEDGER, [("record", "()I")],
                             extends=("jk/Remote",))
    ledger_impl = ClassAssembler("mk/LedgerImpl",
                                 interfaces=(LEDGER, "jk/Remote"))
    ctor(ledger_impl)
    with ledger_impl.method("record", "()I") as m:
        m.emit(LDC_STR, "ledger.append")
        m.emit(INVOKESTATIC, "jk/Kernel", "checkPermission", KERNEL_SIG)
        m.emit(ICONST, 1)
        m.emit(IRETURN)

    deputy_iface = interface(
        DEPUTY,
        [("go", f"(L{LEDGER};)I"), ("vouch", f"(L{LEDGER};)I")],
        extends=("jk/Remote",),
    )
    deputy_impl = ClassAssembler("mk/DeputyImpl",
                                 interfaces=(DEPUTY, "jk/Remote"))
    ctor(deputy_impl)
    with deputy_impl.method("go", f"(L{LEDGER};)I") as m:
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, LEDGER, "record", "()I")
        m.emit(IRETURN)
    with deputy_impl.method("vouch", f"(L{LEDGER};)I") as m:
        m.emit(INVOKESTATIC, "jk/Kernel", "beginPrivileged", "()V")
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, LEDGER, "record", "()I")
        m.emit(INVOKESTATIC, "jk/Kernel", "endPrivileged", "()V")
        m.emit(IRETURN)

    vendor = ClassAssembler("mk/Vendor")
    with vendor.method("direct", f"(L{LEDGER};)I", 0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, LEDGER, "record", "()I")
        m.emit(IRETURN)
    with vendor.method("abuse", f"(L{LEDGER};)I", 0x0009) as m:
        # beginPrivileged from the vendor's own root frame: the mark is
        # at depth 0, so the vendor's domain stays in the walk.
        m.emit(INVOKESTATIC, "jk/Kernel", "beginPrivileged", "()V")
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, LEDGER, "record", "()I")
        m.emit(INVOKESTATIC, "jk/Kernel", "endPrivileged", "()V")
        m.emit(IRETURN)
    with vendor.method("launder", f"(L{DEPUTY};L{LEDGER};)I",
                       0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, DEPUTY, "go", f"(L{LEDGER};)I")
        m.emit(IRETURN)
    with vendor.method("sanctioned", f"(L{DEPUTY};L{LEDGER};)I",
                       0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, DEPUTY, "vouch", f"(L{LEDGER};)I")
        m.emit(IRETURN)

    kernel = JKernelVM()
    ledger_domain = kernel.new_domain("vm-ledger")
    ledger_domain.define([ledger_iface, ledger_impl.build()])
    target = kernel.vm.construct(ledger_domain.load("mk/LedgerImpl"),
                                 domain_tag=ledger_domain.tag)
    ledger_cap = ledger_domain.create_capability(target)

    deputy_domain = kernel.new_domain("vm-deputy")
    deputy_domain.set_policy(["ledger.append"])
    deputy_domain.share_from(ledger_domain, LEDGER)
    deputy_domain.define([deputy_iface, deputy_impl.build()])
    deputy_target = kernel.vm.construct(
        deputy_domain.load("mk/DeputyImpl"),
        domain_tag=deputy_domain.tag,
    )
    deputy_cap = deputy_domain.create_capability(deputy_target)

    vendor_domain = kernel.new_domain("vm-vendor")
    vendor_domain.set_policy(["window.shop"])
    vendor_domain.share_from(ledger_domain, LEDGER)
    vendor_domain.share_from(deputy_domain, DEPUTY)
    vendor_domain.define([vendor.build()])
    driver = vendor_domain.load("mk/Vendor")
    return kernel, vendor_domain, driver, ledger_cap, deputy_cap


@pytest.fixture(scope="class")
def vm_market():
    return _build_vm_market()


class TestVMHostedMatrix:
    def _call(self, vm_market, method, args, desc=None):
        kernel, vendor_domain, driver, ledger_cap, deputy_cap = vm_market
        desc = desc or f"(L{LEDGER};)I"
        return kernel.vm.call_static(driver, method, desc, args,
                                     domain_tag=vendor_domain.tag)

    def _expect_denied(self, vm_market, method, args, desc=None):
        from repro.jvm.errors import JThrowable

        with pytest.raises(JThrowable) as info:
            self._call(vm_market, method, args, desc)
        assert "AccessDenied" in str(info.value)

    def test_direct_denied(self, vm_market):
        ledger_cap = vm_market[3]
        self._expect_denied(vm_market, "direct", [ledger_cap])

    def test_begin_privileged_abuse_denied(self, vm_market):
        ledger_cap = vm_market[3]
        self._expect_denied(vm_market, "abuse", [ledger_cap])

    def test_confused_deputy_denied(self, vm_market):
        _, _, _, ledger_cap, deputy_cap = vm_market
        self._expect_denied(vm_market, "launder",
                            [deputy_cap, ledger_cap],
                            f"(L{DEPUTY};L{LEDGER};)I")

    def test_deputy_vouch_allowed(self, vm_market):
        _, _, _, ledger_cap, deputy_cap = vm_market
        assert self._call(vm_market, "sanctioned",
                          [deputy_cap, ledger_cap],
                          f"(L{DEPUTY};L{LEDGER};)I") == 1

    def test_granted_vendor_allowed(self, vm_market):
        kernel, vendor_domain, driver, ledger_cap, _ = vm_market
        vendor_domain.set_policy(["window.shop", "ledger.append"])
        try:
            assert self._call(vm_market, "direct", [ledger_cap]) == 1
        finally:
            vendor_domain.set_policy(["window.shop"])


# -- out-of-process matrix -----------------------------------------------------
#
# The host process carries two domains: a restricted "booth" (the direct
# and do_privileged attacks live entirely in the child) and a broad
# "clerk" (the confused deputy: a restricted *parent* domain's wire
# context must poison the clerk's otherwise-sufficient chain).

class Booth(Remote):
    def write(self): ...
    def write_privileged(self): ...


class BoothImpl(Booth):
    def write(self):
        check_permission("kv.write")
        return "booth-wrote"

    def write_privileged(self):
        return do_privileged(self.write)


class Clerk(Remote):
    def write(self): ...


class ClerkImpl(Clerk):
    def write(self):
        check_permission("kv.write")
        return "clerk-wrote"


def _market_host_setup():
    booth = Domain("oop-booth").set_policy(["kv.read"])
    clerk = Domain("oop-clerk").set_policy(["kv.read", "kv.write"])
    return {
        "booth": booth.run(
            lambda: Capability.create(BoothImpl(), label="booth")
        ),
        "clerk": clerk.run(
            lambda: Capability.create(ClerkImpl(), label="clerk")
        ),
    }


class Launderer(Remote):
    def go(self): ...


class LaundererImpl(Launderer):
    def __init__(self, proxy):
        self._proxy = proxy

    def go(self):
        return self._proxy.write()


@pytest.fixture(scope="class")
def market_host():
    host = DomainHostProcess(_market_host_setup, name="market").start()
    client = connect(host)
    yield client
    client.close()
    host.stop()


class TestOutOfProcessMatrix:
    def test_direct_denied_typed_across_the_wire(self, market_host):
        booth = market_host.lookup("booth")
        with pytest.raises(AccessDeniedError) as info:
            booth.write()
        assert info.value.permission == "kv.write:*"
        assert info.value.domain == "oop-booth"

    def test_do_privileged_abuse_denied(self, market_host):
        booth = market_host.lookup("booth")
        with pytest.raises(AccessDeniedError) as info:
            booth.write_privileged()
        assert info.value.domain == "oop-booth"

    def test_confused_deputy_denied_via_imported_context(
        self, market_host, domains
    ):
        # Unrestricted parent: the broad clerk suffices on its own.
        clerk = market_host.lookup("clerk")
        assert clerk.write() == "clerk-wrote"
        # Restricted parent domain: its context crosses in the call
        # frame and the intersection denies, even though every domain
        # in the *child* implies kv.write.
        tenant = make_domain(domains, "oop-tenant", ["kv.read"])
        launderer = tenant.run(
            lambda: Capability.create(LaundererImpl(clerk))
        )
        with pytest.raises(AccessDeniedError) as info:
            launderer.go()
        assert info.value.permission == "kv.write:*"
        # The wire still works for the sanctioned caller afterwards.
        assert clerk.write() == "clerk-wrote"


# -- the web surface -----------------------------------------------------------

HONEST_VENDOR = '''
class ShopFront(Servlet):
    def service(self, request):
        return ServletResponse(200, {}, "motd: %s" % kv.read("motd"))
servlet = ShopFront
'''

ROGUE_VENDOR = '''
class ShopLifter(Servlet):
    def service(self, request):
        if request.path.endswith("/steal"):
            kv_admin.write("motd", "pwned")
            return ServletResponse(200, {}, "stolen")
        return ServletResponse(200, {}, "motd: %s" % kv.read("motd"))
servlet = ShopLifter
'''


class KvStore(Remote):
    def read(self, key): ...
    def write(self, key, value): ...


class KvStoreImpl(KvStore):
    def __init__(self):
        self.data = {"motd": "hello"}

    def read(self, key):
        return self.data.get(key)

    def write(self, key, value):
        self.data[key] = value
        return True


class _PolicedServlet(Servlet):
    def service(self, request):
        check_permission("market.admin")
        return ServletResponse(200, {}, b"admin")


class TestWebSurface:
    @pytest.fixture
    def market(self, domains):
        store = make_domain(domains, "web-store")
        impl = KvStoreImpl()
        read_cap = store.run(
            lambda: Capability.create(impl, guard="kv.read")
        )
        write_cap = store.run(
            lambda: Capability.create(impl, guard="kv.write")
        )
        with JKernelWebServer(workers=1) as server:
            yield server, server.port, read_cap, write_cap

    def test_generated_policy_install_and_denials(self, market):
        server, port, read_cap, write_cap = market
        from repro.toolchain import propose_policy_source

        grants = {"kv": read_cap, "kv_admin": write_cap}
        proposal = propose_policy_source(ROGUE_VENDOR, grants)
        kinds = sorted(str(p) for p in proposal)
        assert kinds == ["kv.read:*", "kv.write:*"]

        server.install_source("/shop", HONEST_VENDOR, grants=grants,
                              policy="generate")
        assert fetch_once("127.0.0.1", port,
                          "/servlet/shop").status == 200

        # Operator grants the rogue vendor less than it asked for.
        server.install_source("/lifter", ROGUE_VENDOR, grants=grants,
                              policy=["kv.read"])
        assert fetch_once("127.0.0.1", port,
                          "/servlet/lifter").status == 200
        denied = fetch_once("127.0.0.1", port, "/servlet/lifter/steal")
        assert denied.status == 403
        assert b"access denied" in denied.body

    def test_in_process_policy_install_403(self, market):
        server, port, _, _ = market
        server.install_servlet("/adminless", _PolicedServlet,
                               policy=["market.page"])
        assert fetch_once("127.0.0.1", port,
                          "/servlet/adminless").status == 403

    def test_out_of_process_policy_install_403(self, market):
        server, port, _, _ = market
        server.install_servlet_out_of_process(
            "/oopbooth", _PolicedServlet, supervise=False,
            policy=["market.page"],
        )
        assert fetch_once("127.0.0.1", port,
                          "/servlet/oopbooth").status == 403
