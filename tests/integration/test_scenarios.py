"""End-to-end scenarios straight from the paper's narrative, plus the
example scripts as executable documentation."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.core import (
    Capability,
    Domain,
    Remote,
    RemoteException,
    RevokedException,
    get_repository,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestPaperWalkthrough:
    """§3.1: create, publish, look up, invoke, revoke, terminate."""

    def test_full_lifecycle(self, repository):
        class ReadFile(Remote):
            def read_byte(self): ...

        class ReadFileImpl(ReadFile):
            def read_byte(self):
                return 7

        domain1 = Domain("walkthrough-1")
        cap = domain1.run(lambda: Capability.create(ReadFileImpl()))
        get_repository().bind("walkthrough", cap, domain=domain1)

        found = get_repository().lookup("walkthrough")
        assert found.read_byte() == 7
        cap.revoke()
        with pytest.raises(RevokedException):
            found.read_byte()
        domain1.terminate()


class TestMutuallySuspiciousDomains:
    """Two components that do not trust each other communicate only
    through capabilities; neither can reach the other's internals."""

    def test_bidirectional_capabilities(self):
        class Offer(Remote):
            def propose(self, amount): ...

        class Buyer(Offer):
            def __init__(self):
                self.history = []
                self.wallet = 100  # internal state, never shared

            def propose(self, amount):
                self.history.append(amount)
                return amount <= self.wallet

        class Seller(Offer):
            def __init__(self):
                self.minimum = 40

            def propose(self, amount):
                return amount >= self.minimum

        buyer_domain = Domain("buyer")
        seller_domain = Domain("seller")
        buyer_impl = Buyer()
        buyer_cap = buyer_domain.run(lambda: Capability.create(buyer_impl))
        seller_cap = seller_domain.run(lambda: Capability.create(Seller()))

        # negotiate through capabilities only
        assert seller_cap.propose(50)
        assert buyer_cap.propose(50)
        assert not seller_cap.propose(10)

        # the seller's view of the buyer exposes no wallet
        assert not hasattr(buyer_cap, "wallet")
        # termination of the seller cannot strand the buyer
        seller_domain.terminate()
        with pytest.raises(RemoteException):
            seller_cap.propose(60)
        assert buyer_cap.propose(10)  # buyer still fine


class TestServerClientGarbage:
    """§2 'Domain Termination': a dead server's objects must not live on
    in its clients, and revocation prevents cross-domain garbage
    retention."""

    def test_client_cannot_retain_server_memory(self):
        import gc
        import weakref

        class Big(Remote):
            def poke(self): ...

        class BigImpl(Big):
            def __init__(self):
                self.payload = bytearray(1024)

            def poke(self):
                return len(self.payload)

        server = Domain("big-server")
        target = BigImpl()
        cap = server.run(lambda: Capability.create(target))
        ref = weakref.ref(target)
        del target
        assert cap.poke() == 1024
        server.terminate()  # revokes, severing the stub->target edge
        gc.collect()
        assert ref() is None  # client holding `cap` does not pin it


class TestExamplesRun:
    """Every example script runs to completion (they print as they go)."""

    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "file_server.py",
        "extensible_web_server.py",
        "cs314_pipeline.py",
        "marketplace.py",
    ])
    def test_example(self, script, capsys, repository):
        path = EXAMPLES / script
        assert path.exists(), f"missing example {script}"
        saved_argv = sys.argv
        sys.argv = [str(path)]
        try:
            runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = saved_argv
        out = capsys.readouterr().out
        assert out  # examples narrate their steps


class TestVmLevelHostileCode:
    """Hostile-bytecode scenarios enforced by the MiniJVM path."""

    def test_forged_reference_rejected_before_running(self):
        from repro.jvm import ClassAssembler, MapResolver, VerifyError, VM

        vm = VM()
        ca = ClassAssembler("evil/Forge")
        with ca.method("forge", "(I)Ljava/lang/Object;", 0x0009) as m:
            m.emit("iload", 0)
            m.emit("areturn")
        loader = vm.new_loader(
            "evil", resolver=MapResolver({"evil/Forge": ca.build()})
        )
        with pytest.raises(VerifyError):
            loader.load("evil/Forge")

    def test_private_capability_field_unreachable_from_guest(self):
        """Guest bytecode cannot read a stub's private target field —
        the unforgeability of VM-level capabilities."""
        from repro.jkvm import JKernelVM
        from repro.jvm import ClassAssembler, VerifyError, interface

        kernel = JKernelVM()
        server = kernel.new_domain("srv")
        iface = interface("s/I", [("f", "()I")], extends=("jk/Remote",))
        impl = ClassAssembler("s/Impl", interfaces=("s/I", "jk/Remote"))
        with impl.method("<init>", "()V") as m:
            m.emit("aload", 0)
            m.emit("invokespecial", "java/lang/Object", "<init>", "()V")
            m.emit("return")
        with impl.method("f", "()I") as m:
            m.emit("iconst", 1)
            m.emit("ireturn")
        server.define([iface, impl.build()])
        target = kernel.vm.construct(server.load("s/Impl"),
                                     domain_tag=server.tag)
        stub = server.create_capability(target)

        # attacker code in another domain tries GETFIELD on the stub
        client = kernel.new_domain("attacker")
        client.share_from(server, "s/I")
        client.loader.share(stub.jclass)  # even with the class visible...
        thief = ClassAssembler("a/Thief")
        stub_class_name = stub.jclass.name
        with thief.method(
            "steal", f"(L{stub_class_name};)Ljava/lang/Object;", 0x0009
        ) as m:
            m.emit("aload", 0)
            m.emit("getfield", stub_class_name, "target")
            m.emit("areturn")
        with pytest.raises(VerifyError, match="private"):
            client.define([thief.build()])
