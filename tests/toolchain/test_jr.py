"""The Jr language: lexer, parser, codegen, execution semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.toolchain import (
    JrAssembler,
    JrCompileError,
    JrCompiler,
    JrLinker,
    JrRunner,
    JrSyntaxError,
    compile_source,
    parse,
    tokenize,
)


def run_jr(source, module="main", args=()):
    """Compile, assemble, link and execute; returns (result, output)."""
    asm = JrCompiler().compile(source, module=module)
    image = JrLinker().link(JrAssembler().assemble(asm))
    outcome = JrRunner().run(image, f"jr/{module}", args=args)
    return outcome["result"], outcome["output"]


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("func f(x) { return x + 1; }")]
        assert kinds == ["kw", "name", "op", "name", "op", "op", "kw",
                         "name", "op", "int", "op", "op", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize("# comment\n// another\n42")
        assert [t.text for t in tokens[:-1]] == ["42"]

    def test_line_numbers(self):
        tokens = tokenize("1\n2\n3")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(JrSyntaxError, match="unexpected character"):
            tokenize("func $")


class TestParser:
    def test_function_shape(self):
        program = parse("func add(a, b) { return a + b; }")
        assert len(program.functions) == 1
        function = program.functions[0]
        assert function.name == "add"
        assert function.params == ("a", "b")

    def test_precedence(self):
        program = parse("func f() { return 1 + 2 * 3 < 7 && 1; }")
        # parses without error; semantics checked in execution tests
        assert program.functions[0].name == "f"

    def test_duplicate_function_rejected(self):
        with pytest.raises(JrSyntaxError, match="duplicate function"):
            parse("func f() { return 0; } func f() { return 1; }")

    def test_duplicate_param_rejected(self):
        with pytest.raises(JrSyntaxError, match="duplicate parameter"):
            parse("func f(a, a) { return 0; }")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(JrSyntaxError):
            parse("func f() { return 1 }")

    def test_else_if_chain(self):
        source = """
        func sign(x) {
            if (x > 0) { return 1; }
            else if (x < 0) { return -1; }
            else { return 0; }
        }
        func main() { return sign(-5); }
        """
        result, _ = run_jr(source)
        assert result == -1


class TestExecution:
    def test_arithmetic(self):
        result, _ = run_jr("func main() { return (2 + 3) * 4 - 6 / 2; }")
        assert result == 17

    def test_variables_and_while(self):
        source = """
        func main() {
            var total = 0;
            var i = 1;
            while (i <= 100) { total = total + i; i = i + 1; }
            return total;
        }
        """
        assert run_jr(source)[0] == 5050

    def test_recursion(self):
        source = """
        func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        func main() { return fact(10); }
        """
        assert run_jr(source)[0] == 3628800

    def test_print_output(self):
        _, output = run_jr(
            "func main() { print 1; print 2 + 3; return 0; }"
        )
        assert output == ["1", "5"]

    def test_logical_short_circuit(self):
        source = """
        func boom() { return 1 / 0; }
        func main() {
            if (0 && boom()) { return 1; }
            if (1 || boom()) { return 42; }
            return 2;
        }
        """
        assert run_jr(source)[0] == 42

    def test_not_operator(self):
        assert run_jr("func main() { return !0 + !5; }")[0] == 1

    def test_unary_minus(self):
        assert run_jr("func main() { return -(3 + 4); }")[0] == -7

    def test_fall_off_end_returns_zero(self):
        assert run_jr("func main() { var x = 1; }")[0] == 0

    def test_args_passed(self):
        source = "func main(a, b) { return a * 100 + b; }"
        assert run_jr(source, args=(4, 2))[0] == 402

    def test_comparison_operators(self):
        source = """
        func main() {
            return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3)
                 + (1 == 1) + (1 != 1);
        }
        """
        assert run_jr(source)[0] == 4

    def test_modulo(self):
        assert run_jr("func main() { return 17 % 5; }")[0] == 2

    def test_division_by_zero_is_guest_exception(self):
        from repro.jvm.errors import JThrowable

        with pytest.raises(JThrowable, match="ArithmeticException"):
            run_jr("func main() { return 1 / 0; }")


class TestCompileErrors:
    def test_undeclared_variable(self):
        with pytest.raises(JrCompileError, match="undeclared"):
            compile_source("func main() { return ghost; }")

    def test_double_declaration(self):
        with pytest.raises(JrCompileError, match="already declared"):
            compile_source("func main() { var x = 1; var x = 2; }")

    def test_unknown_function(self):
        with pytest.raises(JrCompileError, match="unknown function"):
            compile_source("func main() { return nothing(); }")

    def test_wrong_arity(self):
        with pytest.raises(JrCompileError, match="expects 1 args"):
            compile_source(
                "func f(x) { return x; } func main() { return f(1, 2); }"
            )


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_arithmetic_matches_python(self, a, b):
        source = f"func main() {{ return ({a}) + ({b}) * 2; }}"
        assert run_jr(source)[0] == a + b * 2

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=20))
    def test_iterative_equals_recursive(self, n):
        source = f"""
        func fib_rec(n) {{
            if (n < 2) {{ return n; }}
            return fib_rec(n - 1) + fib_rec(n - 2);
        }}
        func fib_iter(n) {{
            var a = 0; var b = 1; var i = 0;
            while (i < n) {{ var t = a + b; a = b; b = t; i = i + 1; }}
            return a;
        }}
        func main() {{
            return (fib_rec({n}) == fib_iter({n}));
        }}
        """
        assert run_jr(source)[0] == 1
