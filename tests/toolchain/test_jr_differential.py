"""Differential testing: random Jr expressions vs a Python reference.

Hypothesis generates expression trees; each is compiled through the full
pipeline (Jr -> assembly -> classfile -> verifier -> interpreter) and the
result is compared against a direct Python evaluation with JVM integer
semantics (32-bit wrap, truncating division)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import i32
from repro.toolchain import JrAssembler, JrCompiler, JrLinker, JrRunner


def run_jr_expression(expr_text, variables):
    params = ", ".join(sorted(variables))
    source = f"func main({params}) {{ return {expr_text}; }}"
    asm = JrCompiler().compile(source, module="diff")
    image = JrLinker().link(JrAssembler().assemble(asm))
    args = [variables[name] for name in sorted(variables)]
    return JrRunner().run(image, "jr/diff", args=args)["result"]


# -- reference semantics ---------------------------------------------------

def _ref_div(a, b):
    q = abs(a) // abs(b)
    return i32(-q if (a < 0) != (b < 0) else q)


def _ref_rem(a, b):
    return i32(a - _ref_div(a, b) * b)


class _Expr:
    """Expression tree carrying both Jr text and a reference evaluator."""

    def __init__(self, text, evaluate):
        self.text = text
        self.evaluate = evaluate


def _literal(value):
    # Jr has no negative literals; express them as (0 - n).  MIN_INT
    # needs the same dodge Java needs, since +2**31 is not a literal.
    if value == -(2**31):
        return _Expr("(0 - 2147483647 - 1)", lambda env: i32(value))
    if value < 0:
        return _Expr(f"(0 - {-value})", lambda env, v=value: i32(v))
    return _Expr(str(value), lambda env, v=value: i32(v))


def _variable(name):
    return _Expr(name, lambda env, n=name: i32(env[n]))


def _binary(op, left, right):
    def evaluate(env):
        a = left.evaluate(env)
        b = right.evaluate(env)
        if op == "+":
            return i32(a + b)
        if op == "-":
            return i32(a - b)
        if op == "*":
            return i32(a * b)
        if op == "/":
            return _ref_div(a, b) if b != 0 else None
        if op == "%":
            return _ref_rem(a, b) if b != 0 else None
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "&&":
            if a == 0:
                return 0
            b_val = right.evaluate(env)
            return 1 if b_val != 0 else 0
        if op == "||":
            if a != 0:
                return 1
            b_val = right.evaluate(env)
            return 1 if b_val != 0 else 0
        raise AssertionError(op)

    def lazy_evaluate(env):
        # short-circuit ops must not evaluate the right side eagerly
        a = left.evaluate(env)
        if a is None:
            return None
        if op == "&&" and a == 0:
            return 0
        if op == "||" and a != 0:
            return 1
        b = right.evaluate(env)
        if b is None:
            return None
        if op in ("&&", "||"):
            return 1 if b != 0 else 0
        return evaluate(env)

    return _Expr(f"({left.text} {op} {right.text})", lazy_evaluate)


def _negate(operand):
    def evaluate(env):
        value = operand.evaluate(env)
        return None if value is None else i32(-value)

    return _Expr(f"(-{operand.text})", evaluate)


_VAR_NAMES = ("a", "b", "c")

_leaf = st.one_of(
    st.integers(min_value=0, max_value=1000).map(_literal),
    st.integers(min_value=-(2**31), max_value=2**31 - 1).map(_literal),
    st.sampled_from(_VAR_NAMES).map(_variable),
)

_OPS = ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
        "&&", "||")


def _compose(children):
    return st.builds(
        lambda op, left, right: _binary(op, left, right),
        st.sampled_from(_OPS), children, children,
    ) | children.map(_negate)


_expr = st.recursive(_leaf, _compose, max_leaves=10)

_env = st.fixed_dictionaries({
    name: st.integers(min_value=-10_000, max_value=10_000)
    for name in _VAR_NAMES
})


class TestDifferential:
    @settings(max_examples=40, deadline=None)
    @given(expr=_expr, env=_env)
    def test_expression_matches_reference(self, expr, env):
        expected = expr.evaluate(env)
        if expected is None:
            return  # division by zero somewhere: guest exception, skip
        assert run_jr_expression(expr.text, env) == expected

    @settings(max_examples=15, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=30),
        step=st.integers(min_value=1, max_value=5),
        bound=st.integers(min_value=0, max_value=100),
    )
    def test_loop_matches_reference(self, start, step, bound):
        source = f"""
        func main() {{
            var total = 0;
            var i = {start};
            while (i < {bound}) {{ total = total + i; i = i + {step}; }}
            return total;
        }}
        """
        asm = JrCompiler().compile(source, module="loop")
        image = JrLinker().link(JrAssembler().assemble(asm))
        result = JrRunner().run(image, "jr/loop")["result"]
        expected = 0
        i = start
        while i < bound:
            expected += i
            i += step
        assert result == i32(expected)
