"""The text assembler and the linker."""

import pytest

from repro.jvm import VM, MapResolver
from repro.toolchain import (
    AsmError,
    LinkError,
    Linker,
    assemble_many,
    assemble_text,
    classfile_to_portable,
    link,
    portable_to_classfile,
)

GOOD = """
.class t/Math
.method double (I)I static
    iload 0
    iconst 2
    imul
    ireturn
.end
.method countdown (I)I static
    iload 0
L0:
    dup
    ifle L1
    iconst 1
    isub
    goto L0
L1:
    ireturn
.end
"""


def run_static(classfiles, class_name, method, desc, args):
    vm = VM()
    loader = vm.new_loader(
        "asm", resolver=MapResolver({cf.name: cf for cf in classfiles})
    )
    return vm.call_static(loader.load(class_name), method, desc, args)


class TestAssembler:
    def test_assemble_and_run(self):
        cf = assemble_text(GOOD)
        assert cf.name == "t/Math"
        assert run_static([cf], "t/Math", "double", "(I)I", [21]) == 42

    def test_forward_and_backward_labels(self):
        cf = assemble_text(GOOD)
        assert run_static([cf], "t/Math", "countdown", "(I)I", [5]) == 0

    def test_comments_and_blank_lines(self):
        source = """
        .class t/C
        # full line comment
        .method f ()I static   ; trailing comment
            iconst 7  # another
            ireturn
        .end
        """
        cf = assemble_text(source)
        assert run_static([cf], "t/C", "f", "()I", []) == 7

    def test_string_operand(self):
        source = """
        .class t/S
        .method greet ()Ljava/lang/String; static
            ldc_str "hello world"
            areturn
        .end
        """
        cf = assemble_text(source)
        vm = VM()
        loader = vm.new_loader("asm", resolver=MapResolver({cf.name: cf}))
        result = vm.call_static(loader.load("t/S"), "greet",
                                "()Ljava/lang/String;", [])
        assert vm.text_of(result) == "hello world"

    def test_fields_and_modifiers(self):
        source = """
        .class t/F
        .field open I
        .field hidden I private
        .field shared I static
        .method f ()I static
            iconst 0
            ireturn
        .end
        """
        cf = assemble_text(source)
        assert len(cf.fields) == 3
        assert cf.fields[1].is_private
        assert cf.fields[2].is_static

    def test_multiple_classes(self):
        source = GOOD + "\n.class t/Other\n.method g ()I static\n" \
            "    iconst 1\n    ireturn\n.end\n"
        classfiles = assemble_many(source)
        assert [cf.name for cf in classfiles] == ["t/Math", "t/Other"]

    def test_undefined_label_rejected(self):
        source = """
        .class t/Bad
        .method f ()I static
            goto NOWHERE
        .end
        """
        with pytest.raises(AsmError, match="undefined label"):
            assemble_text(source)

    def test_unknown_opcode_rejected(self):
        source = ".class t/Bad\n.method f ()V static\n    explode\n.end\n"
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble_text(source)

    def test_wrong_operand_count_rejected(self):
        source = ".class t/Bad\n.method f ()V static\n    iconst\n.end\n"
        with pytest.raises(AsmError, match="expects 1 operands"):
            assemble_text(source)

    def test_missing_end_rejected(self):
        source = ".class t/Bad\n.method f ()V static\n    return\n"
        with pytest.raises(AsmError, match="missing .end"):
            assemble_text(source)

    def test_label_defined_twice_rejected(self):
        source = (
            ".class t/Bad\n.method f ()V static\nL0:\nL0:\n    return\n.end\n"
        )
        with pytest.raises(AsmError, match="defined twice"):
            assemble_text(source)

    def test_class_extends_and_implements(self):
        source = (
            ".class t/Sub extends java/lang/Throwable\n"
            ".method f ()I static\n    iconst 0\n    ireturn\n.end\n"
        )
        cf = assemble_text(source)
        assert cf.super_name == "java/lang/Throwable"


class TestLinker:
    def _modules(self):
        lib = assemble_text(
            ".class t/Lib\n.method helper (I)I static\n"
            "    iload 0\n    iconst 1\n    iadd\n    ireturn\n.end\n"
        )
        app = assemble_text(
            ".class t/App\n.method main ()I static\n"
            "    iconst 41\n"
            "    invokestatic t/Lib helper (I)I\n"
            "    ireturn\n.end\n"
        )
        return lib, app

    def test_link_success_and_entry_points(self):
        lib, app = self._modules()
        image = link([lib, app])
        assert image.entry_points == {"t/App": ("main", "()I")}
        assert run_static(list(image.classfiles), "t/App", "main",
                          "()I", []) == 42

    def test_missing_module_detected(self):
        _, app = self._modules()
        with pytest.raises(LinkError, match="t/Lib"):
            link([app])

    def test_missing_method_detected(self):
        lib, _ = self._modules()
        app = assemble_text(
            ".class t/App\n.method main ()I static\n"
            "    iconst 1\n"
            "    invokestatic t/Lib missing (I)I\n"
            "    ireturn\n.end\n"
        )
        with pytest.raises(LinkError, match="t/Lib.missing"):
            link([lib, app])

    def test_missing_field_detected(self):
        holder = assemble_text(
            ".class t/H\n.field real I static\n"
            ".method f ()I static\n    iconst 0\n    ireturn\n.end\n"
        )
        user = assemble_text(
            ".class t/U\n.method f ()I static\n"
            "    getstatic t/H fake\n    ireturn\n.end\n"
        )
        with pytest.raises(LinkError, match="t/H.fake"):
            link([holder, user])

    def test_environment_classes_provided(self):
        app = assemble_text(
            ".class t/Sys\n.method f ()V static\n"
            "    iconst 7\n"
            "    invokestatic java/lang/System printInt (I)V\n"
            "    return\n.end\n"
        )
        link([app])  # java/lang/* provided by default

    def test_all_undefined_symbols_reported(self):
        app = assemble_text(
            ".class t/Multi\n.method f ()V static\n"
            "    iconst 0\n"
            "    invokestatic t/A fa ()V\n"
            "    invokestatic t/B fb ()V\n"
            "    pop\n    return\n.end\n"
        )
        # note: invokestatic ()V pushes nothing; fix stack: use two calls
        with pytest.raises(LinkError) as info:
            link([app])
        assert "t/A" in str(info.value)
        assert "t/B" in str(info.value)


class TestPortableForm:
    def test_roundtrip(self):
        original = assemble_text(GOOD)
        portable = classfile_to_portable(original)
        rebuilt = portable_to_classfile(portable)
        assert rebuilt.name == original.name
        assert rebuilt.methods[0].code == original.methods[0].code
        assert run_static([rebuilt], "t/Math", "double", "(I)I", [10]) == 20

    def test_portable_is_plain_data(self):
        from repro.core import dumps, loads

        portable = classfile_to_portable(assemble_text(GOOD))
        # crosses domains via the serializer: plain dicts/lists/ints/strs
        copy = loads(dumps(portable))
        assert copy == portable
