"""The policy-layer toolchain passes: secure object initialization
(initcheck) and static least-privilege policy generation (policygen)."""

import pytest

from repro.core import Capability, Domain, Permission, Remote
from repro.jvm import ClassAssembler, interface
from repro.jvm.classfile import CONSTRUCTOR_NAME
from repro.jvm.instructions import (
    ACONST_NULL,
    ALOAD,
    ARETURN,
    ASTORE,
    ATHROW,
    CHECKCAST,
    DUP,
    GOTO,
    ICONST,
    IFEQ,
    ILOAD,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    LDC_STR,
    NEW,
    PUTFIELD,
    PUTSTATIC,
    RETURN,
)
from repro.toolchain import (
    InitEscapeError,
    PolicyGenError,
    check_initialization,
    generate_policy,
    propose_policy_source,
)

OBJ = "java/lang/Object"


def ctor_class(name="t/C", fields=(), extra_methods=None):
    ca = ClassAssembler(name)
    for fname, fdesc, fflags in fields:
        ca.field(fname, fdesc, fflags)
    return ca


def build_ctor(ca, emit):
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        emit(m)
    return ca.build()


class TestInitcheckAccepts:
    def test_plain_delegating_constructor(self):
        ca = ctor_class()
        cf = build_ctor(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ))
        check_initialization(cf)

    def test_use_after_delegation(self):
        ca = ctor_class(fields=(("f", f"L{OBJ};", 0x0002),))
        cf = build_ctor(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(ALOAD, 0),          # now initialized
            m.emit(ACONST_NULL),
            m.emit(PUTFIELD, "t/C", "f"),
            m.emit(RETURN),
        ))
        check_initialization(cf)

    def test_delegation_clears_all_copies(self):
        # this is duplicated into a local before delegation; the stored
        # copy must also become initialized afterwards.
        ca = ctor_class(fields=(("f", f"L{OBJ};", 0x0002),))
        cf = build_ctor(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(ASTORE, 1),          # copy of uninit this
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(ALOAD, 1),           # the copy is initialized too
            m.emit(ACONST_NULL),
            m.emit(PUTFIELD, "t/C", "f"),
            m.emit(RETURN),
        ))
        check_initialization(cf)

    def test_interface_is_noop(self):
        check_initialization(interface("t/I", [("m", "()V")]))

    def test_non_constructor_methods_ignored(self):
        ca = ClassAssembler("t/M")
        with ca.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V")
            m.emit(RETURN)
        with ca.method("leakSelf", f"()L{OBJ};") as m:
            m.emit(ALOAD, 0)   # fine outside <init>
            m.emit(ARETURN)
        check_initialization(ca.build())


class TestInitcheckRejects:
    def emit_and_check(self, ca, emit, match):
        cf = build_ctor(ca, emit)
        with pytest.raises(InitEscapeError, match=match):
            check_initialization(cf)

    def test_putstatic_escape(self):
        ca = ctor_class("t/S", fields=(("leak", f"L{OBJ};", 0x0009),))
        self.emit_and_check(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(PUTSTATIC, "t/S", "leak"),
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "static")

    def test_putfield_value_escape(self):
        # storing uninit this as a *value* into another object's field
        ca = ctor_class("t/F", fields=(("f", f"L{OBJ};", 0x0002),))
        self.emit_and_check(ca, lambda m: (
            m.emit(NEW, "t/F"),
            m.emit(ALOAD, 0),
            m.emit(PUTFIELD, "t/F", "f"),
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "field")

    def test_argument_escape(self):
        ca = ctor_class("t/A")
        with ca.method("helper", f"(L{OBJ};)V", 0x0009) as m:
            m.emit(RETURN)
        self.emit_and_check(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(INVOKESTATIC, "t/A", "helper", f"(L{OBJ};)V"),
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "argument")

    def test_virtual_call_on_uninit_receiver(self):
        ca = ctor_class("t/V")
        with ca.method("peek", "()V") as m:
            m.emit(RETURN)
        self.emit_and_check(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(INVOKEVIRTUAL, "t/V", "peek", "()V"),
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "invoked on uninitialized")

    def test_return_without_delegation(self):
        ca = ctor_class("t/R")
        self.emit_and_check(ca, lambda m: (
            m.emit(RETURN),
        ), "without initializing")

    def test_maybe_uninit_after_join_rejected(self):
        # pessimistic merge: delegation on only one branch leaves this
        # *possibly* uninitialized at the join — using it there rejects.
        ca2 = ctor_class("t/B2", fields=(("f", f"L{OBJ};", 0x0002),))
        cf = build_ctor(ca2, lambda m: (
            m.emit(ICONST, 1),                             # 0
            m.emit(IFEQ, 5),                               # 1: skip init
            m.emit(ALOAD, 0),                              # 2
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),  # 3
            m.emit(GOTO, 5),                               # 4
            m.emit(ALOAD, 0),                              # 5: join —
            m.emit(ACONST_NULL),                           #    maybe-uninit
            m.emit(PUTFIELD, "t/B2", "f"),
            m.emit(RETURN),
        ))
        with pytest.raises(InitEscapeError):
            check_initialization(cf)

    def test_checkcast_preserves_uninit(self):
        ca = ctor_class("t/CC", fields=(("leak", f"L{OBJ};", 0x0009),))
        self.emit_and_check(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(CHECKCAST, OBJ),
            m.emit(PUTSTATIC, "t/CC", "leak"),
            m.emit(ALOAD, 0),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "static")

    def test_dup_tracks_both_copies(self):
        ca = ctor_class("t/D", fields=(("leak", f"L{OBJ};", 0x0009),))
        self.emit_and_check(ca, lambda m: (
            m.emit(ALOAD, 0),
            m.emit(DUP),
            m.emit(PUTSTATIC, "t/D", "leak"),
            m.emit(INVOKESPECIAL, OBJ, CONSTRUCTOR_NAME, "()V"),
            m.emit(RETURN),
        ), "static")


KERNEL_SIG = "(Ljava/lang/String;)V"


class TestGeneratePolicy:
    def checked_class(self, *permissions):
        ca = ClassAssembler("g/Svc")
        with ca.method("go", "()V", 0x0009) as m:
            for permission in permissions:
                m.emit(LDC_STR, permission)
                m.emit(INVOKESTATIC, "jk/Kernel", "checkPermission",
                       KERNEL_SIG)
            m.emit(RETURN)
        return ca.build()

    def test_collects_constants(self):
        ps = generate_policy([self.checked_class("a.read", "b.write:x")])
        assert sorted(str(p) for p in ps) == ["a.read:*", "b.write:x"]

    def test_dedupes(self):
        ps = generate_policy([self.checked_class("a.read", "a.read")])
        assert len(ps) == 1

    def test_computed_permission_rejected(self):
        ca = ClassAssembler("g/Bad")
        with ca.method("go", "(Ljava/lang/String;)V", 0x0009) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESTATIC, "jk/Kernel", "checkPermission",
                   KERNEL_SIG)
            m.emit(RETURN)
        with pytest.raises(PolicyGenError, match="string constant"):
            generate_policy([ca.build()])

    def test_guard_table_hits(self):
        ca = ClassAssembler("g/T")
        with ca.method("go", "()V", 0x0009) as m:
            m.emit(INVOKESTATIC, "lib/Files", "delete", "()V")
            m.emit(RETURN)
        ps = generate_policy(
            [ca.build()],
            guard_table={("lib/Files", "delete"): "file.delete"},
        )
        assert ps.implies(Permission.parse("file.delete"))

    def test_guard_table_desc_specific(self):
        ca = ClassAssembler("g/T2")
        with ca.method("go", "()V", 0x0009) as m:
            m.emit(INVOKESTATIC, "lib/Files", "delete", "()V")
            m.emit(RETURN)
        ps = generate_policy(
            [ca.build()],
            guard_table={("lib/Files", "delete", "()V"): ("a", "b")},
        )
        assert len(ps) == 2

    def test_bad_guard_table_key(self):
        with pytest.raises(PolicyGenError, match="guard_table"):
            generate_policy([], guard_table={"not-a-tuple": "x"})


class TestProposePolicySource:
    def guarded_cap(self, guard):
        domain = Domain(f"pg-{guard}")

        class Svc(Remote):
            def go(self): ...

        class SvcImpl(Svc):
            def go(self):
                return "ok"

        cap = domain.run(
            lambda: Capability.create(SvcImpl(), guard=guard)
        )
        return domain, cap

    def test_only_referenced_grants_contribute(self):
        d1, used = self.guarded_cap("kv.read")
        d2, unused = self.guarded_cap("kv.write")
        try:
            ps = propose_policy_source(
                "x = kv.go()", {"kv": used, "admin": unused}
            )
            assert ps.implies(Permission.parse("kv.read"))
            assert not ps.implies(Permission.parse("kv.write"))
        finally:
            d1.terminate()
            d2.terminate()

    def test_unguarded_grants_contribute_nothing(self):
        ps = propose_policy_source("x = helper()", {"helper": len})
        assert len(ps) == 0

    def test_syntax_error_rejected(self):
        with pytest.raises(PolicyGenError, match="parse"):
            propose_policy_source("def f(:", {})

    def test_empty_grants(self):
        assert len(propose_policy_source("pass", None)) == 0
