"""The docs CI job's lint: knob/export coverage and link resolution."""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent


def _load_doclint():
    spec = importlib.util.spec_from_file_location(
        "doclint", REPO / "tools" / "doclint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def doclint():
    return _load_doclint()


class TestRepoIsClean:
    def test_doclint_passes_at_head(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "doclint.py")],
            cwd=REPO, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        assert proc.returncode == 0, proc.stdout.decode()

    def test_every_source_knob_is_collected(self, doclint):
        knobs = doclint._knobs_in_source()
        # The three transport knobs are load-bearing; losing them from
        # the scan would silently gut the coverage check.
        assert {"JK_LRMI_WIRE", "JK_LRMI_SHM_THRESHOLD",
                "JK_CHAOS_PARTITION"} <= knobs

    def test_exports_read_syntactically_match_runtime(self, doclint):
        import repro.core
        import repro.fleet

        exports = doclint._public_exports()
        assert sorted(exports["repro.core"]) == sorted(repro.core.__all__)
        assert sorted(exports["repro.fleet"]) == sorted(repro.fleet.__all__)


class TestDetection:
    def test_undocumented_knob_detected(self, doclint, tmp_path,
                                        monkeypatch, capsys):
        src = tmp_path / "src" / "repro"
        for package in ("core", "fleet"):
            pkg = src / package
            pkg.mkdir(parents=True)
            (pkg / "__init__.py").write_text("__all__ = []\n")
        (src / "knobby.py").write_text(
            'import os\nX = os.environ.get("JK_TOTALLY_NEW", "0")\n'
        )
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("# nothing here\n")
        (tmp_path / "README.md").write_text("# readme\n")
        monkeypatch.setattr(doclint, "REPO", tmp_path)
        monkeypatch.setattr(doclint, "SRC", tmp_path / "src")
        monkeypatch.setattr(doclint, "DOCS", docs)
        assert doclint.main() == 1
        assert "JK_TOTALLY_NEW" in capsys.readouterr().out

    def test_undocumented_export_detected(self, doclint, tmp_path,
                                          monkeypatch, capsys):
        src = tmp_path / "src" / "repro"
        (src / "core").mkdir(parents=True)
        (src / "core" / "__init__.py").write_text(
            '__all__ = ["BrandNewThing"]\n'
        )
        (src / "fleet").mkdir()
        (src / "fleet" / "__init__.py").write_text("__all__ = []\n")
        docs = tmp_path / "docs"
        docs.mkdir()
        # A substring is not enough — the name must appear as a word.
        (docs / "a.md").write_text("BrandNewThingamajig\n")
        (tmp_path / "README.md").write_text("# readme\n")
        monkeypatch.setattr(doclint, "REPO", tmp_path)
        monkeypatch.setattr(doclint, "SRC", tmp_path / "src")
        monkeypatch.setattr(doclint, "DOCS", docs)
        assert doclint.main() == 1
        assert "BrandNewThing" in capsys.readouterr().out

    def test_dangling_link_detected(self, doclint, tmp_path,
                                    monkeypatch, capsys):
        src = tmp_path / "src" / "repro"
        for package in ("core", "fleet"):
            (src / package).mkdir(parents=True)
            (src / package / "__init__.py").write_text("__all__ = []\n")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "see [the other page](missing.md) and "
            "[the web](https://example.com) and [here](#anchor)\n"
        )
        (tmp_path / "README.md").write_text("# readme\n")
        monkeypatch.setattr(doclint, "REPO", tmp_path)
        monkeypatch.setattr(doclint, "SRC", tmp_path / "src")
        monkeypatch.setattr(doclint, "DOCS", docs)
        assert doclint.main() == 1
        out = capsys.readouterr().out
        assert "missing.md" in out
        assert "example.com" not in out

    def test_fragment_links_resolve_against_the_file(self, doclint,
                                                     tmp_path,
                                                     monkeypatch):
        src = tmp_path / "src" / "repro"
        for package in ("core", "fleet"):
            (src / package).mkdir(parents=True)
            (src / package / "__init__.py").write_text("__all__ = []\n")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("[jump](b.md#section)\n")
        (docs / "b.md").write_text("# b\n## section\n")
        (tmp_path / "README.md").write_text("# readme\n")
        monkeypatch.setattr(doclint, "REPO", tmp_path)
        monkeypatch.setattr(doclint, "SRC", tmp_path / "src")
        monkeypatch.setattr(doclint, "DOCS", docs)
        assert doclint.main() == 0
