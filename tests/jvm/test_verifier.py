"""The bytecode verifier: the type-safety enforcement point.

Covers acceptance of well-typed code, rejection of each class of type
error, static access control (paper §2), and namespace-based resolution
failures (selective class sharing)."""

import pytest

from repro.jvm import (
    ClassAssembler,
    ClassNotFoundError,
    MapResolver,
    VerifyError,
    interface,
)
from repro.jvm.classfile import ACC_FINAL, ACC_PRIVATE, ACC_PUBLIC
from repro.jvm.instructions import (
    ACONST_NULL,
    ALOAD,
    ARETURN,
    ASTORE,
    ATHROW,
    BALOAD,
    CHECKCAST,
    DCONST,
    DUP,
    GETFIELD,
    GOTO,
    IADD,
    ICONST,
    IFEQ,
    ILOAD,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    ISTORE,
    NEW,
    NEWARRAY,
    POP,
    PUTFIELD,
    RETURN,
    SWAP,
)
from tests.support import PUBLIC_STATIC, assemble, fresh_vm, load_classes


def define_one(vm, classfile, loader_name="v"):
    loader = vm.new_loader(
        loader_name, resolver=MapResolver({classfile.name: classfile})
    )
    return loader.load(classfile.name)


@pytest.fixture()
def svm():
    return fresh_vm()


class TestAcceptance:
    def test_arith_and_branches(self, svm):
        def build(ca):
            with ca.method("f", "(I)I", PUBLIC_STATIC) as m:
                done = m.label()
                m.emit(ILOAD, 0)
                m.emit(IFEQ, done)
                m.emit(ILOAD, 0)
                m.emit(ICONST, 1)
                m.emit(IADD)
                m.emit(IRETURN)
                m.mark(done)
                m.emit(ICONST, 0)
                m.emit(IRETURN)

        define_one(svm, assemble("v/Ok", build))

    def test_object_cycle(self, svm):
        def build(ca):
            with ca.method("mk", "()Lv/Node;", PUBLIC_STATIC) as m:
                m.emit(NEW, "v/Node")
                m.emit(DUP)
                m.emit(DUP)
                m.emit(PUTFIELD, "v/Node", "next")
                m.emit(ARETURN)

        define_one(
            svm,
            assemble("v/Node", build, fields=[("next", "Lv/Node;")]),
        )

    def test_null_merges_with_reference(self, svm):
        def build(ca):
            with ca.method("f", "(I)Ljava/lang/Object;", PUBLIC_STATIC) as m:
                use = m.label()
                m.emit(ILOAD, 0)
                m.emit(IFEQ, use)
                m.emit(ACONST_NULL)
                m.emit(ARETURN)
                m.mark(use)
                m.emit(NEW, "v/M")
                m.emit(ARETURN)

        define_one(svm, assemble("v/M", build))

    def test_exception_handler_frame(self, svm):
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                start = m.here()
                m.emit(ICONST, 1)
                m.emit(ICONST, 0)
                m.emit("idiv")
                m.emit(IRETURN)
                end = m.here()
                handler = m.here()
                m.emit(POP)
                m.emit(ICONST, -1)
                m.emit(IRETURN)
                m.handler(start, end, handler,
                          "java/lang/ArithmeticException")

        define_one(svm, assemble("v/H", build))


class TestTypeErrors:
    def _reject(self, svm, classfile, pattern):
        with pytest.raises(VerifyError, match=pattern):
            define_one(svm, classfile)

    def test_int_where_ref_expected(self, svm):
        def build(ca):
            with ca.method("f", "()V", PUBLIC_STATIC) as m:
                m.emit(ICONST, 42)
                m.emit(ASTORE, 0)
                m.emit(RETURN)

        self._reject(svm, assemble("v/IntRef", build), "astore")

    def test_ref_arithmetic_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                m.emit(NEW, "v/RefMath")
                m.emit(ICONST, 1)
                m.emit(IADD)
                m.emit(IRETURN)

        self._reject(svm, assemble("v/RefMath", build), "expected int")

    def test_forging_reference_from_int_impossible(self, svm):
        # There is no int->ref instruction; the closest forgery attempt is
        # storing an int then loading it as a reference.
        def build(ca):
            with ca.method("f", "()Ljava/lang/Object;", PUBLIC_STATIC) as m:
                m.emit(ICONST, 0xDEAD)
                m.emit(ISTORE, 0)
                m.emit(ALOAD, 0)
                m.emit(ARETURN)

        self._reject(svm, assemble("v/Forge", build), "aload")

    def test_uninitialized_local_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                m.emit(ILOAD, 3)
                m.emit(IRETURN)

        self._reject(svm, assemble("v/Uninit", build), "local")

    def test_double_int_confusion_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                m.emit(DCONST, 1.5)
                m.emit(IRETURN)

        self._reject(svm, assemble("v/DblInt", build), "ireturn")

    def test_wrong_return_kind_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()V", PUBLIC_STATIC) as m:
                m.emit(ICONST, 1)
                m.emit(IRETURN)

        self._reject(svm, assemble("v/RetKind", build), "ireturn")

    def test_stack_overflow_of_declared_max_rejected(self, svm):
        from repro.jvm.classfile import ClassFile, MethodDef

        bad = ClassFile(
            name="v/MaxStack",
            methods=(
                MethodDef("f", "()V", PUBLIC_STATIC, max_stack=1,
                          max_locals=0,
                          code=(("iconst", 1), ("iconst", 2), ("pop",),
                                ("pop",), ("return",))),
            ),
        )
        loader = fresh_vm().new_loader("v", resolver=MapResolver({}))
        with pytest.raises(VerifyError, match="overflow"):
            loader.define(bad)

    def test_athrow_non_throwable_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()V", PUBLIC_STATIC) as m:
                m.emit(NEW, "v/Throw")
                m.emit(ATHROW)

        self._reject(svm, assemble("v/Throw", build), "non-throwable")

    def test_bad_argument_type_rejected(self, svm):
        def build(ca):
            with ca.method("callee", "(Ljava/lang/String;)V",
                           PUBLIC_STATIC) as m:
                m.emit(RETURN)
            with ca.method("caller", "()V", PUBLIC_STATIC) as m:
                m.emit(NEW, "v/Args")
                m.emit(INVOKESTATIC, "v/Args", "callee",
                       "(Ljava/lang/String;)V")
                m.emit(RETURN)

        self._reject(svm, assemble("v/Args", build), "argument")

    def test_handler_frame_holds_exception_not_int(self, svm):
        # The handler entry frame is [exception-ref]; returning it as an
        # int must be rejected by the verifier.
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                start = m.here()
                m.emit(ICONST, 1)
                m.emit(IRETURN)
                end = m.here()
                handler = m.here()
                m.emit(IRETURN)  # stack holds a Throwable, not an int
                m.handler(start, end, handler, None)

        self._reject(svm, assemble("v/HandType", build), "ireturn")

    def test_baload_on_int_array_rejected(self, svm):
        def build(ca):
            with ca.method("f", "()I", PUBLIC_STATIC) as m:
                m.emit(ICONST, 4)
                m.emit(NEWARRAY, "I")
                m.emit(ICONST, 0)
                m.emit(BALOAD)
                m.emit(IRETURN)

        self._reject(svm, assemble("v/ArrKind", build), "element type")


class TestAccessControl:
    def _classes(self):
        holder = assemble(
            "v/Holder", None,
            fields=[("secret", "I", ACC_PRIVATE), ("open", "I", ACC_PUBLIC)],
        )

        def build_self_access(ca):
            with ca.method("touch", "(Lv/Holder;)I", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "v/Holder", "secret")
                m.emit(IRETURN)

        return holder, build_self_access

    def test_private_field_inaccessible_across_classes(self, svm):
        holder, build = self._classes()
        snoop = assemble("v/Snoop", build)
        loader = svm.new_loader(
            "v", resolver=MapResolver({holder.name: holder,
                                       snoop.name: snoop})
        )
        loader.load("v/Holder")
        with pytest.raises(VerifyError, match="private field"):
            loader.load("v/Snoop")

    def test_private_field_accessible_within_class(self, svm):
        def build(ca):
            with ca.method("touch", "(Lv/Own;)I", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "v/Own", "mine")
                m.emit(IRETURN)

        define_one(
            svm,
            assemble("v/Own", build, fields=[("mine", "I", ACC_PRIVATE)]),
        )

    def test_public_field_accessible_across_classes(self, svm):
        holder, _ = self._classes()

        def build(ca):
            with ca.method("touch", "(Lv/Holder;)I", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "v/Holder", "open")
                m.emit(IRETURN)

        reader = assemble("v/Reader", build)
        loader = svm.new_loader(
            "v", resolver=MapResolver({holder.name: holder,
                                       reader.name: reader})
        )
        loader.load("v/Reader")

    def test_private_method_rejected_across_classes(self, svm):
        def build_owner(ca):
            with ca.method("hidden", "()I", ACC_PRIVATE | 0x0008) as m:
                m.emit(ICONST, 5)
                m.emit(IRETURN)

        owner = assemble("v/MOwner", build_owner)

        def build_caller(ca):
            with ca.method("call", "()I", PUBLIC_STATIC) as m:
                m.emit(INVOKESTATIC, "v/MOwner", "hidden", "()I")
                m.emit(IRETURN)

        caller = assemble("v/MCaller", build_caller)
        loader = svm.new_loader(
            "v", resolver=MapResolver({owner.name: owner,
                                       caller.name: caller})
        )
        with pytest.raises(VerifyError, match="private method"):
            loader.load("v/MCaller")

    def test_final_field_assignment_outside_declarer_rejected(self, svm):
        holder = assemble(
            "v/FHolder", None,
            fields=[("constant", "I", ACC_PUBLIC | ACC_FINAL)],
        )

        def build(ca):
            with ca.method("clobber", "(Lv/FHolder;)V", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(ICONST, 9)
                m.emit(PUTFIELD, "v/FHolder", "constant")
                m.emit(RETURN)

        writer = assemble("v/FWriter", build)
        loader = svm.new_loader(
            "v", resolver=MapResolver({holder.name: holder,
                                       writer.name: writer})
        )
        with pytest.raises(VerifyError, match="final"):
            loader.load("v/FWriter")

    def test_missing_field_rejected(self, svm):
        def build(ca):
            with ca.method("f", "(Lv/Ghost;)I", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "v/Ghost", "nothing")
                m.emit(IRETURN)

        self._reject_missing(svm, assemble("v/Ghost", build))

    def _reject_missing(self, svm, classfile):
        with pytest.raises(VerifyError, match="no such field"):
            define_one(svm, classfile)


class TestNamespaceEnforcement:
    def test_hidden_class_unresolvable(self, svm):
        def build(ca):
            with ca.method("f", "()V", PUBLIC_STATIC) as m:
                m.emit(NEW, "v/Hidden")
                m.emit(POP)
                m.emit(RETURN)

        classfile = assemble("v/User", build)
        with pytest.raises(VerifyError, match="unresolvable"):
            define_one(svm, classfile)

    def test_virtual_call_on_interface_rejected(self, svm):
        iface_cf = interface("v/I", [("f", "()V")])

        def build(ca):
            with ca.method("g", "(Lv/I;)V", PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(INVOKEVIRTUAL, "v/I", "f", "()V")
                m.emit(RETURN)

        caller = assemble("v/VirtIface", build)
        loader = svm.new_loader(
            "v", resolver=MapResolver({iface_cf.name: iface_cf,
                                       caller.name: caller})
        )
        with pytest.raises(VerifyError, match="invokevirtual on interface"):
            loader.load("v/VirtIface")

    def test_checkcast_to_hidden_class_rejected(self, svm):
        def build(ca):
            with ca.method("f", "(Ljava/lang/Object;)V",
                           PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(CHECKCAST, "other/Secret")
                m.emit(POP)
                m.emit(RETURN)

        with pytest.raises(VerifyError, match="unresolvable"):
            define_one(svm, assemble("v/Caster", build))
