"""Interface dispatch strategies: both must agree semantically."""

import pytest

from repro.jvm import interface
from repro.jvm.dispatch import (
    CachedInterfaceDispatch,
    DispatchError,
    LinearInterfaceDispatch,
    make_dispatcher,
)
from repro.jvm.instructions import ALOAD, ICONST, INVOKEINTERFACE, IRETURN
from tests.support import PUBLIC_STATIC, assemble, fresh_vm, load_classes


def _world(profile):
    vm = fresh_vm(profile=profile)
    base = interface("d/IBase", [("base", "()I")])
    extended = interface("d/IExt", [("ext", "()I")], extends=("d/IBase",))

    def build(ca):
        with ca.method("base", "()I") as m:
            m.emit(ICONST, 10)
            m.emit(IRETURN)
        with ca.method("ext", "()I") as m:
            m.emit(ICONST, 20)
            m.emit(IRETURN)

    impl = assemble("d/Impl", build, interfaces=("d/IExt",))

    def caller_build(ca):
        with ca.method("callBase", "(Ld/IBase;)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "d/IBase", "base", "()I")
            m.emit(IRETURN)
        with ca.method("callExt", "(Ld/IExt;)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "d/IExt", "ext", "()I")
            m.emit(IRETURN)
        with ca.method("callInherited", "(Ld/IExt;)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "d/IExt", "base", "()I")
            m.emit(IRETURN)

    caller = assemble("d/Caller", caller_build)
    loader = load_classes(vm, [base, extended, impl, caller], "dispatch")
    return vm, loader


class TestStrategies:
    def test_factory(self):
        assert isinstance(make_dispatcher("linear"), LinearInterfaceDispatch)
        assert isinstance(make_dispatcher("cached"), CachedInterfaceDispatch)
        with pytest.raises(ValueError):
            make_dispatcher("magic")

    @pytest.mark.parametrize("profile", ["msvm", "sunvm"])
    def test_direct_interface_call(self, profile):
        vm, loader = _world(profile)
        impl = vm.construct(loader.load("d/Impl"))
        caller = loader.load("d/Caller")
        assert vm.call_static(caller, "callBase", "(Ld/IBase;)I",
                              [impl]) == 10
        assert vm.call_static(caller, "callExt", "(Ld/IExt;)I",
                              [impl]) == 20

    @pytest.mark.parametrize("profile", ["msvm", "sunvm"])
    def test_inherited_interface_method(self, profile):
        """Calling IBase.base through an IExt reference."""
        vm, loader = _world(profile)
        impl = vm.construct(loader.load("d/Impl"))
        caller = loader.load("d/Caller")
        assert vm.call_static(caller, "callInherited", "(Ld/IExt;)I",
                              [impl]) == 10

    def test_runtime_check_rejects_non_implementor(self):
        vm, loader = _world("sunvm")
        iface = loader.load("d/IBase")
        stranger_class = vm.object_class
        dispatcher = make_dispatcher("cached")
        with pytest.raises(DispatchError, match="does not implement"):
            dispatcher.lookup(stranger_class, iface, "base", "()I")
        dispatcher = make_dispatcher("linear")
        with pytest.raises(DispatchError, match="does not implement"):
            dispatcher.lookup(stranger_class, iface, "base", "()I")

    def test_strategies_agree(self):
        vm, loader = _world("sunvm")
        impl_class = loader.load("d/Impl")
        iface = loader.load("d/IExt")
        linear = make_dispatcher("linear")
        cached = make_dispatcher("cached")
        for key in (("ext", "()I"), ("base", "()I")):
            assert (
                linear.lookup(impl_class, iface, *key)
                == cached.lookup(impl_class, iface, *key)
            )

    def test_itable_cached_once(self):
        vm, loader = _world("sunvm")
        impl_class = loader.load("d/Impl")
        iface = loader.load("d/IExt")
        cached = make_dispatcher("cached")
        cached.lookup(impl_class, iface, "ext", "()I")
        table_first = impl_class.itables[iface]
        cached.lookup(impl_class, iface, "base", "()I")
        assert impl_class.itables[iface] is table_first
