"""Assembler: labels, stack computation, structural checks."""

import pytest

from repro.jvm import ClassAssembler, ClassFormatError, interface
from repro.jvm.asm import Label, stack_effect
from repro.jvm.classfile import ACC_INTERFACE, check_classfile
from repro.jvm.instructions import (
    ALOAD,
    GOTO,
    IADD,
    ICONST,
    IF_ICMPGE,
    ILOAD,
    INVOKESTATIC,
    IRETURN,
    ISTORE,
    POP,
    RETURN,
)
from tests.support import PUBLIC_STATIC


def build_add():
    ca = ClassAssembler("t/Add")
    with ca.method("add", "(II)I", PUBLIC_STATIC) as m:
        m.emit(ILOAD, 0)
        m.emit(ILOAD, 1)
        m.emit(IADD)
        m.emit(IRETURN)
    return ca.build()


class TestStackEffects:
    def test_simple(self):
        assert stack_effect(("iconst", 1)) == (0, 1)
        assert stack_effect(("iadd",)) == (2, 1)
        assert stack_effect(("pop",)) == (1, 0)

    def test_invokes_use_descriptor(self):
        assert stack_effect(("invokestatic", "c", "m", "(II)I")) == (2, 1)
        assert stack_effect(("invokevirtual", "c", "m", "(I)V")) == (2, 0)
        assert stack_effect(("invokeinterface", "c", "m", "()I")) == (1, 1)


class TestMaxStackComputation:
    def test_simple_add(self):
        cf = build_add()
        method = cf.method("add", "(II)I")
        assert method.max_stack == 2
        assert method.max_locals == 2

    def test_deeper_expression(self):
        ca = ClassAssembler("t/Deep")
        with ca.method("f", "()I", PUBLIC_STATIC) as m:
            for value in range(5):
                m.emit(ICONST, value)
            for _ in range(4):
                m.emit(IADD)
            m.emit(IRETURN)
        method = ca.build().method("f", "()I")
        assert method.max_stack == 5

    def test_locals_from_stores(self):
        ca = ClassAssembler("t/Locals")
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            m.emit(ICONST, 1)
            m.emit(ISTORE, 7)
            m.emit(RETURN)
        assert ca.build().method("f", "()V").max_locals == 8

    def test_underflow_rejected(self):
        ca = ClassAssembler("t/Under")
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            m.emit(POP)
            m.emit(RETURN)
        with pytest.raises(ClassFormatError, match="underflow"):
            ca.build()

    def test_inconsistent_merge_rejected(self):
        ca = ClassAssembler("t/Merge")
        with ca.method("f", "(I)V", PUBLIC_STATIC) as m:
            target = m.label()
            m.emit(ILOAD, 0)
            m.emit("ifeq", target)
            m.emit(ICONST, 1)  # depth 1 on fallthrough
            m.mark(target)  # depth 0 from branch
            m.emit(RETURN)
        with pytest.raises(ClassFormatError, match="inconsistent"):
            ca.build()

    def test_fall_off_end_rejected(self):
        ca = ClassAssembler("t/Fall")
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            m.emit(ICONST, 1)
            m.emit(POP)
        with pytest.raises(ClassFormatError, match="past end"):
            ca.build()


class TestLabels:
    def test_forward_reference(self):
        ca = ClassAssembler("t/Fwd")
        with ca.method("f", "(I)I", PUBLIC_STATIC) as m:
            done = m.label("done")
            m.emit(ILOAD, 0)
            m.emit("ifeq", done)
            m.emit(ICONST, 1)
            m.emit(IRETURN)
            m.mark(done)
            m.emit(ICONST, 0)
            m.emit(IRETURN)
        cf = ca.build()
        code = cf.method("f", "(I)I").code
        assert code[1] == ("ifeq", 4)

    def test_unbound_label_rejected(self):
        ca = ClassAssembler("t/Unbound")
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            dangling = Label("nowhere")
            m.emit(GOTO, dangling)
        with pytest.raises(ClassFormatError, match="unbound"):
            ca.build()

    def test_double_bind_rejected(self):
        ca = ClassAssembler("t/Twice")
        m = ca.method("f", "()V", PUBLIC_STATIC)
        label = m.here()
        with pytest.raises(ClassFormatError, match="twice"):
            m.mark(label)


class TestStructuralChecks:
    def test_duplicate_method_rejected(self):
        ca = ClassAssembler("t/Dup")
        for _ in range(2):
            with ca.method("f", "()V", PUBLIC_STATIC) as m:
                m.emit(RETURN)
        with pytest.raises(ClassFormatError, match="duplicate method"):
            ca.build()

    def test_duplicate_field_rejected(self):
        ca = ClassAssembler("t/DupF")
        ca.field("x", "I")
        ca.field("x", "D")
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            m.emit(RETURN)
        with pytest.raises(ClassFormatError, match="duplicate field"):
            ca.build()

    def test_unknown_opcode_rejected(self):
        ca = ClassAssembler("t/BadOp")
        m = ca.method("f", "()V", PUBLIC_STATIC)
        with pytest.raises(ClassFormatError, match="unknown opcode"):
            m.emit("launch_missiles")

    def test_bad_operand_count_rejected(self):
        from repro.jvm.classfile import ClassFile, MethodDef

        bad = ClassFile(
            name="t/BadArity",
            methods=(
                MethodDef("f", "()V", PUBLIC_STATIC, 1, 0,
                          (("iconst",), ("return",))),
            ),
        )
        with pytest.raises(ClassFormatError, match="expects 1 operands"):
            check_classfile(bad)

    def test_branch_target_out_of_range_rejected(self):
        from repro.jvm.classfile import ClassFile, MethodDef

        bad = ClassFile(
            name="t/BadTarget",
            methods=(
                MethodDef("f", "()V", PUBLIC_STATIC, 1, 0,
                          (("goto", 99), ("return",))),
            ),
        )
        with pytest.raises(ClassFormatError, match="target out of range"):
            check_classfile(bad)

    def test_interface_helper(self):
        cf = interface("t/IFace", [("f", "()I"), ("g", "(I)V")])
        assert cf.is_interface
        assert cf.flags & ACC_INTERFACE
        assert len(cf.methods) == 2
        assert all(m.is_abstract for m in cf.methods)

    def test_interface_with_concrete_method_rejected(self):
        ca = ClassAssembler("t/BadIface", flags=ACC_INTERFACE | 0x0001)
        with ca.method("f", "()V", PUBLIC_STATIC) as m:
            m.emit(RETURN)
        with pytest.raises(ClassFormatError):
            ca.build()

    def test_native_with_code_rejected(self):
        from repro.jvm.classfile import ACC_NATIVE, ClassFile, MethodDef

        bad = ClassFile(
            name="t/NativeCode",
            methods=(
                MethodDef("f", "()V", PUBLIC_STATIC | ACC_NATIVE, 0, 0,
                          (("return",),)),
            ),
        )
        with pytest.raises(ClassFormatError, match="has code"):
            check_classfile(bad)
