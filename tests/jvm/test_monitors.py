"""Monitors under both lock implementations: mutual exclusion, reentrancy,
wait/notify, illegal states."""

import pytest

from repro.jvm import JThrowable
from repro.jvm.instructions import (
    ALOAD,
    DUP,
    GETFIELD,
    GETSTATIC,
    GOTO,
    ICONST,
    IF_ICMPGE,
    IINC,
    ILOAD,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    ISTORE,
    MONITORENTER,
    MONITOREXIT,
    PUTFIELD,
    RETURN,
)
from repro.jvm.monitors import HeavyMonitorManager, ThinLockManager
from repro.jvm.threads import ThreadContext
from tests.support import PUBLIC_STATIC, assemble, fresh_vm, load_classes


@pytest.fixture(params=[ThinLockManager, HeavyMonitorManager])
def manager(request):
    return request.param()


class _FakeObj:
    __slots__ = ("lockword",)

    def __init__(self):
        self.lockword = None


class TestManagerUnit:
    def test_enter_exit(self, manager):
        obj = _FakeObj()
        thread = ThreadContext("t1")
        assert manager.try_enter(obj, thread)
        assert manager.owner(obj) is thread
        assert manager.exit(obj, thread) == []
        assert manager.owner(obj) is None

    def test_reentrancy(self, manager):
        obj = _FakeObj()
        thread = ThreadContext("t1")
        assert manager.try_enter(obj, thread)
        assert manager.try_enter(obj, thread)
        assert manager.exit(obj, thread) == []
        assert manager.owner(obj) is thread  # still held once
        assert manager.exit(obj, thread) == []
        assert manager.owner(obj) is None

    def test_contention_queues(self, manager):
        obj = _FakeObj()
        first = ThreadContext("t1")
        second = ThreadContext("t2")
        assert manager.try_enter(obj, first)
        assert not manager.try_enter(obj, second)
        woken = manager.exit(obj, first)
        assert woken == [second]
        assert manager.try_enter(obj, second)

    def test_exit_without_ownership_signalled(self, manager):
        obj = _FakeObj()
        thread = ThreadContext("t1")
        assert manager.exit(obj, thread) is None
        other = ThreadContext("t2")
        manager.try_enter(obj, other)
        assert manager.exit(obj, thread) is None

    def test_wait_releases_fully(self, manager):
        obj = _FakeObj()
        waiter = ThreadContext("w")
        other = ThreadContext("o")
        manager.try_enter(obj, waiter)
        manager.try_enter(obj, waiter)  # recursion 2
        saved, woken = manager.release_for_wait(obj, waiter)
        assert saved == 2
        assert manager.owner(obj) is None
        assert manager.try_enter(obj, other)
        ok, notified = manager.notify(obj, other)
        assert ok and notified == [waiter]
        manager.exit(obj, other)
        assert manager.reacquire_after_wait(obj, waiter, saved)
        assert manager.owner(obj) is waiter

    def test_notify_requires_ownership(self, manager):
        obj = _FakeObj()
        thread = ThreadContext("t")
        ok, _ = manager.notify(obj, thread)
        assert not ok

    def test_discard_cleans_queues(self, manager):
        obj = _FakeObj()
        owner = ThreadContext("o")
        blocked = ThreadContext("b")
        manager.try_enter(obj, owner)
        manager.try_enter(obj, blocked)
        manager.discard(blocked)
        assert manager.exit(obj, owner) == []


def _locked_counter_classfile():
    """Thread subclass incrementing a shared counter under its monitor."""
    def build(ca):
        with ca.method("run", "()V") as m:
            m.emit(ICONST, 0)
            m.emit(ISTORE, 1)
            loop = m.here()
            m.emit(ILOAD, 1)
            m.emit(ICONST, 100)
            done = m.label()
            m.emit(IF_ICMPGE, done)
            m.emit(ALOAD, 0)
            m.emit(GETFIELD, "m/Inc", "shared")
            m.emit(MONITORENTER)
            # counter.count++ (under the lock)
            m.emit(ALOAD, 0)
            m.emit(GETFIELD, "m/Inc", "shared")
            m.emit(DUP)
            m.emit(GETFIELD, "m/Counter", "count")
            m.emit(ICONST, 1)
            m.emit("iadd")
            m.emit(PUTFIELD, "m/Counter", "count")
            m.emit(INVOKESTATIC, "java/lang/Thread", "yield", "()V")
            m.emit(ALOAD, 0)
            m.emit(GETFIELD, "m/Inc", "shared")
            m.emit(MONITOREXIT)
            m.emit(IINC, 1, 1)
            m.emit(GOTO, loop.pc)
            m.mark(done)
            m.emit(RETURN)

    return assemble("m/Inc", build, super_name="java/lang/Thread",
                    fields=[("shared", "Lm/Counter;")])


class TestGuestMonitors:
    def test_mutual_exclusion_under_contention(self, vm):
        counter_cf = assemble("m/Counter", None, fields=[("count", "I")])
        inc_cf = _locked_counter_classfile()
        loader = load_classes(vm, [counter_cf, inc_cf], "monitors")
        counter_class = loader.load("m/Counter")
        inc_class = loader.load("m/Inc")
        counter = vm.construct(counter_class)
        threads = []
        for _ in range(3):
            thread = vm.construct(inc_class)
            thread.fields[inc_class.field_slots["shared"]] = counter
            threads.append(thread)
        for thread in threads:
            vm.call_virtual(thread, "start", "()V")
        vm.scheduler.run(max_steps=50_000_000)
        count = counter.fields[counter_class.field_slots["count"]]
        assert count == 300

    def test_monitorexit_not_owner_throws(self, vm):
        def build(ca):
            with ca.method("bad", "(Ljava/lang/Object;)V",
                           PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(MONITOREXIT)
                m.emit(RETURN)

        cf = assemble("m/Bad", build)
        loader = load_classes(vm, [cf], "monitors")
        obj = vm.heap.new_object(vm.object_class)
        with pytest.raises(JThrowable) as info:
            vm.call_static(loader.load("m/Bad"), "bad",
                           "(Ljava/lang/Object;)V", [obj])
        assert "IllegalMonitorState" in str(info.value)

    def test_monitorenter_null_throws(self, vm):
        def build(ca):
            with ca.method("bad", "(Ljava/lang/Object;)V",
                           PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(MONITORENTER)
                m.emit(ALOAD, 0)
                m.emit(MONITOREXIT)
                m.emit(RETURN)

        cf = assemble("m/Null", build)
        loader = load_classes(vm, [cf], "monitors")
        with pytest.raises(JThrowable) as info:
            vm.call_static(loader.load("m/Null"), "bad",
                           "(Ljava/lang/Object;)V", [None])
        assert "NullPointerException" in str(info.value)

    def test_wait_notify_roundtrip(self, vm):
        """Producer waits, consumer notifies."""
        def build_waiter(ca):
            with ca.method("run", "()V") as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Waiter", "lock")
                m.emit(MONITORENTER)
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Waiter", "lock")
                m.emit(INVOKEVIRTUAL, "java/lang/Object", "wait", "()V")
                m.emit(ALOAD, 0)
                m.emit(ICONST, 1)
                m.emit(PUTFIELD, "m/Waiter", "woken")
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Waiter", "lock")
                m.emit(MONITOREXIT)
                m.emit(RETURN)

        def build_notifier(ca):
            with ca.method("run", "()V") as m:
                # give the waiter time to enter wait()
                m.emit(ICONST, 500)
                m.emit(INVOKESTATIC, "java/lang/Thread", "sleep", "(I)V")
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Notifier", "lock")
                m.emit(MONITORENTER)
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Notifier", "lock")
                m.emit(INVOKEVIRTUAL, "java/lang/Object", "notify", "()V")
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "m/Notifier", "lock")
                m.emit(MONITOREXIT)
                m.emit(RETURN)

        waiter_cf = assemble(
            "m/Waiter", build_waiter, super_name="java/lang/Thread",
            fields=[("lock", "Ljava/lang/Object;"), ("woken", "I")],
        )
        notifier_cf = assemble(
            "m/Notifier", build_notifier, super_name="java/lang/Thread",
            fields=[("lock", "Ljava/lang/Object;")],
        )
        loader = load_classes(vm, [waiter_cf, notifier_cf], "monitors")
        waiter_class = loader.load("m/Waiter")
        notifier_class = loader.load("m/Notifier")
        lock = vm.heap.new_object(vm.object_class)
        waiter = vm.construct(waiter_class)
        waiter.fields[waiter_class.field_slots["lock"]] = lock
        notifier = vm.construct(notifier_class)
        notifier.fields[notifier_class.field_slots["lock"]] = lock
        vm.call_virtual(waiter, "start", "()V")
        vm.call_virtual(notifier, "start", "()V")
        vm.scheduler.run()
        assert waiter.fields[waiter_class.field_slots["woken"]] == 1

    def test_wait_without_ownership_throws(self, vm):
        def build(ca):
            with ca.method("bad", "(Ljava/lang/Object;)V",
                           PUBLIC_STATIC) as m:
                m.emit(ALOAD, 0)
                m.emit(INVOKEVIRTUAL, "java/lang/Object", "wait", "()V")
                m.emit(RETURN)

        cf = assemble("m/NoOwn", build)
        loader = load_classes(vm, [cf], "monitors")
        obj = vm.heap.new_object(vm.object_class)
        with pytest.raises(JThrowable) as info:
            vm.call_static(loader.load("m/NoOwn"), "bad",
                           "(Ljava/lang/Object;)V", [obj])
        assert "IllegalMonitorState" in str(info.value)
