"""Interpreter object semantics: fields, arrays, dispatch, casts,
exceptions, null checks."""

import pytest

from repro.jvm import JThrowable, interface
from repro.jvm.instructions import (
    AALOAD,
    AASTORE,
    ACONST_NULL,
    ALOAD,
    ARETURN,
    ARRAYLENGTH,
    ASTORE,
    ATHROW,
    BALOAD,
    BASTORE,
    CHECKCAST,
    DUP,
    GETFIELD,
    GOTO,
    IALOAD,
    IASTORE,
    ICONST,
    ILOAD,
    INSTANCEOF,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    ISTORE,
    LDC_STR,
    NEW,
    NEWARRAY,
    POP,
    PUTFIELD,
    RETURN,
)
from tests.support import (
    PUBLIC_STATIC,
    assemble,
    emit_default_constructor,
    fresh_vm,
    load_classes,
)


@pytest.fixture(scope="module", params=["threaded", "generic"])
def world(request):
    """A small class hierarchy: Animal <- Dog implements a/Speaks."""
    vm = fresh_vm(threaded_code=(request.param == "threaded"))
    speaks = interface("a/Speaks", [("legs", "()I")])

    def animal_build(ca):
        with ca.method("legs", "()I") as m:
            m.emit(ICONST, 4)
            m.emit(IRETURN)
        with ca.method("describe", "()I") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEVIRTUAL, "a/Animal", "legs", "()I")
            m.emit(ICONST, 100)
            m.emit("iadd")
            m.emit(IRETURN)

    animal = assemble("a/Animal", animal_build, interfaces=("a/Speaks",))

    def dog_build(ca):
        with ca.method("legs", "()I") as m:  # override
            m.emit(ICONST, 3)
            m.emit(IRETURN)

    dog = assemble("a/Dog", dog_build, super_name="a/Animal")

    def helpers_build(ca):
        with ca.method("describeAnimal", "(La/Animal;)I",
                       PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEVIRTUAL, "a/Animal", "describe", "()I")
            m.emit(IRETURN)
        with ca.method("legsViaInterface", "(La/Speaks;)I",
                       PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "a/Speaks", "legs", "()I")
            m.emit(IRETURN)
        with ca.method("isDog", "(Ljava/lang/Object;)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(INSTANCEOF, "a/Dog")
            m.emit(IRETURN)
        with ca.method("castToDog", "(Ljava/lang/Object;)La/Dog;",
                       PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(CHECKCAST, "a/Dog")
            m.emit(ARETURN)
        with ca.method("sumArray", "([I)I", PUBLIC_STATIC) as m:
            m.emit(ICONST, 0)
            m.emit(ISTORE, 1)
            m.emit(ICONST, 0)
            m.emit(ISTORE, 2)
            loop = m.here()
            m.emit(ILOAD, 2)
            m.emit(ALOAD, 0)
            m.emit(ARRAYLENGTH)
            done = m.label()
            m.emit("if_icmpge", done)
            m.emit(ILOAD, 1)
            m.emit(ALOAD, 0)
            m.emit(ILOAD, 2)
            m.emit(IALOAD)
            m.emit("iadd")
            m.emit(ISTORE, 1)
            m.emit("iinc", 2, 1)
            m.emit(GOTO, loop.pc)
            m.mark(done)
            m.emit(ILOAD, 1)
            m.emit(IRETURN)
        with ca.method("makeBytes", "(I)[B", PUBLIC_STATIC) as m:
            m.emit(ILOAD, 0)
            m.emit(NEWARRAY, "B")
            m.emit(ARETURN)
        with ca.method("byteAt", "([BI)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(ILOAD, 1)
            m.emit(BALOAD)
            m.emit(IRETURN)
        with ca.method("putByte", "([BII)V", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(ILOAD, 1)
            m.emit(ILOAD, 2)
            m.emit(BASTORE)
            m.emit(RETURN)
        with ca.method("storeRef", "([La/Animal;La/Animal;)V",
                       PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(ICONST, 0)
            m.emit(ALOAD, 1)
            m.emit(AASTORE)
            m.emit(RETURN)
        with ca.method("npeField", "(La/Counter;)I", PUBLIC_STATIC) as m:
            m.emit(ALOAD, 0)
            m.emit(GETFIELD, "a/Counter", "count")
            m.emit(IRETURN)
        with ca.method("throwAndCatch", "()I", PUBLIC_STATIC) as m:
            start = m.here()
            m.emit(NEW, "java/lang/IllegalStateException")
            m.emit(DUP)
            m.emit(LDC_STR, "boom")
            m.emit(INVOKESPECIAL, "java/lang/IllegalStateException",
                   "<init>", "(Ljava/lang/String;)V")
            m.emit(ATHROW)
            end = m.here()
            handler = m.here()
            m.emit(POP)
            m.emit(ICONST, 77)
            m.emit(IRETURN)
            m.handler(start, end, handler,
                      "java/lang/IllegalStateException")
        with ca.method("uncaught", "()V", PUBLIC_STATIC) as m:
            m.emit(NEW, "java/lang/IllegalStateException")
            m.emit(DUP)
            m.emit(INVOKESPECIAL, "java/lang/IllegalStateException",
                   "<init>", "()V")
            m.emit(ATHROW)
        with ca.method("handlerSubtyping", "()I", PUBLIC_STATIC) as m:
            start = m.here()
            m.emit(ICONST, 1)
            m.emit(ICONST, 0)
            m.emit("idiv")
            m.emit(IRETURN)
            end = m.here()
            handler = m.here()  # catches RuntimeException, a supertype
            m.emit(POP)
            m.emit(ICONST, 55)
            m.emit(IRETURN)
            m.handler(start, end, handler, "java/lang/RuntimeException")

    counter = assemble("a/Counter", None, fields=[("count", "I")])
    helpers = assemble("a/Helpers", helpers_build)
    loader = load_classes(vm, [speaks, animal, dog, counter, helpers],
                          "world")
    return vm, loader


def _load(world, name):
    return world[1].load(name)


class TestDispatch:
    def test_virtual_dispatch_uses_runtime_type(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        animal = vm.construct(_load(world, "a/Animal"))
        dog = vm.construct(_load(world, "a/Dog"))
        assert vm.call_static(helpers, "describeAnimal", "(La/Animal;)I",
                              [animal]) == 104
        # Dog overrides legs(); describe() is inherited from Animal.
        assert vm.call_static(helpers, "describeAnimal", "(La/Animal;)I",
                              [dog]) == 103

    def test_interface_dispatch(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        dog = vm.construct(_load(world, "a/Dog"))
        assert vm.call_static(helpers, "legsViaInterface", "(La/Speaks;)I",
                              [dog]) == 3

    def test_null_receiver_throws_npe(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "describeAnimal", "(La/Animal;)I",
                           [None])
        assert "NullPointerException" in str(info.value)


class TestCasts:
    def test_instanceof(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        dog = vm.construct(_load(world, "a/Dog"))
        animal = vm.construct(_load(world, "a/Animal"))
        assert vm.call_static(helpers, "isDog", "(Ljava/lang/Object;)I",
                              [dog]) == 1
        assert vm.call_static(helpers, "isDog", "(Ljava/lang/Object;)I",
                              [animal]) == 0
        assert vm.call_static(helpers, "isDog", "(Ljava/lang/Object;)I",
                              [None]) == 0

    def test_good_cast(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        dog = vm.construct(_load(world, "a/Dog"))
        assert vm.call_static(
            helpers, "castToDog", "(Ljava/lang/Object;)La/Dog;", [dog]
        ) is dog

    def test_bad_cast_throws(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        animal = vm.construct(_load(world, "a/Animal"))
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "castToDog",
                           "(Ljava/lang/Object;)La/Dog;", [animal])
        assert "ClassCastException" in str(info.value)

    def test_null_cast_passes(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        assert vm.call_static(
            helpers, "castToDog", "(Ljava/lang/Object;)La/Dog;", [None]
        ) is None


class TestArrays:
    def test_sum(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        array_class = vm.array_class_for_descriptor("[I", vm.boot_loader)
        array = vm.heap.new_array(array_class, 5)
        array.elems[:] = [1, 2, 3, 4, 5]
        assert vm.call_static(helpers, "sumArray", "([I)I", [array]) == 15

    def test_new_array_zeroed(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        result = vm.call_static(helpers, "makeBytes", "(I)[B", [4])
        assert result.elems == [0, 0, 0, 0]

    def test_negative_size_throws(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "makeBytes", "(I)[B", [-1])
        assert "NegativeArraySizeException" in str(info.value)

    def test_bounds_check(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        array = vm.call_static(helpers, "makeBytes", "(I)[B", [2])
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "byteAt", "([BI)I", [array, 5])
        assert "ArrayIndexOutOfBounds" in str(info.value)
        with pytest.raises(JThrowable):
            vm.call_static(helpers, "byteAt", "([BI)I", [array, -1])

    def test_byte_store_wraps_to_signed(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        array = vm.call_static(helpers, "makeBytes", "(I)[B", [1])
        vm.call_static(helpers, "putByte", "([BII)V", [array, 0, 200])
        assert array.elems[0] == 200 - 256

    def test_array_store_check(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        dog_class = _load(world, "a/Dog")
        dog_array_class = vm.array_class_for_descriptor(
            "[La/Dog;", world[1]
        )
        dogs = vm.heap.new_array(dog_array_class, 1)
        animal = vm.construct(_load(world, "a/Animal"))
        # storing an Animal into Dog[] through an Animal[]-typed view
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "storeRef",
                           "([La/Animal;La/Animal;)V", [dogs, animal])
        assert "ArrayStoreException" in str(info.value)
        # storing a Dog is fine
        dog = vm.construct(dog_class)
        vm.call_static(helpers, "storeRef", "([La/Animal;La/Animal;)V",
                       [dogs, dog])
        assert dogs.elems[0] is dog


class TestExceptions:
    def test_catch_by_exact_type(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        assert vm.call_static(helpers, "throwAndCatch", "()I", []) == 77

    def test_catch_by_supertype(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        assert vm.call_static(helpers, "handlerSubtyping", "()I", []) == 55

    def test_uncaught_reaches_host(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "uncaught", "()V", [])
        assert "IllegalStateException" in str(info.value)

    def test_null_field_access_throws(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        with pytest.raises(JThrowable) as info:
            vm.call_static(helpers, "npeField", "(La/Counter;)I", [None])
        assert "NullPointerException" in str(info.value)

    def test_exception_object_carries_message(self, world):
        vm, _ = world
        helpers = _load(world, "a/Helpers")
        try:
            vm.call_static(helpers, "uncaught", "()V", [])
        except JThrowable as exc:
            message = vm.call_virtual(exc.jobject, "getMessage",
                                      "()Ljava/lang/String;")
            assert message is None  # no-arg constructor
