"""Verifier soundness fuzzing.

Property: any instruction sequence the verifier ACCEPTS executes on the
interpreter without host-level type errors — the only permitted outcomes
are normal completion, guest exceptions, or a step-budget stop.  This is
the 'language safety' the whole J-Kernel architecture stands on: if the
verifier lets unsound code through, protection collapses.

Random programs are drawn from a pool of instructions over ints, doubles,
Object references and int arrays; most candidates are rejected (which is
fine — rejection is the verifier doing its job); the accepted ones run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import ClassFormatError, MapResolver, VerifyError
from repro.jvm.classfile import ClassFile, MethodDef
from repro.jvm.errors import (
    DeadlockError,
    JThrowable,
    LinkageError,
    OutOfStepsError,
)
from tests.support import fresh_vm

PUBLIC_STATIC = 0x0009

# Instruction pool: plausible fragments over locals 0..3 (args: I, I, D, A).
_POOL = [
    ("iconst", 0), ("iconst", 1), ("iconst", -7), ("iconst", 2**31 - 1),
    ("dconst", 0.5), ("dconst", -3.0),
    ("aconst_null",),
    ("iload", 0), ("iload", 1), ("istore", 0), ("istore", 1),
    ("dload", 2), ("dstore", 2),
    ("aload", 3), ("astore", 3),
    ("iinc", 0, 1), ("iinc", 1, -1),
    ("pop",), ("dup",), ("swap",), ("dup_x1",),
    ("iadd",), ("isub",), ("imul",), ("idiv",), ("irem",), ("ineg",),
    ("ishl",), ("ishr",), ("iand",), ("ior",), ("ixor",),
    ("dadd",), ("dsub",), ("dmul",), ("ddiv",), ("dneg",), ("dcmp",),
    ("i2d",), ("d2i",),
    ("newarray", "I"), ("arraylength",),
    ("iaload",), ("iastore",),
    ("new", "java/lang/Object"),
    ("checkcast", "java/lang/Object"),
    ("instanceof", "java/lang/Object"),
    ("ifeq", 0), ("ifne", 1), ("if_icmplt", 2), ("goto", 3),
    ("ifnull", 0), ("ifnonnull", 1),
    ("ireturn",), ("return",), ("areturn",), ("dreturn",),
]

_instr = st.sampled_from(_POOL)


def _close_targets(code):
    """Clamp branch targets into range so ClassFormat checks pass more
    often (the fuzz targets the verifier, not the structural checker)."""
    length = len(code)
    fixed = []
    for instr in code:
        if instr[0] in ("ifeq", "ifne", "if_icmplt", "goto", "ifnull",
                        "ifnonnull"):
            fixed.append((instr[0], instr[1] % length))
        else:
            fixed.append(instr)
    return tuple(fixed)


@st.composite
def _random_method(draw):
    body = draw(st.lists(_instr, min_size=1, max_size=14))
    body.append(("ireturn",))  # a plausible terminator
    return _close_targets(tuple(body))


class TestVerifierSoundness:
    @settings(max_examples=300, deadline=None)
    @given(code=_random_method())
    def test_accepted_code_never_crashes_interpreter(self, code):
        vm = fresh_vm()
        classfile = ClassFile(
            name="fuzz/F",
            methods=(
                MethodDef("f", "(IIDLjava/lang/Object;)I", PUBLIC_STATIC,
                          max_stack=16, max_locals=8, code=code),
            ),
        )
        loader = vm.new_loader("fuzz", resolver=MapResolver({}))
        try:
            rtclass = loader.define(classfile)
        except (VerifyError, ClassFormatError, LinkageError):
            return  # rejected: the verifier did its job
        # Accepted: must run without host-level errors.
        obj = vm.heap.new_object(vm.object_class)
        try:
            result = vm.call_static(
                rtclass, "f", "(IIDLjava/lang/Object;)I",
                [5, -3, 2.5, obj], max_steps=20_000,
            )
        except (JThrowable, OutOfStepsError, DeadlockError):
            return  # guest exception / infinite loop bound: fine
        assert isinstance(result, int)
        assert -(2**31) <= result <= 2**31 - 1

    @settings(max_examples=100, deadline=None)
    @given(code=_random_method())
    def test_verifier_is_deterministic(self, code):
        """The same method must verify the same way twice (no hidden
        state in the verifier)."""
        def attempt():
            vm = fresh_vm()
            classfile = ClassFile(
                name="fuzz/D",
                methods=(
                    MethodDef("f", "(IIDLjava/lang/Object;)I",
                              PUBLIC_STATIC, max_stack=16, max_locals=8,
                              code=code),
                ),
            )
            loader = vm.new_loader("fuzz", resolver=MapResolver({}))
            try:
                loader.define(classfile)
                return "accept"
            except (VerifyError, ClassFormatError, LinkageError) as exc:
                return type(exc).__name__

        assert attempt() == attempt()
