"""Core library natives: String, StringBuilder, System."""

import pytest

from repro.jvm import JThrowable
from repro.jvm.instructions import (
    ALOAD,
    ARETURN,
    DUP,
    ICONST,
    ILOAD,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    LDC_STR,
    NEW,
    RETURN,
)
from tests.support import PUBLIC_STATIC, assemble, fresh_vm, load_classes


@pytest.fixture(scope="module")
def svm():
    return fresh_vm()


def jstr(vm, text):
    return vm.new_string(text)


class TestStringNatives:
    def test_length_and_charat(self, svm):
        s = jstr(svm, "hello")
        assert svm.call_virtual(s, "length", "()I") == 5
        assert svm.call_virtual(s, "charAt", "(I)I", [1]) == ord("e")

    def test_charat_bounds(self, svm):
        s = jstr(svm, "ab")
        with pytest.raises(JThrowable, match="IndexOutOfBounds"):
            svm.call_virtual(s, "charAt", "(I)I", [5])

    def test_concat_substring(self, svm):
        a = jstr(svm, "foo")
        b = jstr(svm, "bar")
        joined = svm.call_virtual(
            a, "concat", "(Ljava/lang/String;)Ljava/lang/String;", [b]
        )
        assert svm.text_of(joined) == "foobar"
        part = svm.call_virtual(joined, "substring",
                                "(II)Ljava/lang/String;", [1, 4])
        assert svm.text_of(part) == "oob"

    def test_substring_bounds(self, svm):
        with pytest.raises(JThrowable):
            svm.call_virtual(jstr(svm, "x"), "substring",
                             "(II)Ljava/lang/String;", [0, 5])

    def test_equals_and_startswith(self, svm):
        a = jstr(svm, "same")
        b = jstr(svm, "same")
        assert a is not b
        assert svm.call_virtual(
            a, "equalsString", "(Ljava/lang/String;)Z", [b]
        ) == 1
        assert svm.call_virtual(
            a, "startsWith", "(Ljava/lang/String;)Z", [jstr(svm, "sa")]
        ) == 1
        assert svm.call_virtual(
            a, "startsWith", "(Ljava/lang/String;)Z", [jstr(svm, "am")]
        ) == 0

    def test_hash_is_javas(self, svm):
        # Java's "Aa".hashCode() == 2112
        assert svm.call_virtual(jstr(svm, "Aa"), "hashCode", "()I") == 2112

    def test_get_bytes_roundtrip(self, svm):
        s = jstr(svm, "héllo")
        data = svm.call_virtual(s, "getBytes", "()[B")
        back = svm.call_static(
            svm.string_class, "fromBytes", "([B)Ljava/lang/String;", [data]
        )
        assert svm.text_of(back) == "héllo"

    def test_value_of_int(self, svm):
        result = svm.call_static(
            svm.string_class, "valueOfInt", "(I)Ljava/lang/String;", [-42]
        )
        assert svm.text_of(result) == "-42"

    def test_intern_same_identity(self, svm):
        a = svm.call_virtual(jstr(svm, "pool"), "intern",
                             "()Ljava/lang/String;")
        b = svm.call_virtual(jstr(svm, "pool"), "intern",
                             "()Ljava/lang/String;")
        assert a is b

    def test_strings_immutable_across_lrmi(self, svm):
        # interned literal from bytecode is the same object
        def build(ca):
            with ca.method("lit", "()Ljava/lang/String;",
                           PUBLIC_STATIC) as m:
                m.emit(LDC_STR, "constant")
                m.emit(ARETURN)

        loader = load_classes(svm, [assemble("n/Lit", build)], "natives1")
        first = svm.call_static(loader.load("n/Lit"), "lit",
                                "()Ljava/lang/String;", [])
        second = svm.call_static(loader.load("n/Lit"), "lit",
                                 "()Ljava/lang/String;", [])
        assert first is second


class TestStringBuilder:
    def test_build_in_guest_code(self, svm):
        def build(ca):
            with ca.method("make", "(I)Ljava/lang/String;",
                           PUBLIC_STATIC) as m:
                m.emit(NEW, "java/lang/StringBuilder")
                m.emit(DUP)
                m.emit(INVOKESPECIAL, "java/lang/StringBuilder", "<init>",
                       "()V")
                m.emit(LDC_STR, "n=")
                m.emit(INVOKEVIRTUAL, "java/lang/StringBuilder", "append",
                       "(Ljava/lang/String;)Ljava/lang/StringBuilder;")
                m.emit(ILOAD, 0)
                m.emit(INVOKEVIRTUAL, "java/lang/StringBuilder",
                       "appendInt", "(I)Ljava/lang/StringBuilder;")
                m.emit(INVOKEVIRTUAL, "java/lang/StringBuilder",
                       "toString", "()Ljava/lang/String;")
                m.emit(ARETURN)

        loader = load_classes(svm, [assemble("n/SB", build)], "natives2")
        result = svm.call_static(loader.load("n/SB"), "make",
                                 "(I)Ljava/lang/String;", [7])
        assert svm.text_of(result) == "n=7"


class TestSystemNatives:
    def test_println_routes_to_domain_tag(self, svm):
        def build(ca):
            with ca.method("say", "()V", PUBLIC_STATIC) as m:
                m.emit(LDC_STR, "spoken")
                m.emit(INVOKESTATIC, "java/lang/System", "println",
                       "(Ljava/lang/String;)V")
                m.emit(RETURN)

        loader = load_classes(svm, [assemble("n/Say", build)], "natives3")
        svm.call_static(loader.load("n/Say"), "say", "()V", [],
                        domain_tag="loudmouth")
        assert ("loudmouth", "spoken") in svm.output

    def test_arraycopy(self, svm):
        array_class = svm.array_class_for_descriptor("[I", svm.boot_loader)
        src = svm.heap.new_array(array_class, 5)
        src.elems[:] = [1, 2, 3, 4, 5]
        dest = svm.heap.new_array(array_class, 5)
        system = svm.boot_loader.load("java/lang/System")
        svm.call_static(
            system, "arraycopy",
            "(Ljava/lang/Object;ILjava/lang/Object;II)V",
            [src, 1, dest, 0, 3],
        )
        assert dest.elems == [2, 3, 4, 0, 0]

    def test_arraycopy_bounds(self, svm):
        array_class = svm.array_class_for_descriptor("[I", svm.boot_loader)
        src = svm.heap.new_array(array_class, 2)
        system = svm.boot_loader.load("java/lang/System")
        with pytest.raises(JThrowable, match="IndexOutOfBounds"):
            svm.call_static(
                system, "arraycopy",
                "(Ljava/lang/Object;ILjava/lang/Object;II)V",
                [src, 0, src, 1, 5],
            )

    def test_arraycopy_type_mismatch(self, svm):
        ints = svm.heap.new_array(
            svm.array_class_for_descriptor("[I", svm.boot_loader), 2
        )
        doubles = svm.heap.new_array(
            svm.array_class_for_descriptor("[D", svm.boot_loader), 2
        )
        system = svm.boot_loader.load("java/lang/System")
        with pytest.raises(JThrowable, match="ArrayStore"):
            svm.call_static(
                system, "arraycopy",
                "(Ljava/lang/Object;ILjava/lang/Object;II)V",
                [ints, 0, doubles, 0, 2],
            )

    def test_identity_hash_stable(self, svm):
        obj = svm.heap.new_object(svm.object_class)
        system = svm.boot_loader.load("java/lang/System")
        first = svm.call_static(system, "identityHashCode",
                                "(Ljava/lang/Object;)I", [obj])
        second = svm.call_static(system, "identityHashCode",
                                 "(Ljava/lang/Object;)I", [obj])
        assert first == second
        assert svm.call_static(system, "identityHashCode",
                               "(Ljava/lang/Object;)I", [None]) == 0

    def test_nano_time_advances(self, svm):
        system = svm.boot_loader.load("java/lang/System")
        first = svm.call_static(system, "nanoTime", "()D", [])
        second = svm.call_static(system, "nanoTime", "()D", [])
        assert second >= first


class TestObjectNatives:
    def test_identity_equals_and_hash(self, svm):
        a = svm.heap.new_object(svm.object_class)
        b = svm.heap.new_object(svm.object_class)
        assert svm.call_virtual(a, "equals",
                                "(Ljava/lang/Object;)Z", [a]) == 1
        assert svm.call_virtual(a, "equals",
                                "(Ljava/lang/Object;)Z", [b]) == 0
        assert svm.call_virtual(a, "hashCode", "()I") == \
            svm.call_virtual(a, "hashCode", "()I")

    def test_to_string_mentions_class(self, svm):
        obj = svm.heap.new_object(svm.object_class)
        text = svm.text_of(svm.call_virtual(obj, "toString",
                                            "()Ljava/lang/String;"))
        assert "java/lang/Object" in text
