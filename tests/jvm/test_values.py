"""Value model: descriptors and integer wrapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.jvm.values import (
    class_name_of_descriptor,
    default_value,
    descriptor_of_class,
    i8,
    i32,
    is_reference_descriptor,
    parse_field_descriptor,
    parse_method_descriptor,
    verification_kind,
)


class TestInt32Wrapping:
    def test_identity_in_range(self):
        assert i32(0) == 0
        assert i32(2147483647) == 2147483647
        assert i32(-2147483648) == -2147483648

    def test_positive_overflow_wraps_negative(self):
        assert i32(2147483648) == -2147483648
        assert i32(2147483649) == -2147483647

    def test_negative_overflow_wraps_positive(self):
        assert i32(-2147483649) == 2147483647

    def test_large_multiplication_wraps(self):
        assert i32(65536 * 65536) == 0

    @given(st.integers())
    def test_always_in_range(self, value):
        wrapped = i32(value)
        assert -2147483648 <= wrapped <= 2147483647

    @given(st.integers(), st.integers())
    def test_addition_homomorphic_mod_2_32(self, a, b):
        assert i32(i32(a) + i32(b)) == i32(a + b)

    @given(st.integers())
    def test_idempotent(self, value):
        assert i32(i32(value)) == i32(value)


class TestInt8Wrapping:
    def test_in_range(self):
        assert i8(127) == 127
        assert i8(-128) == -128

    def test_wraps(self):
        assert i8(128) == -128
        assert i8(255) == -1
        assert i8(256) == 0

    @given(st.integers())
    def test_always_in_range(self, value):
        assert -128 <= i8(value) <= 127


class TestFieldDescriptors:
    def test_primitives(self):
        assert parse_field_descriptor("I") == ("I", 1)
        assert parse_field_descriptor("D") == ("D", 1)
        assert parse_field_descriptor("Z") == ("Z", 1)
        assert parse_field_descriptor("B") == ("B", 1)

    def test_class(self):
        desc, end = parse_field_descriptor("Ljava/lang/String;")
        assert desc == "Ljava/lang/String;"
        assert end == len(desc)

    def test_arrays(self):
        assert parse_field_descriptor("[I")[0] == "[I"
        assert parse_field_descriptor("[[B")[0] == "[[B"
        assert parse_field_descriptor("[Lx/Y;")[0] == "[Lx/Y;"

    def test_offset(self):
        desc, end = parse_field_descriptor("(I[B)V", offset=1)
        assert desc == "I"
        assert end == 2

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_field_descriptor("Q")

    def test_reference_predicate(self):
        assert is_reference_descriptor("Lx/Y;")
        assert is_reference_descriptor("[I")
        assert not is_reference_descriptor("I")

    def test_class_name_extraction(self):
        assert class_name_of_descriptor("Lx/Y;") == "x/Y"
        assert class_name_of_descriptor("[I") is None
        assert descriptor_of_class("x/Y") == "Lx/Y;"


class TestMethodDescriptors:
    def test_nullary_void(self):
        assert parse_method_descriptor("()V") == ([], "V")

    def test_mixed_args(self):
        args, ret = parse_method_descriptor("(I[BLjava/lang/String;D)I")
        assert args == ["I", "[B", "Ljava/lang/String;", "D"]
        assert ret == "I"

    def test_reference_return(self):
        args, ret = parse_method_descriptor("()[B")
        assert args == []
        assert ret == "[B"

    def test_rejects_missing_parens(self):
        with pytest.raises(ValueError):
            parse_method_descriptor("IV")


class TestVerificationKinds:
    def test_boolean_and_byte_are_ints(self):
        assert verification_kind("Z") == "I"
        assert verification_kind("B") == "I"
        assert verification_kind("I") == "I"

    def test_double(self):
        assert verification_kind("D") == "D"

    def test_references(self):
        assert verification_kind("Lx/Y;") == "A"
        assert verification_kind("[I") == "A"

    def test_defaults(self):
        assert default_value("I") == 0
        assert default_value("D") == 0.0
        assert default_value("Lx/Y;") is None
        assert default_value("[B") is None
