"""Garbage collection, heap accounting, and the revocation/termination
memory story (paper §3: revoking "makes the target object eligible for
garbage collection, regardless of how many other domains hold a reference
to the capability")."""

import pytest

from tests.support import assemble, fresh_vm, load_classes


class TestHeapAccounting:
    def test_allocation_charged_to_owner(self, sun_vm):
        vm = sun_vm
        before = vm.heap.stats("tenant").allocated_objects
        obj = vm.heap.new_object(vm.object_class, owner="tenant")
        stats = vm.heap.stats("tenant")
        assert stats.allocated_objects == before + 1
        assert stats.live_objects >= 1
        assert vm.heap.owner_of(obj) == "tenant"

    def test_array_bytes_scale_with_length(self, sun_vm):
        vm = sun_vm
        array_class = vm.array_class_for_descriptor("[B", vm.boot_loader)
        vm.heap.new_array(array_class, 1000, owner="big")
        vm.heap.new_array(array_class, 10, owner="small")
        assert vm.heap.stats("big").live_bytes > vm.heap.stats(
            "small"
        ).live_bytes

    def test_free_updates_live_not_allocated(self, sun_vm):
        vm = sun_vm
        obj = vm.heap.new_object(vm.object_class, owner="x")
        allocated = vm.heap.stats("x").allocated_objects
        vm.heap.free(obj)
        assert vm.heap.stats("x").allocated_objects == allocated
        assert vm.heap.stats("x").live_objects == 0


class TestCollection:
    def test_unreachable_objects_collected(self, sun_vm):
        vm = sun_vm
        for _ in range(10):
            vm.heap.new_object(vm.object_class, owner="garbage")
        stats = vm.collect()
        assert stats["collected"] >= 10
        assert vm.heap.stats("garbage").live_objects == 0

    def test_pinned_objects_survive(self, sun_vm):
        vm = sun_vm
        obj = vm.heap.new_object(vm.object_class, owner="pinned")
        vm.pinned.add(obj)
        vm.collect()
        assert vm.heap.contains(obj)
        vm.pinned.discard(obj)
        vm.collect()
        assert not vm.heap.contains(obj)

    def test_static_fields_are_roots(self, sun_vm):
        vm = sun_vm
        from repro.jvm.classfile import ACC_PUBLIC, ACC_STATIC

        holder_cf = assemble(
            "g/Holder", None,
            fields=[("kept", "Ljava/lang/Object;",
                     ACC_PUBLIC | ACC_STATIC)],
        )
        loader = load_classes(vm, [holder_cf], "gc")
        holder = loader.load("g/Holder")
        obj = vm.heap.new_object(vm.object_class, owner="static")
        holder.static_slots[holder.static_index["kept"]] = obj
        vm.collect()
        assert vm.heap.contains(obj)
        holder.static_slots[holder.static_index["kept"]] = None
        vm.collect()
        assert not vm.heap.contains(obj)

    def test_object_graph_traversed(self, sun_vm):
        vm = sun_vm
        node_cf = assemble("g/Node", None,
                           fields=[("next", "Lg/Node;")])
        loader = load_classes(vm, [node_cf], "gc2")
        node_class = loader.load("g/Node")
        head = vm.heap.new_object(node_class, owner="chain")
        cursor = head
        tail_objects = []
        for _ in range(5):
            nxt = vm.heap.new_object(node_class, owner="chain")
            cursor.fields[node_class.field_slots["next"]] = nxt
            tail_objects.append(nxt)
            cursor = nxt
        vm.pinned.add(head)
        vm.collect()
        assert all(vm.heap.contains(obj) for obj in tail_objects)
        # cut the chain after the head: the tail becomes garbage
        head.fields[node_class.field_slots["next"]] = None
        vm.collect()
        assert not any(vm.heap.contains(obj) for obj in tail_objects)

    def test_cyclic_garbage_collected(self, sun_vm):
        vm = sun_vm
        node_cf = assemble("g/Cyc", None, fields=[("next", "Lg/Cyc;")])
        loader = load_classes(vm, [node_cf], "gc3")
        node_class = loader.load("g/Cyc")
        a = vm.heap.new_object(node_class, owner="cycle")
        b = vm.heap.new_object(node_class, owner="cycle")
        a.fields[node_class.field_slots["next"]] = b
        b.fields[node_class.field_slots["next"]] = a
        vm.collect()
        assert not vm.heap.contains(a)
        assert not vm.heap.contains(b)

    def test_thread_frames_are_roots(self, sun_vm):
        vm = sun_vm
        from repro.jvm.instructions import (
            ALOAD,
            ASTORE,
            GOTO,
            ICONST,
            INVOKESTATIC,
            NEW,
            RETURN,
        )

        def build(ca):
            with ca.method("run", "()V") as m:
                m.emit(NEW, "g/Held")
                m.emit(ASTORE, 1)
                loop = m.here()
                m.emit(INVOKESTATIC, "java/lang/Thread", "yield", "()V")
                m.emit(GOTO, loop.pc)

        held_cf = assemble("g/Held", None)
        runner_cf = assemble("g/Runner", build,
                             super_name="java/lang/Thread")
        loader = load_classes(vm, [held_cf, runner_cf], "gc4")
        runner = vm.construct(loader.load("g/Runner"))
        vm.call_virtual(runner, "start", "()V")
        vm.scheduler.run_for(100)  # NEW executed, thread spinning
        held_class = loader.load("g/Held")
        live = [
            obj for obj in vm.heap.live_objects()
            if getattr(obj, "jclass", None) is held_class
        ]
        assert len(live) == 1
        vm.collect()
        assert vm.heap.contains(live[0])  # rooted in the live frame
        vm.call_virtual(runner, "stop", "()V")
        vm.scheduler.run()  # thread dies, frame gone
        runner.native.uncaught = None  # drop the ThreadDeath root
        vm.collect()
        assert not vm.heap.contains(live[0])


class TestInternLeak:
    """The String.intern shared-leak example from paper §2, and its
    weak-reference fix."""

    def _intern_many(self, vm, count):
        from repro.jvm.instructions import (
            GOTO,
            ICONST,
            IF_ICMPGE,
            IINC,
            ILOAD,
            INVOKESTATIC,
            INVOKEVIRTUAL,
            ISTORE,
            POP,
            RETURN,
        )

        def build(ca):
            with ca.method("leak", "(I)V", 0x0009) as m:
                m.emit(ICONST, 0)
                m.emit(ISTORE, 1)
                loop = m.here()
                m.emit(ILOAD, 1)
                m.emit(ILOAD, 0)
                done = m.label()
                m.emit(IF_ICMPGE, done)
                m.emit(ILOAD, 1)
                m.emit(INVOKESTATIC, "java/lang/String", "valueOfInt",
                       "(I)Ljava/lang/String;")
                m.emit(INVOKEVIRTUAL, "java/lang/String", "intern",
                       "()Ljava/lang/String;")
                m.emit(POP)
                m.emit(IINC, 1, 1)
                m.emit(GOTO, loop.pc)
                m.mark(done)
                m.emit(RETURN)

        cf = assemble("g/Intern", build)
        loader = load_classes(vm, [cf], "gcintern")
        vm.call_static(loader.load("g/Intern"), "leak", "(I)V", [count])

    def test_strong_intern_table_leaks(self):
        vm = fresh_vm(intern_weak=False)
        before = len(vm.interned)
        self._intern_many(vm, 50)
        vm.collect()
        # nothing references those strings, yet they stay: the leak
        assert len(vm.interned) >= before + 50

    def test_weak_intern_table_reclaims(self):
        vm = fresh_vm(intern_weak=True)
        self._intern_many(vm, 50)
        before = len(vm.interned)
        vm.collect()
        assert len(vm.interned) < before
