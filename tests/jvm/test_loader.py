"""Class loaders and namespaces: the protection-domain foundation.

"The multiple namespaces ensure that the same variable, procedure, or type
names can refer to different instances in different domains" (paper §1).
"""

import pytest

from repro.jvm import (
    ChainResolver,
    ClassNotFoundError,
    DenyResolver,
    LinkageError,
    MapResolver,
    interface,
)
from repro.jvm.instructions import (
    ALOAD,
    GETSTATIC,
    ICONST,
    INVOKESTATIC,
    IRETURN,
    PUTSTATIC,
    RETURN,
)
from tests.support import PUBLIC_STATIC, assemble, fresh_vm


def const_class(name, value):
    def build(ca):
        with ca.method("value", "()I", PUBLIC_STATIC) as m:
            m.emit(ICONST, value)
            m.emit(IRETURN)

    return assemble(name, build)


class TestNamespaces:
    def test_same_name_different_classes(self):
        vm = fresh_vm()
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({"x/C": const_class("x/C", 1)})
        )
        loader_b = vm.new_loader(
            "B", resolver=MapResolver({"x/C": const_class("x/C", 2)})
        )
        class_a = loader_a.load("x/C")
        class_b = loader_b.load("x/C")
        assert class_a is not class_b
        assert vm.call_static(class_a, "value", "()I") == 1
        assert vm.call_static(class_b, "value", "()I") == 2

    def test_same_name_classes_are_incompatible_types(self):
        vm = fresh_vm()
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({"x/C": const_class("x/C", 1)})
        )
        loader_b = vm.new_loader(
            "B", resolver=MapResolver({"x/C": const_class("x/C", 2)})
        )
        class_a = loader_a.load("x/C")
        class_b = loader_b.load("x/C")
        assert not class_a.is_assignable_to(class_b)
        assert not class_b.is_assignable_to(class_a)

    def test_unresolvable_name_raises(self):
        vm = fresh_vm()
        loader = vm.new_loader("A", resolver=MapResolver({}))
        with pytest.raises(ClassNotFoundError):
            loader.load("no/Such")

    def test_parent_delegation_for_system_classes(self):
        vm = fresh_vm()
        loader = vm.new_loader("A", resolver=MapResolver({}))
        string_class = loader.load("java/lang/String")
        assert string_class is vm.string_class

    def test_recursive_loading_of_referenced_classes(self):
        vm = fresh_vm()

        def build(ca):
            with ca.method("make", "()Lx/Other;", PUBLIC_STATIC) as m:
                m.emit("new", "x/Other")
                m.emit("areturn")

        main = assemble("x/Main", build)
        other = assemble("x/Other", None)
        loader = vm.new_loader(
            "A", resolver=MapResolver({main.name: main, other.name: other})
        )
        loader.load("x/Main")
        # verifying Main resolved Other through the same loader
        assert loader.loaded("x/Other") is not None

    def test_cyclic_inheritance_rejected(self):
        vm = fresh_vm()
        a = assemble("x/A", None, super_name="x/B", constructor=False)
        b = assemble("x/B", None, super_name="x/A", constructor=False)
        loader = vm.new_loader(
            "A", resolver=MapResolver({"x/A": a, "x/B": b})
        )
        with pytest.raises(LinkageError, match="cyclic"):
            loader.load("x/A")

    def test_duplicate_definition_rejected(self):
        vm = fresh_vm()
        loader = vm.new_loader("A", resolver=MapResolver({}))
        loader.define(const_class("x/C", 1))
        with pytest.raises(LinkageError, match="already defined"):
            loader.define(const_class("x/C", 2))

    def test_resolver_name_mismatch_rejected(self):
        vm = fresh_vm()
        loader = vm.new_loader(
            "A", resolver=MapResolver({"x/Wanted": const_class("x/Bad", 0)})
        )
        with pytest.raises(LinkageError, match="requested name"):
            loader.load("x/Wanted")


class TestSharing:
    def test_shared_class_has_same_identity(self):
        vm = fresh_vm()
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({"x/C": const_class("x/C", 7)})
        )
        shared = loader_a.load("x/C")
        loader_b = vm.new_loader("B", resolver=MapResolver({"x/C": shared}))
        assert loader_b.load("x/C") is shared

    def test_shared_statics_visible_to_both(self):
        vm = fresh_vm()

        def build(ca):
            with ca.method("set", "(I)V", PUBLIC_STATIC) as m:
                m.emit("iload", 0)
                m.emit(PUTSTATIC, "x/Shared", "value")
                m.emit(RETURN)
            with ca.method("get", "()I", PUBLIC_STATIC) as m:
                m.emit(GETSTATIC, "x/Shared", "value")
                m.emit(IRETURN)

        shared_cf = assemble("x/Shared", build,
                             fields=[("value", "I", PUBLIC_STATIC)])
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({"x/Shared": shared_cf})
        )
        shared = loader_a.load("x/Shared")
        loader_b = vm.new_loader("B", resolver=MapResolver({}))
        loader_b.share(shared)
        vm.call_static(shared, "set", "(I)V", [41])
        # This is exactly the covert channel the J-Kernel's no-static-fields
        # rule for shared classes exists to forbid (see repro.jkvm).
        assert vm.call_static(loader_b.load("x/Shared"), "get", "()I") == 41

    def test_conflicting_share_rejected(self):
        vm = fresh_vm()
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({"x/C": const_class("x/C", 1)})
        )
        loader_b = vm.new_loader(
            "B", resolver=MapResolver({"x/C": const_class("x/C", 2)})
        )
        class_b = loader_b.load("x/C")
        with pytest.raises(LinkageError, match="different class"):
            loader_b.share(loader_a.load("x/C"))


class TestHiding:
    def test_deny_resolver_hides_system_class(self):
        vm = fresh_vm()
        loader = vm.new_loader(
            "restricted",
            resolver=ChainResolver(DenyResolver({"java/lang/Thread"})),
        )
        with pytest.raises(ClassNotFoundError, match="hidden"):
            loader.load("java/lang/Thread")
        # other system classes still visible
        assert loader.load("java/lang/String") is vm.string_class

    def test_hidden_class_makes_user_code_unverifiable(self):
        vm = fresh_vm()

        def build(ca):
            with ca.method("spawn", "()V", PUBLIC_STATIC) as m:
                m.emit("new", "java/lang/Thread")
                m.emit("pop")
                m.emit(RETURN)

        user = assemble("x/User", build)
        loader = vm.new_loader(
            "restricted",
            resolver=ChainResolver(
                DenyResolver({"java/lang/Thread"}),
                MapResolver({user.name: user}),
            ),
        )
        from repro.jvm import VerifyError

        with pytest.raises((VerifyError, ClassNotFoundError)):
            loader.load("x/User")

    def test_interposition_replaces_hidden_class(self):
        """Hide the system Thread, supply a safe one under the same name —
        the paper's interposition move."""
        vm = fresh_vm()

        def build(ca):
            with ca.method("currentThread", "()I", PUBLIC_STATIC) as m:
                m.emit(ICONST, -1)  # inert replacement
                m.emit(IRETURN)

        safe_thread = assemble("java/lang/Thread", build)
        loader = vm.new_loader(
            "restricted",
            resolver=MapResolver({"java/lang/Thread": safe_thread}),
        )
        replacement = loader.load("java/lang/Thread")
        assert replacement is not vm.boot_loader.load("java/lang/Thread")
        assert vm.call_static(replacement, "currentThread", "()I") == -1


class TestLoaderConstraints:
    def _interface_pair(self, vm):
        """Interface I with method f(Lx/P;)V, implemented across loaders."""
        param = assemble("x/P", None)
        iface_cf = interface("x/I", [("f", "(Lx/P;)V")])

        def impl_build(ca):
            with ca.method("f", "(Lx/P;)V") as m:
                m.emit(RETURN)

        impl = assemble("x/Impl", impl_build, interfaces=("x/I",))
        return param, iface_cf, impl

    def test_consistent_resolution_links(self):
        vm = fresh_vm()
        param, iface_cf, impl = self._interface_pair(vm)
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({
                param.name: param, iface_cf.name: iface_cf,
            })
        )
        shared_iface = loader_a.load("x/I")
        shared_param = loader_a.load("x/P")
        loader_b = vm.new_loader(
            "B", resolver=MapResolver({
                "x/I": shared_iface, "x/P": shared_param, impl.name: impl,
            })
        )
        loader_b.load("x/Impl")  # same x/P both sides: fine

    def test_divergent_resolution_rejected(self):
        """Implementing a shared interface while resolving a signature class
        differently is the classic cross-loader type hole; link must fail."""
        vm = fresh_vm()
        param, iface_cf, impl = self._interface_pair(vm)
        loader_a = vm.new_loader(
            "A", resolver=MapResolver({
                param.name: param, iface_cf.name: iface_cf,
            })
        )
        shared_iface = loader_a.load("x/I")
        own_param = assemble("x/P", None)  # a different x/P!
        loader_b = vm.new_loader(
            "B", resolver=MapResolver({
                "x/I": shared_iface, "x/P": own_param, impl.name: impl,
            })
        )
        with pytest.raises(LinkageError, match="loader constraint"):
            loader_b.load("x/Impl")
