"""Generic decoder vs threaded-code tier equivalence.

The specialized dispatch tier (:mod:`repro.jvm.threaded`) must be
observationally identical to the generic decoder in
:mod:`repro.jvm.interp`: same results, same guest exceptions delivered to
the same handlers, and the same retired-instruction counts (superinstruction
widths included), so scheduling quanta and step budgets behave the same.

Two attack angles:

* fuzzed method bodies (the ``test_verifier_fuzz`` instruction pool) run
  under both tiers in parallel VMs and must agree;
* deterministic programs target the fusion edge cases — branches into the
  middle of a would-be superinstruction, fault-pc attribution inside a
  fused window, polymorphic call/field sites flipping the inline caches.
"""

from hypothesis import given, settings

from repro.jvm import ClassFormatError, MapResolver, VerifyError
from repro.jvm.classfile import ClassFile, MethodDef
from repro.jvm.errors import (
    DeadlockError,
    JThrowable,
    LinkageError,
    OutOfStepsError,
)
from tests.jvm.test_verifier_fuzz import _random_method
from tests.support import assemble, fresh_vm, load_classes

PUBLIC_STATIC = 0x0009
FUZZ_DESC = "(IIDLjava/lang/Object;)I"


def _run_fuzz_case(vm, code, max_steps=20_000):
    """Define and run one fuzz method; returns (outcome, retired)."""
    classfile = ClassFile(
        name="eq/F",
        methods=(
            MethodDef("f", FUZZ_DESC, PUBLIC_STATIC,
                      max_stack=16, max_locals=8, code=code),
        ),
    )
    loader = vm.new_loader("eq", resolver=MapResolver({}))
    try:
        rtclass = loader.define(classfile)
    except (VerifyError, ClassFormatError, LinkageError) as exc:
        return ("rejected", type(exc).__name__), None
    obj = vm.heap.new_object(vm.object_class)
    before = vm.interpreter.instructions_retired
    try:
        result = vm.call_static(
            rtclass, "f", FUZZ_DESC, [5, -3, 2.5, obj], max_steps=max_steps
        )
    except JThrowable as exc:
        retired = vm.interpreter.instructions_retired - before
        return ("guest-exception", exc.jobject.jclass.name), retired
    except OutOfStepsError:
        return ("out-of-steps",), None
    except DeadlockError:
        return ("deadlock",), None
    retired = vm.interpreter.instructions_retired - before
    return ("ok", result), retired


class TestFuzzedEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(code=_random_method())
    def test_both_tiers_agree(self, code):
        threaded = fresh_vm()
        generic = fresh_vm(threaded_code=False)
        threaded_outcome, threaded_retired = _run_fuzz_case(threaded, code)
        generic_outcome, generic_retired = _run_fuzz_case(generic, code)
        assert threaded_outcome == generic_outcome
        if threaded_outcome[0] in ("ok", "guest-exception"):
            # Tick parity: superinstructions must report their width,
            # including the completed sub-instructions of a fused window
            # that faults midway (GuestUnwind.ticks).
            assert threaded_retired == generic_retired


def _both_vms():
    return fresh_vm(), fresh_vm(threaded_code=False)


def _run_static(vm, classfiles, class_name, method, desc, args):
    loader = load_classes(vm, classfiles)
    return vm.call_static(loader.loaded(class_name), method, desc,
                          list(args))


def _agree(classfiles_builder, class_name, method, desc, args):
    """Run the same program under both tiers; return the (equal) result."""
    results = []
    for vm in _both_vms():
        results.append(
            _run_static(vm, classfiles_builder(), class_name, method, desc,
                        args)
        )
    assert results[0] == results[1]
    return results[0]


def _holder_classfile():
    def build(ca):
        with ca.method("get", "()I") as m:
            m.emit("aload", 0)
            m.emit("getfield", "eq/Holder", "value")
            m.emit("ireturn")
    return assemble("eq/Holder", build, fields=(("value", "I"),))


def _holder2_classfile():
    """Same field name at a different slot (extra leading field)."""
    def build(ca):
        with ca.method("get", "()I") as m:
            m.emit("aload", 0)
            m.emit("getfield", "eq/Holder2", "value")
            m.emit("ireturn")
    return assemble(
        "eq/Holder2", build,
        fields=(("pad", "Ljava/lang/Object;"), ("value", "I")),
    )


class TestFusionEdgeCases:
    def test_fault_pc_inside_fused_getfield(self):
        """An NPE from the GETFIELD half of a fused ALOAD·GETFIELD must hit
        a handler that covers only the GETFIELD pc."""
        def classfiles():
            def build(ca):
                with ca.method("probe", "(Leq/Holder;)I",
                               PUBLIC_STATIC) as m:
                    m.emit("aload", 0)        # pc 0 (fusion head)
                    start = m.here()
                    m.emit("getfield", "eq/Holder", "value")  # pc 1: faults
                    end = m.here()
                    m.emit("ireturn")         # pc 2
                    handler = m.here()
                    m.emit("pop")
                    m.emit("iconst", 7)
                    m.emit("ireturn")
                    m.handler(start, end, handler, None)
            return [_holder_classfile(), assemble("eq/Probe", build)]

        retireds = []
        for vm in _both_vms():
            loader = load_classes(vm, classfiles())
            before = vm.interpreter.instructions_retired
            result = vm.call_static(loader.loaded("eq/Probe"), "probe",
                                    "(Leq/Holder;)I", [None])
            retireds.append(vm.interpreter.instructions_retired - before)
            assert result == 7
        # tick parity across the faulting fused window (ALOAD completed,
        # GETFIELD faulted): both tiers must retire identical counts
        assert retireds[0] == retireds[1]

    def test_branch_into_middle_of_push_run(self):
        """A jump target inside a would-be push run must stay executable
        (fusion is suppressed across entry points)."""
        def classfiles():
            def build(ca):
                with ca.method("probe", "(I)I", PUBLIC_STATIC) as m:
                    mid = m.label("mid")
                    m.emit("iload", 0)     # pc 0
                    m.emit("ifne", mid)    # pc 1
                    m.emit("iconst", 5)    # pc 2: would fuse with pc 3...
                    m.emit("istore", 0)    # pc 3
                    m.mark(mid)
                    m.emit("iconst", 1)    # pc 4: branch target
                    m.emit("iconst", 2)    # pc 5
                    m.emit("iadd")
                    m.emit("ireturn")
            return [assemble("eq/Probe", build)]

        for arg, expected in ((0, 3), (1, 3)):
            assert _agree(classfiles, "eq/Probe", "probe", "(I)I",
                          [arg]) == expected

    def test_polymorphic_field_site_refills_inline_cache(self):
        """The same GETFIELD site sees receivers whose field lives at
        different slots; the monomorphic cache must refill, not go stale."""
        def classfiles():
            def build(ca):
                with ca.method("sum", "(Leq/Holder;Leq/Holder2;)I",
                               PUBLIC_STATIC) as m:
                    m.emit("aload", 0)
                    m.emit("invokevirtual", "eq/Holder", "get", "()I")
                    m.emit("aload", 1)
                    m.emit("invokevirtual", "eq/Holder2", "get", "()I")
                    m.emit("iadd")
                    m.emit("ireturn")
            return [_holder_classfile(), _holder2_classfile(),
                    assemble("eq/Probe", build)]

        results = []
        for vm in _both_vms():
            loader = load_classes(vm, classfiles())
            holder = vm.construct(loader.loaded("eq/Holder"))
            holder.fields[holder.jclass.field_slots["value"]] = 30
            holder2 = vm.construct(loader.loaded("eq/Holder2"))
            holder2.fields[holder2.jclass.field_slots["value"]] = 12
            # same objects twice: cache hit path after the refill path
            for _ in range(2):
                results.append(
                    vm.call_static(
                        loader.loaded("eq/Probe"), "sum",
                        "(Leq/Holder;Leq/Holder2;)I", [holder, holder2],
                    )
                )
        assert results == [42, 42, 42, 42]

    def test_loop_retires_same_tick_count(self):
        """IINC·GOTO and ILOAD·ILOAD·IF_ICMPGE fusions must report their
        widths: a counted loop retires identical totals under both tiers."""
        def classfiles():
            def build(ca):
                with ca.method("loop", "(I)I", PUBLIC_STATIC) as m:
                    m.emit("iconst", 0)
                    m.emit("istore", 1)
                    loop = m.here()
                    m.emit("iload", 1)     # fused cmp-branch head
                    m.emit("iload", 0)
                    done = m.label("done")
                    m.emit("if_icmpge", done)
                    m.emit("iinc", 1, 1)   # fused iinc+goto
                    m.emit("goto", loop.pc)
                    m.mark(done)
                    m.emit("iload", 1)
                    m.emit("ireturn")
            return [assemble("eq/Probe", build)]

        retireds = []
        for vm in _both_vms():
            loader = load_classes(vm, classfiles())
            before = vm.interpreter.instructions_retired
            result = vm.call_static(loader.loaded("eq/Probe"), "loop",
                                    "(I)I", [500])
            retireds.append(vm.interpreter.instructions_retired - before)
            assert result == 500
        assert retireds[0] == retireds[1]

    def test_revocation_idiom_branches_and_falls_through(self):
        """The fused ALOAD·GETFIELD·DUP·IFNONNULL revocation idiom: both
        the live (branch) and revoked (fall-through) paths must match the
        generic tier."""
        def classfiles():
            def build(ca):
                with ca.method("check", "(Leq/Holder2;)I",
                               PUBLIC_STATIC) as m:
                    m.emit("aload", 0)
                    m.emit("getfield", "eq/Holder2", "pad")
                    m.emit("dup")
                    live = m.label("live")
                    m.emit("ifnonnull", live)
                    m.emit("pop")
                    m.emit("iconst", -1)
                    m.emit("ireturn")
                    m.mark(live)
                    m.emit("pop")
                    m.emit("iconst", 1)
                    m.emit("ireturn")
            return [_holder_classfile(), _holder2_classfile(),
                    assemble("eq/Probe", build)]

        for fill_pad, expected in ((False, -1), (True, 1)):
            results = []
            for vm in _both_vms():
                loader = load_classes(vm, classfiles())
                holder2 = vm.construct(loader.loaded("eq/Holder2"))
                if fill_pad:
                    slot = holder2.jclass.field_slots["pad"]
                    holder2.fields[slot] = vm.heap.new_object(
                        vm.object_class
                    )
                results.append(
                    vm.call_static(loader.loaded("eq/Probe"), "check",
                                   "(Leq/Holder2;)I", [holder2])
                )
            assert results == [expected, expected]

    def test_toggling_tier_on_one_vm(self):
        """``use_threaded`` can be flipped at run time; both tiers of the
        same VM agree (streams are compiled either way)."""
        vm = fresh_vm()
        loader = load_classes(vm, [_holder_classfile()])
        holder = vm.construct(loader.loaded("eq/Holder"))
        holder.fields[holder.jclass.field_slots["value"]] = 11
        first = vm.call_virtual(holder, "get", "()I")
        vm.interpreter.use_threaded = False
        second = vm.call_virtual(holder, "get", "()I")
        assert (first, second) == (11, 11)
