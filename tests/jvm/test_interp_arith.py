"""Interpreter arithmetic semantics, including a hypothesis cross-check
against reference JVM semantics computed in Python."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import JThrowable, i32
from repro.jvm.instructions import (
    D2I,
    DADD,
    DCMP,
    DCONST,
    DDIV,
    DLOAD,
    DMUL,
    DNEG,
    DRETURN,
    DSUB,
    I2D,
    IADD,
    IAND,
    ICONST,
    IDIV,
    ILOAD,
    IMUL,
    INEG,
    IOR,
    IREM,
    IRETURN,
    ISHL,
    ISHR,
    ISUB,
    IXOR,
)
from tests.support import PUBLIC_STATIC, assemble, fresh_vm, load_classes

_INT_OPS = {
    "iadd": (IADD, lambda a, b: i32(a + b)),
    "isub": (ISUB, lambda a, b: i32(a - b)),
    "imul": (IMUL, lambda a, b: i32(a * b)),
    "iand": (IAND, lambda a, b: i32(a & b)),
    "ior": (IOR, lambda a, b: i32(a | b)),
    "ixor": (IXOR, lambda a, b: i32(a ^ b)),
    "ishl": (ISHL, lambda a, b: i32(a << (b & 31))),
    "ishr": (ISHR, lambda a, b: i32(a >> (b & 31))),
}


def _java_div(a, b):
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return i32(quotient)


def _java_rem(a, b):
    return i32(a - _java_div(a, b) * b)


@pytest.fixture(scope="module", params=["threaded", "generic"])
def arith_vm(request):
    vm = fresh_vm(threaded_code=(request.param == "threaded"))

    def build(ca):
        for name, (opcode, _) in _INT_OPS.items():
            with ca.method(name, "(II)I", PUBLIC_STATIC) as m:
                m.emit(ILOAD, 0)
                m.emit(ILOAD, 1)
                m.emit(opcode)
                m.emit(IRETURN)
        for name, opcode in (("idiv", IDIV), ("irem", IREM)):
            with ca.method(name, "(II)I", PUBLIC_STATIC) as m:
                m.emit(ILOAD, 0)
                m.emit(ILOAD, 1)
                m.emit(opcode)
                m.emit(IRETURN)
        with ca.method("ineg", "(I)I", PUBLIC_STATIC) as m:
            m.emit(ILOAD, 0)
            m.emit(INEG)
            m.emit(IRETURN)
        for name, opcode in (("dadd", DADD), ("dsub", DSUB),
                             ("dmul", DMUL), ("ddiv", DDIV)):
            with ca.method(name, "(DD)D", PUBLIC_STATIC) as m:
                m.emit(DLOAD, 0)
                m.emit(DLOAD, 1)
                m.emit(opcode)
                m.emit(DRETURN)
        with ca.method("dneg", "(D)D", PUBLIC_STATIC) as m:
            m.emit(DLOAD, 0)
            m.emit(DNEG)
            m.emit(DRETURN)
        with ca.method("dcmp", "(DD)I", PUBLIC_STATIC) as m:
            m.emit(DLOAD, 0)
            m.emit(DLOAD, 1)
            m.emit(DCMP)
            m.emit(IRETURN)
        with ca.method("i2d", "(I)D", PUBLIC_STATIC) as m:
            m.emit(ILOAD, 0)
            m.emit(I2D)
            m.emit(DRETURN)
        with ca.method("d2i", "(D)I", PUBLIC_STATIC) as m:
            m.emit(DLOAD, 0)
            m.emit(D2I)
            m.emit(IRETURN)

    loader = load_classes(vm, [assemble("a/Arith", build)], "arith")
    return vm, loader.load("a/Arith")


def call(arith_vm, name, desc, args):
    vm, rtclass = arith_vm
    return vm.call_static(rtclass, name, desc, args)


_int32 = st.integers(min_value=-2147483648, max_value=2147483647)


class TestIntOps:
    def test_examples(self, arith_vm):
        assert call(arith_vm, "iadd", "(II)I", [2, 3]) == 5
        assert call(arith_vm, "imul", "(II)I", [-4, 3]) == -12
        assert call(arith_vm, "ishl", "(II)I", [1, 33]) == 2  # shift masked
        assert call(arith_vm, "ineg", "(I)I", [-2147483648]) == -2147483648

    def test_overflow_wraps(self, arith_vm):
        assert call(arith_vm, "iadd", "(II)I",
                    [2147483647, 1]) == -2147483648
        assert call(arith_vm, "imul", "(II)I", [65536, 65536]) == 0

    @settings(max_examples=40, deadline=None)
    @given(op=st.sampled_from(sorted(_INT_OPS)), a=_int32, b=_int32)
    def test_matches_reference_semantics(self, arith_vm, op, a, b):
        _, reference = _INT_OPS[op]
        assert call(arith_vm, op, "(II)I", [a, b]) == reference(a, b)

    def test_division_truncates_toward_zero(self, arith_vm):
        assert call(arith_vm, "idiv", "(II)I", [7, 2]) == 3
        assert call(arith_vm, "idiv", "(II)I", [-7, 2]) == -3
        assert call(arith_vm, "idiv", "(II)I", [7, -2]) == -3
        assert call(arith_vm, "irem", "(II)I", [-7, 2]) == -1
        assert call(arith_vm, "irem", "(II)I", [7, -2]) == 1

    @settings(max_examples=30, deadline=None)
    @given(a=_int32, b=_int32.filter(lambda v: v != 0))
    def test_div_rem_identity(self, arith_vm, a, b):
        quotient = call(arith_vm, "idiv", "(II)I", [a, b])
        remainder = call(arith_vm, "irem", "(II)I", [a, b])
        assert i32(quotient * b + remainder) == i32(a)

    def test_division_by_zero_throws(self, arith_vm):
        with pytest.raises(JThrowable) as info:
            call(arith_vm, "idiv", "(II)I", [1, 0])
        assert "ArithmeticException" in str(info.value)

    def test_remainder_by_zero_throws(self, arith_vm):
        with pytest.raises(JThrowable):
            call(arith_vm, "irem", "(II)I", [1, 0])


class TestDoubleOps:
    def test_examples(self, arith_vm):
        assert call(arith_vm, "dadd", "(DD)D", [1.5, 2.25]) == 3.75
        assert call(arith_vm, "dneg", "(D)D", [2.0]) == -2.0

    def test_division_by_zero_is_infinite(self, arith_vm):
        assert call(arith_vm, "ddiv", "(DD)D", [1.0, 0.0]) == float("inf")
        assert call(arith_vm, "ddiv", "(DD)D", [-1.0, 0.0]) == float("-inf")

    def test_zero_over_zero_is_nan(self, arith_vm):
        result = call(arith_vm, "ddiv", "(DD)D", [0.0, 0.0])
        assert result != result

    def test_dcmp(self, arith_vm):
        assert call(arith_vm, "dcmp", "(DD)I", [1.0, 2.0]) == -1
        assert call(arith_vm, "dcmp", "(DD)I", [2.0, 1.0]) == 1
        assert call(arith_vm, "dcmp", "(DD)I", [2.0, 2.0]) == 0
        assert call(arith_vm, "dcmp", "(DD)I",
                    [float("nan"), 1.0]) == -1


class TestConversions:
    def test_i2d(self, arith_vm):
        assert call(arith_vm, "i2d", "(I)D", [7]) == 7.0

    def test_d2i_truncates(self, arith_vm):
        assert call(arith_vm, "d2i", "(D)I", [3.99]) == 3
        assert call(arith_vm, "d2i", "(D)I", [-3.99]) == -3

    def test_d2i_saturates(self, arith_vm):
        assert call(arith_vm, "d2i", "(D)I", [1e18]) == 2147483647
        assert call(arith_vm, "d2i", "(D)I", [-1e18]) == -2147483648

    def test_d2i_nan_is_zero(self, arith_vm):
        assert call(arith_vm, "d2i", "(D)I", [float("nan")]) == 0

    @settings(max_examples=25, deadline=None)
    @given(value=_int32)
    def test_i2d_d2i_roundtrip(self, arith_vm, value):
        as_double = call(arith_vm, "i2d", "(I)D", [value])
        assert call(arith_vm, "d2i", "(D)I", [as_double]) == value
