"""Green threads: scheduling, yield, sleep, priorities, stop/suspend,
join, deadlock detection."""

import pytest

from repro.jvm import DeadlockError, JThrowable, MapResolver
from repro.jvm.instructions import (
    ALOAD,
    DUP,
    GETFIELD,
    GETSTATIC,
    GOTO,
    ICONST,
    IF_ICMPGE,
    IINC,
    ILOAD,
    INVOKESPECIAL,
    INVOKESTATIC,
    IRETURN,
    ISTORE,
    MONITORENTER,
    MONITOREXIT,
    PUTFIELD,
    PUTSTATIC,
    RETURN,
)
from tests.support import (
    PUBLIC_STATIC,
    assemble,
    fresh_vm,
    load_classes,
)


def counting_thread_class(name, limit, do_yield=True):
    """A Thread subclass whose run() increments its 'n' field."""
    def build(ca):
        with ca.method("run", "()V") as m:
            m.emit(ICONST, 0)
            m.emit(ISTORE, 1)
            loop = m.here()
            m.emit(ILOAD, 1)
            m.emit(ICONST, limit)
            done = m.label()
            m.emit(IF_ICMPGE, done)
            m.emit(ALOAD, 0)
            m.emit(DUP)
            m.emit(GETFIELD, name, "n")
            m.emit(ICONST, 1)
            m.emit("iadd")
            m.emit(PUTFIELD, name, "n")
            if do_yield:
                m.emit(INVOKESTATIC, "java/lang/Thread", "yield", "()V")
            m.emit(IINC, 1, 1)
            m.emit(GOTO, loop.pc)
            m.mark(done)
            m.emit(RETURN)

    return assemble(name, build, super_name="java/lang/Thread",
                    fields=[("n", "I")])


def field_of(vm, obj, name):
    return obj.fields[obj.jclass.field_slots[name]]


class TestBasicScheduling:
    def test_two_threads_interleave(self, vm):
        cf = counting_thread_class("t/Count", 10)
        loader = load_classes(vm, [cf], "threads")
        rtclass = loader.load("t/Count")
        first = vm.construct(rtclass)
        second = vm.construct(rtclass)
        vm.call_virtual(first, "start", "()V")
        vm.call_virtual(second, "start", "()V")
        before = vm.scheduler.context_switches
        vm.scheduler.run()
        assert field_of(vm, first, "n") == 10
        assert field_of(vm, second, "n") == 10
        assert vm.scheduler.context_switches - before >= 10

    def test_double_start_rejected(self, vm):
        cf = counting_thread_class("t/Once", 1, do_yield=False)
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Once"))
        vm.call_virtual(thread, "start", "()V")
        with pytest.raises(JThrowable) as info:
            vm.call_virtual(thread, "start", "()V")
        assert "IllegalStateException" in str(info.value)

    def test_is_alive_lifecycle(self, vm):
        cf = counting_thread_class("t/Alive", 5)
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Alive"))
        assert vm.call_virtual(thread, "isAlive", "()Z") == 0
        vm.call_virtual(thread, "start", "()V")
        assert vm.call_virtual(thread, "isAlive", "()Z") == 1
        vm.scheduler.run()
        assert vm.call_virtual(thread, "isAlive", "()Z") == 0

    def test_sleep_delays_completion(self, vm):
        def build(ca):
            with ca.method("run", "()V") as m:
                m.emit(ICONST, 500)
                m.emit(INVOKESTATIC, "java/lang/Thread", "sleep", "(I)V")
                m.emit(ALOAD, 0)
                m.emit(ICONST, 1)
                m.emit(PUTFIELD, "t/Sleeper", "n")
                m.emit(RETURN)

        cf = assemble("t/Sleeper", build, super_name="java/lang/Thread",
                      fields=[("n", "I")])
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Sleeper"))
        vm.call_virtual(thread, "start", "()V")
        start_tick = vm.scheduler.tick
        vm.scheduler.run()
        assert field_of(vm, thread, "n") == 1
        assert vm.scheduler.tick - start_tick >= 500


class TestPriorities:
    def test_higher_priority_runs_first(self, vm):
        """With no yields, the higher-priority thread finishes first."""
        cf = counting_thread_class("t/Prio", 50, do_yield=False)
        order_cf = assemble(
            "t/Order", None, fields=[("first", "I", PUBLIC_STATIC)]
        )

        def build_recorder(ca):
            with ca.method("run", "()V") as m:
                # if Order.first == 0: Order.first = marker
                m.emit(GETSTATIC, "t/Order", "first")
                done = m.label()
                m.emit("ifne", done)
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "t/Rec", "marker")
                m.emit(PUTSTATIC, "t/Order", "first")
                m.mark(done)
                m.emit(RETURN)

        recorder = assemble("t/Rec", build_recorder,
                            super_name="java/lang/Thread",
                            fields=[("marker", "I")])
        loader = load_classes(vm, [cf, order_cf, recorder], "threads")
        rec_class = loader.load("t/Rec")
        low = vm.construct(rec_class)
        low.fields[rec_class.field_slots["marker"]] = 1
        high = vm.construct(rec_class)
        high.fields[rec_class.field_slots["marker"]] = 2
        vm.call_virtual(low, "start", "()V")
        vm.call_virtual(high, "start", "()V")
        vm.call_virtual(low, "setPriority", "(I)V", [2])
        vm.call_virtual(high, "setPriority", "(I)V", [9])
        vm.scheduler.run()
        order_class = loader.load("t/Order")
        assert order_class.static_slots[order_class.static_index["first"]] == 2

    def test_priority_clamped(self, vm):
        cf = counting_thread_class("t/Clamp", 1)
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Clamp"))
        vm.call_virtual(thread, "start", "()V")
        vm.call_virtual(thread, "setPriority", "(I)V", [99])
        assert vm.call_virtual(thread, "getPriority", "()I") == 10
        vm.call_virtual(thread, "setPriority", "(I)V", [-5])
        assert vm.call_virtual(thread, "getPriority", "()I") == 1
        vm.scheduler.run()


class TestStopSuspend:
    def test_stop_kills_thread(self, vm):
        cf = counting_thread_class("t/Stopme", 1_000_000)
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Stopme"))
        vm.call_virtual(thread, "start", "()V")
        vm.scheduler.run_for(2000)  # let it make some progress
        vm.call_virtual(thread, "stop", "()V")
        vm.scheduler.run()
        context = thread.native
        assert context.state == "TERMINATED"
        assert context.uncaught is not None
        assert context.uncaught.jclass.name == "java/lang/ThreadDeath"
        assert field_of(vm, thread, "n") < 1_000_000

    def test_suspend_pauses_resume_continues(self, vm):
        cf = counting_thread_class("t/Susp", 10_000)
        loader = load_classes(vm, [cf], "threads")
        thread = vm.construct(loader.load("t/Susp"))
        vm.call_virtual(thread, "start", "()V")
        vm.scheduler.run_for(500)
        vm.call_virtual(thread, "suspend", "()V")
        progress = field_of(vm, thread, "n")
        # scheduler returns because the only live thread is suspended
        vm.scheduler.run_for(5000)
        assert field_of(vm, thread, "n") == progress
        vm.call_virtual(thread, "resume", "()V")
        vm.scheduler.run_for(200_000)
        assert field_of(vm, thread, "n") > progress

    def test_join_waits_for_target(self, vm):
        def build(ca):
            with ca.method("run", "()V") as m:
                m.emit(ALOAD, 0)
                m.emit(GETFIELD, "t/Joiner", "target")
                m.emit("invokevirtual", "java/lang/Thread", "join", "()V")
                m.emit(ALOAD, 0)
                m.emit(ICONST, 1)
                m.emit(PUTFIELD, "t/Joiner", "done")
                m.emit(RETURN)

        joiner_cf = assemble(
            "t/Joiner", build, super_name="java/lang/Thread",
            fields=[("target", "Ljava/lang/Thread;"), ("done", "I")],
        )
        worker_cf = counting_thread_class("t/Worked", 200)
        loader = load_classes(vm, [joiner_cf, worker_cf], "threads")
        worker = vm.construct(loader.load("t/Worked"))
        joiner_class = loader.load("t/Joiner")
        joiner = vm.construct(joiner_class)
        joiner.fields[joiner_class.field_slots["target"]] = worker
        vm.call_virtual(worker, "start", "()V")
        vm.call_virtual(joiner, "start", "()V")
        vm.scheduler.run()
        assert field_of(vm, joiner, "done") == 1
        assert field_of(vm, worker, "n") == 200


class TestDeadlock:
    def test_self_deadlock_detected(self, vm):
        """A thread blocking on a monitor nobody will release."""
        lock_holder_cf = counting_thread_class("t/Holder", 1, do_yield=False)

        def build(ca):
            with ca.method("run", "()V") as m:
                # enter the lock twice from two different threads: the
                # second blocks forever.
                m.emit(GETSTATIC, "t/Blocker", "lock")
                m.emit(MONITORENTER)
                m.emit(ICONST, 1_000_000)
                m.emit(INVOKESTATIC, "java/lang/Thread", "sleep", "(I)V")
                m.emit(GETSTATIC, "t/Blocker", "lock")
                m.emit(MONITOREXIT)
                m.emit(RETURN)

        blocker_cf = assemble(
            "t/Blocker", build, super_name="java/lang/Thread",
            fields=[("lock", "Ljava/lang/Object;", PUBLIC_STATIC)],
        )
        loader = load_classes(vm, [lock_holder_cf, blocker_cf], "threads")
        blocker_class = loader.load("t/Blocker")
        lock = vm.heap.new_object(vm.object_class)
        blocker_class.static_slots[blocker_class.static_index["lock"]] = lock
        # Host grabs the lock on a fake thread; guest blocks forever.
        from repro.jvm.threads import ThreadContext

        host_thread = ThreadContext("host-holder")
        assert vm.monitors.try_enter(lock, host_thread)
        guest = vm.construct(blocker_class)
        vm.call_virtual(guest, "start", "()V")
        with pytest.raises(DeadlockError):
            vm.scheduler.run(max_steps=100_000)

    def test_current_thread_identity(self, vm):
        def build(ca):
            with ca.method("self", "()Ljava/lang/Thread;",
                           PUBLIC_STATIC) as m:
                m.emit(INVOKESTATIC, "java/lang/Thread", "currentThread",
                       "()Ljava/lang/Thread;")
                m.emit("areturn")

        cf = assemble("t/Current", build)
        loader = load_classes(vm, [cf], "threads")
        result = vm.call_static(loader.load("t/Current"), "self",
                                "()Ljava/lang/Thread;", [])
        assert result is not None
        assert result.jclass.name == "java/lang/Thread"
