"""Chaos-suite fixtures: every test leaves the hooks disarmed."""

import pytest

from repro.testing import chaos as chaos_module


@pytest.fixture()
def chaos():
    """The chaos module, with guaranteed uninstall after the test (an
    armed hook leaking into the next test would fault healthy code)."""
    try:
        yield chaos_module
    finally:
        chaos_module.uninstall()


@pytest.fixture()
def fleet():
    """The fleet-coordinator factory (shared with tests/fleet)."""
    from repro.fleet import FleetCoordinator
    from tests.fleet.conftest import REGISTRY

    made = []

    def factory(**kwargs):
        kwargs.setdefault("heartbeat_interval", 0.1)
        kwargs.setdefault("ping_deadline", 0.1)
        coordinator = FleetCoordinator(REGISTRY, **kwargs).start()
        made.append(coordinator)
        return coordinator

    try:
        yield factory
    finally:
        for coordinator in made:
            coordinator.stop()
