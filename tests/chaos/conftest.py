"""Chaos-suite fixtures: every test leaves the hooks disarmed."""

import pytest

from repro.testing import chaos as chaos_module


@pytest.fixture()
def chaos():
    """The chaos module, with guaranteed uninstall after the test (an
    armed hook leaking into the next test would fault healthy code)."""
    try:
        yield chaos_module
    finally:
        chaos_module.uninstall()
