"""The fault-injection harness itself: knobs, scope, wire faults and
env-var installation.  The end-to-end matrix lives in
``test_chaos_matrix.py``; this file pins the harness mechanics."""

import os
import socket

import pytest

from repro.ipc import lrmi, wire
from repro.testing.chaos import (
    CRASH_STATUS,
    KNOWN_POINTS,
    ChaosConfig,
    ChaosError,
    install,
    install_from_env,
    uninstall,
)
from repro.web import prefork


class TestInstallation:
    def test_install_arms_every_target_layer(self, chaos):
        config = ChaosConfig(wire_delay_s=0.01)
        assert install(config) is config
        assert wire._chaos is config
        assert lrmi._chaos is config
        assert prefork._chaos is config
        assert chaos.active() is config
        uninstall()
        assert wire._chaos is None
        assert lrmi._chaos is None
        assert prefork._chaos is None

    def test_env_install_reads_every_knob(self, chaos):
        config = install_from_env({
            "JK_CHAOS_CRASH_AT": "wire.send, lrmi.host.dispatch",
            "JK_CHAOS_CRASH_AFTER": "3",
            "JK_CHAOS_WIRE_DELAY_S": "0.5",
            "JK_CHAOS_PARTIAL_WRITE": "0.1",
            "JK_CHAOS_DROP_RATE": "0.2",
            "JK_CHAOS_SEED": "7",
            "JK_CHAOS_SCOPE": "child",
        })
        assert config.crash_at == {"wire.send", "lrmi.host.dispatch"}
        assert config.crash_after == 3
        assert config.wire_delay_s == 0.5
        assert config.partial_write == 0.1
        assert config.drop_rate == 0.2
        assert config.scope == "child"
        assert wire._chaos is config

    def test_env_install_with_no_knobs_is_inert(self, chaos):
        assert install_from_env({}) is None
        assert wire._chaos is None

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(scope="sideways")

    def test_known_points_cover_the_matrix(self):
        assert "prefork.worker.message" in KNOWN_POINTS
        assert "lrmi.host.dispatch" in KNOWN_POINTS
        assert "wire.send" in KNOWN_POINTS
        assert "fleet.host.invoke" in KNOWN_POINTS
        assert CRASH_STATUS == 137

    def test_env_install_reads_partition_pairs(self, chaos):
        config = install_from_env({
            "JK_CHAOS_PARTITION": "coordinator|h1,h2|h3",
            "JK_CHAOS_HEARTBEAT_LOSS": "coordinator|h2",
        })
        assert config.partitioned("coordinator", "h1")
        assert config.partitioned("h1", "coordinator")  # symmetric
        assert config.partitioned("h2", "h3")
        assert not config.partitioned("coordinator", "h2")
        assert config.heartbeat_lost("coordinator", "h2")
        assert not config.heartbeat_lost("coordinator", "h1")

    def test_partition_knob_alone_arms_the_hooks(self, chaos):
        from repro.fleet import host as fleet_host
        from repro.ipc import ntrpc

        config = install_from_env({"JK_CHAOS_PARTITION": "a|b"})
        assert config is not None
        assert ntrpc._chaos is config
        assert fleet_host._chaos is config


class TestPartitionModel:
    def test_partition_and_heal_are_dynamic(self, chaos):
        config = ChaosConfig()
        assert not config.partitioned("a", "b")
        config.partition("a", "b")
        assert config.partitioned("a", "b")
        assert config.injected["partition"] == 1
        config.heal("a", "b")
        assert not config.partitioned("a", "b")

    def test_heal_all_clears_every_pair(self, chaos):
        config = ChaosConfig(partitions=(("a", "b"), ("c", "d")))
        config.lose_heartbeats("a", "c")
        config.heal_all()
        assert not config.partitioned("a", "b")
        assert not config.partitioned("c", "d")
        assert not config.heartbeat_lost("a", "c")

    def test_heartbeat_loss_is_separate_from_partition(self, chaos):
        config = ChaosConfig()
        config.lose_heartbeats("a", "b")
        assert config.heartbeat_lost("a", "b")
        assert not config.partitioned("a", "b")
        config.restore_heartbeats("a", "b")
        assert not config.heartbeat_lost("a", "b")

    def test_unnamed_endpoints_are_never_partitioned(self, chaos):
        """An RpcClient without endpoint names ignores the partition
        model entirely — partitioning is opt-in per edge."""
        from repro.ipc.ntrpc import RpcClient, RpcServer
        import threading

        config = ChaosConfig(partitions=(("coordinator", "h1"),))
        install(config)
        server = RpcServer(handlers={"echo": lambda p: p})
        ready = threading.Event()
        threading.Thread(target=server.serve, args=(ready,),
                         daemon=True).start()
        assert ready.wait(5.0)
        try:
            with RpcClient(server.path) as client:
                assert client.call("echo", b"x") == b"x"
        finally:
            server.stop()


class TestScope:
    def test_parent_scope_never_fires_in_install_process(self):
        config = ChaosConfig(crash_at=("wire.send",), scope="child")
        # We ARE the install (parent) process: the crash must not fire.
        config.crash_point("wire.send")
        assert config.injected["crash"] == 0

    def test_unarmed_point_never_fires(self):
        config = ChaosConfig(crash_at=("lrmi.host.dispatch",))
        config.crash_point("prefork.worker.stats")
        assert config.injected["crash"] == 0

    def test_crash_in_child_scope_fires_in_fork(self):
        config = ChaosConfig(crash_at=("wire.send",), scope="child")
        pid = os.fork()
        if pid == 0:
            config.crash_point("wire.send")
            os._exit(0)  # reached only if the point failed to fire
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == CRASH_STATUS

    def test_crash_after_spends_a_pass_budget(self):
        config = ChaosConfig(crash_at=("wire.send",), crash_after=2,
                             scope="child")
        pid = os.fork()
        if pid == 0:
            config.crash_point("wire.send")  # pass 1
            config.crash_point("wire.send")  # pass 2
            os.write(2, b"")  # still alive here
            config.crash_point("wire.send")  # pass 3: boom
            os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == CRASH_STATUS


class TestWireFaults:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(2.0)
        right.settimeout(2.0)
        return left, right

    def test_delay_then_delivery(self, chaos):
        config = install(ChaosConfig(wire_delay_s=0.05))
        left, right = self._pair()
        try:
            wire.send_frame(left, b"payload")
            assert wire.recv_frame(right) == b"payload"
            assert config.injected["delay"] == 1
        finally:
            left.close()
            right.close()

    def test_drop_closes_and_raises_typed(self, chaos):
        install(ChaosConfig(drop_rate=1.0))
        left, right = self._pair()
        try:
            with pytest.raises(ChaosError):
                wire.send_frame(left, b"payload")
            with pytest.raises(wire.WireError):
                wire.recv_frame(right)  # peer sees a clean EOF error
        finally:
            right.close()

    def test_partial_write_desynchronizes_then_raises(self, chaos):
        config = install(ChaosConfig(partial_write=1.0))
        left, right = self._pair()
        try:
            with pytest.raises(ChaosError):
                wire.send_frame(left, b"x" * 64)
            # The peer got a prefix only: the stream errors, not hangs.
            with pytest.raises(wire.WireError):
                wire.recv_frame(right)
            assert config.injected["partial"] == 1
        finally:
            right.close()

    def test_seeded_rolls_are_deterministic(self):
        outcomes = []
        for _ in range(2):
            config = ChaosConfig(drop_rate=0.5, seed=42)
            left, right = self._pair()
            run = []
            for _ in range(20):
                try:
                    config.before_send(left, b"d")
                    run.append("ok")
                except ChaosError:
                    left, right = self._pair()  # dropped: re-pair
                    run.append("drop")
            outcomes.append(run)
            left.close()
            right.close()
        assert outcomes[0] == outcomes[1]
        assert "drop" in outcomes[0] and "ok" in outcomes[0]
