"""The fault-injection matrix (the robustness acceptance gate).

Every scenario injects a fault into the ipc/prefork layers and asserts
*totality*: the client observes a typed error or a successfully retried
call within its deadline — never a hang — and the fleet's accounting
still reconciles afterwards.

Scenarios:

* worker crash mid-pipeline — a prefork worker dies between receiving a
  control message and acting on it; the master replaces it and serving
  continues;
* host crash mid-LRMI — a domain host dies after executing a call but
  before replying; the caller's bounded retry bridges the restart;
* wire delay beyond the deadline — every framed send stalls; calls end
  in a typed error at the deadline, not a hang;
* send faults (drop / partial write) — transport failures surface as
  the usual typed errors;
* shed under burst — an admission-bounded server answers a burst with
  clean 200s and parse-boundary 503s (Retry-After), nothing garbled;
* quota kill — an over-budget tenant is throttled, then cleanly
  terminated, while its neighbour keeps being served and every request
  remains accounted for.
"""

import threading
import time

import pytest

from repro.core import (
    Capability,
    Domain,
    DomainUnavailableException,
    Remote,
    RevokedException,
    get_accountant,
)
from repro.core.quota import HARD, QuotaSpec
from repro.ipc import DomainHostProcess, connect
from repro.testing.chaos import ChaosConfig, install, uninstall
from repro.web import (
    JKernelWebServer,
    PreforkServer,
    Servlet,
    ServletResponse,
    fetch_once,
)

pytestmark = pytest.mark.timeout(90)


class IEcho(Remote):
    def echo(self, text): ...


class EchoImpl(IEcho):
    def echo(self, text):
        return text


def _echo_setup():
    domain = Domain("chaos-host")
    return {"echo": domain.run(
        lambda: Capability.create(EchoImpl(), label="echo"))}


def _wait(predicate, timeout=8.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


class TestWorkerCrashMidPipeline:
    def test_master_replaces_crashed_workers_and_serving_continues(
            self, chaos):
        def app():
            from repro.web import NativeHttpServer

            server = NativeHttpServer(workers=1)
            server.documents.put("/doc", b"alive")
            return server

        install(ChaosConfig(crash_at=("prefork.worker.message",),
                            scope="child"))
        with PreforkServer(app, workers=2) as master:
            for _ in range(5):
                assert fetch_once("127.0.0.1", master.port,
                                  "/doc").status == 200
            # A STATS poll walks every worker into the crash point.
            stats = master.stats()
            assert all(report.get("stale") for report in stats["workers"])
            # Future forks must come up clean.
            uninstall()
            assert _wait(lambda: master.stats()["crash_replacements"] >= 2)
            for _ in range(5):
                assert fetch_once("127.0.0.1", master.port,
                                  "/doc").status == 200
            final = master.stats()
            assert final["worker_count"] == 2
            assert not any(r.get("stale") for r in final["workers"])
            # Reconciliation: only post-crash requests are observable
            # live (the crashed workers' last reports were retained),
            # and the total never goes backwards.
            assert final["requests_served"] >= 5


class TestHostCrashMidCall:
    def test_bounded_retry_bridges_a_host_restart(self, chaos):
        install(ChaosConfig(crash_at=("lrmi.host.dispatch",),
                            scope="child"))
        host = DomainHostProcess(_echo_setup, name="crashy").start()
        client = connect(host, retries=40, backoff=0.05,
                         idempotent=("echo",))
        try:
            proxy = client.lookup("echo")

            def respawn():
                _wait(lambda: not host.alive(), timeout=5.0)
                uninstall()     # the replacement forks clean
                host.start()    # restart-in-place on the same path

            spawner = threading.Thread(target=respawn)
            spawner.start()
            # The dispatch executes, then the host dies pre-reply.  The
            # retry loop dials through the outage until it reaches the
            # respawned host — which correctly refuses the old export id
            # (domain death revokes its capabilities) instead of hanging.
            with pytest.raises(RevokedException):
                proxy.echo("survivor")
            spawner.join()
            # A fresh lookup on the restarted host serves again.
            assert client.lookup("echo").echo("second") == "second"
        finally:
            client.close()
            host.stop()

    def test_without_retry_the_crash_is_a_typed_error(self, chaos):
        install(ChaosConfig(crash_at=("lrmi.host.dispatch",),
                            scope="child"))
        host = DomainHostProcess(_echo_setup, name="crashy2").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            start = time.monotonic()
            with pytest.raises(DomainUnavailableException):
                proxy.echo("doomed")
            assert time.monotonic() - start < 5.0
        finally:
            client.close()
            host.stop()


class TestHostCrashMidGrant:
    def test_killed_host_mid_grant_is_typed_and_leaks_no_region(
            self, chaos, monkeypatch):
        """A payload large enough to ride the shared-memory bulk ring is
        granted to a host that dies before replying: the caller gets a
        typed error within its deadline (never a hang), and after the
        client closes, no shared-memory segment survives — both ends
        unlink by name, idempotently, so the survivor reclaims the
        region the dead host can no longer release."""
        import os as _os

        shm_dir = "/dev/shm"
        names_before = (set(_os.listdir(shm_dir))
                        if _os.path.isdir(shm_dir) else None)
        from repro.ipc import lrmi
        monkeypatch.setattr(lrmi, "SHM_THRESHOLD", 2048)  # pre-fork
        install(ChaosConfig(crash_at=("lrmi.host.dispatch",),
                            scope="child"))
        host = DomainHostProcess(_echo_setup, name="grant-crash").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            big = b"g" * 5000  # over SHM_THRESHOLD: travels as a grant
            start = time.monotonic()
            with pytest.raises(DomainUnavailableException):
                proxy.echo(big)
            assert time.monotonic() - start < 5.0
        finally:
            client.close()
            host.stop()
        uninstall()
        assert _wait(lambda: not host.alive(), timeout=5.0)
        if names_before is not None:
            leaked = {name for name in set(_os.listdir(shm_dir)) - names_before
                      if name.startswith("psm_")}
            assert not leaked, f"shared-memory segments leaked: {leaked}"


class ISealer(Remote):
    def make_region(self, size): ...


class SealerImpl(ISealer):
    def make_region(self, size):
        from repro.core import seal

        return seal(b"r" * size)


def _sealer_setup():
    domain = Domain("sealer-host")
    return {"sealer": domain.run(
        lambda: Capability.create(SealerImpl(), label="sealer"))}


class TestHostCrashMidSeal:
    def test_sigkill_between_segment_and_grant_leaks_no_region(
            self, chaos):
        """The worst window for region lifecycle discipline: the host
        dies AFTER creating a region segment but BEFORE any grant
        leaves — no peer knows the name, no finalizer will ever run.
        The caller gets a typed error within its deadline, and the
        supervisor's ``purge_pid`` half of the both-end unlink reclaims
        the orphan by its deterministic ``jkr<pid>g<seq>`` name when the
        host is stopped."""
        import os as _os
        import time as _time

        install(ChaosConfig(crash_at=("regions.seal",), scope="child"))
        host = DomainHostProcess(_sealer_setup, name="seal-crash").start()
        client = connect(host)
        host_pid = host.pid
        try:
            proxy = client.lookup("sealer")
            start = _time.monotonic()
            with pytest.raises(DomainUnavailableException):
                proxy.make_region(65536)
            assert _time.monotonic() - start < 5.0
        finally:
            client.close()
            host.stop()  # purges the dead host's regions by name
        uninstall()
        assert _wait(lambda: not host.alive(), timeout=5.0)
        shm_dir = "/dev/shm"
        if _os.path.isdir(shm_dir):
            leaked = [name for name in _os.listdir(shm_dir)
                      if name.startswith(f"jkr{host_pid}g")]
            assert not leaked, f"region segments leaked: {leaked}"


class TestWireDelayBeyondDeadline:
    def test_call_ends_in_typed_error_at_the_deadline(self, chaos):
        host = DomainHostProcess(_echo_setup, name="slowwire").start()
        client = connect(host, call_deadline=0.25)
        try:
            proxy = client.lookup("echo")  # healthy warm-up
            assert proxy.echo("warm") == "warm"
            install(ChaosConfig(wire_delay_s=0.6))
            start = time.monotonic()
            with pytest.raises(DomainUnavailableException):
                proxy.echo("late")
            assert time.monotonic() - start < 5.0
        finally:
            uninstall()
            client.close()
            host.stop()

    @pytest.mark.parametrize("fault", ["drop", "partial"])
    def test_send_faults_surface_as_typed_errors(self, chaos, fault):
        host = DomainHostProcess(_echo_setup, name=f"wire-{fault}").start()
        client = connect(host)
        try:
            proxy = client.lookup("echo")
            assert proxy.echo("warm") == "warm"
            install(ChaosConfig(drop_rate=1.0) if fault == "drop"
                    else ChaosConfig(partial_write=1.0))
            with pytest.raises(DomainUnavailableException):
                proxy.echo("never")
            uninstall()
            # A fresh connection serves again: the failure was contained
            # to the faulted transport, not the client.
            assert proxy.echo("recovered") == "recovered"
        finally:
            uninstall()
            client.close()
            host.stop()


class _SlowServlet(Servlet):
    def service(self, request):
        time.sleep(0.02)
        return ServletResponse(200, {"Content-Type": "text/plain"}, b"ok")


class _QuickServlet(Servlet):
    def service(self, request):
        return ServletResponse(200, {"Content-Type": "text/plain"},
                               b"quick")


class TestShedUnderBurst:
    def test_burst_yields_clean_200s_and_503s_only(self):
        from repro.web.control import AdmissionController

        jk = JKernelWebServer(
            workers=1,
            # Pooled dispatch: the loop keeps admitting while the pool
            # works, so the in-flight gauge actually sees the burst.
            bridge_inline=False,
            admission=AdmissionController(max_inflight=4,
                                          shed_threshold=0.25),
        )
        jk.install_servlet("/slow", _SlowServlet)
        statuses = []
        lock = threading.Lock()

        def hammer():
            for _ in range(10):
                try:
                    response = fetch_once("127.0.0.1", jk.port,
                                          "/servlet/slow/x")
                except OSError:
                    continue
                with lock:
                    statuses.append(
                        (response.status,
                         response.headers.get("retry-after"))
                    )

        with jk:
            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = jk.stats()
        codes = {status for status, _ in statuses}
        assert codes <= {200, 503}
        assert 200 in codes
        sheds = [s for s in statuses if s[0] == 503]
        assert sheds, "the burst never tripped the shed path"
        assert all(retry == "1" for _, retry in sheds)
        assert stats["admission"]["shed"] >= len(sheds)
        assert stats["admission"]["in_flight"] == 0


class TestQuotaKill:
    def test_over_budget_tenant_is_terminated_neighbour_unharmed(self):
        jk = JKernelWebServer(
            workers=1,
            quotas={"/greedy": QuotaSpec(requests_per_sec=30,
                                         soft_fraction=0.5)},
        )
        jk.install_servlet("/greedy", _QuickServlet)
        jk.install_servlet("/meek", _QuickServlet)
        retired_before = get_accountant().retired_totals()["requests"]

        with jk:
            served = 0
            deadline = time.monotonic() + 10.0
            while not jk.quota_kills and time.monotonic() < deadline:
                response = fetch_once("127.0.0.1", jk.port,
                                      "/servlet/greedy/x")
                if response.status == 200:
                    served += 1
            assert _wait(lambda: jk.quota_kills, timeout=5.0)
            prefix, breached, _at = jk.quota_kills[0]
            assert prefix == "/greedy"
            assert breached[0] == "requests_per_sec"
            assert jk.quota.cell("/greedy").state == HARD
            # Teardown went through the clean path: unrouted, domain
            # terminated, account folded.
            assert _wait(lambda: "/greedy" not in jk.registrations(),
                         timeout=5.0)
            after = fetch_once("127.0.0.1", jk.port, "/servlet/greedy/x")
            assert after.status in (404, 503)
            # The neighbour never noticed.
            meek = fetch_once("127.0.0.1", jk.port, "/servlet/meek/x")
            assert meek.status == 200 and meek.body == b"quick"

        # Accounting reconciles exactly: every 200 the greedy tenant's
        # clients saw is in the retired totals now (its domain died).
        assert _wait(
            lambda: get_accountant().retired_totals()["requests"]
            - retired_before >= served,
            timeout=5.0,
        )

    def test_soft_breach_throttles_before_the_wall(self):
        jk = JKernelWebServer(
            workers=1,
            quotas={"/warm": QuotaSpec(cpu_ticks=10**9,
                                       soft_fraction=1e-9)},
        )
        jk.install_servlet("/warm", _QuickServlet)
        with jk:
            assert fetch_once("127.0.0.1", jk.port,
                              "/servlet/warm/x").status == 200
            # One request's CPU charge crosses the (tiny) soft line.
            assert _wait(
                lambda: jk.quota.admit("/warm") == "soft", timeout=5.0)
            report = jk.stats()["quotas"]
            assert report["/warm"]["state"] == "soft"
            assert "/warm" in jk.quota.throttled_keys()
            # Still served: soft throttling is priority, not a wall.
            assert fetch_once("127.0.0.1", jk.port,
                              "/servlet/warm/x").status == 200
