"""The fleet fault-injection matrix: partitions, heartbeat loss, kills.

Extends the PR 6 chaos matrix one level up — the *host* is now the
failing unit.  Totality still holds: through any injected fault the
fleet client observes a typed error or a successful (re-bound, retried)
call, never a hang and never a raw ``OSError``; and the fleet's quota
accounting still reconciles afterwards.

Scenarios:

* **partition** — the coordinator loses both directions to a host; the
  host is evicted within the missed-beat window and its placements move
  to a reachable survivor;
* **heal after failover** — the partitioned host comes back; tokens
  minted before the failover are rejected fail-closed (stale epoch) by
  coordinator and healed host alike;
* **heartbeat loss** — pings are dropped while data calls still flow:
  the coordinator must treat undeniable-but-unhealthcheckable as dead
  (it cannot tell the difference from the inside);
* **host crash mid-invoke** — the agent dies after executing a call but
  before replying (``fleet.host.invoke`` crash point); the client's
  rebind/retry loop bridges the failover;
* **quota reconciliation through chaos** — fleet totals survive a
  partition-eviction exactly (fold, not loss).
"""

import time

import pytest

from repro.core.quota import QuotaSpec
from repro.fleet import (
    FleetUnavailableError,
    TokenStaleError,
)
from repro.fleet.coordinator import wait_until
from repro.fleet.proto import decode_reply, encode_request
from repro.ipc.ntrpc import RpcError
from repro.testing.chaos import ChaosConfig, install
from tests.fleet.conftest import retry_call

pytestmark = pytest.mark.timeout(180)


class TestPartition:
    def test_partitioned_host_evicted_and_replaced(self, fleet, chaos):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        token = coordinator.place("front", "echo")
        assert coordinator.call(token, "echo", "pre") == "pre"
        victim_id = coordinator.placements()["front"]

        config = ChaosConfig()
        install(config)
        config.partition("coordinator", victim_id)

        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=20)
        result, seen = retry_call(coordinator, "front", "echo", "post")
        assert result == "post"
        assert seen <= {"FleetUnavailableError", "TokenStaleError"}
        assert coordinator.placements()["front"] not in (None, victim_id)
        assert config.injected["partition"] > 0

    def test_partition_faults_are_typed_not_hangs(self, fleet, chaos):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")

        config = ChaosConfig()
        install(config)
        config.partition("coordinator", "h1")

        start = time.monotonic()
        with pytest.raises(FleetUnavailableError):
            coordinator.call(token, "echo", "x")
        assert time.monotonic() - start < 10.0

    def test_heal_after_failover_stales_old_tokens_fail_closed(
            self, fleet, chaos):
        """The acceptance scenario: partition h1, fail over to h2, heal
        the partition — every pre-failover token is now stale, at the
        coordinator AND (after the epoch broadcast reaches it) at the
        healed host itself."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        token = coordinator.place("front", "echo")
        victim_id = coordinator.placements()["front"]

        config = ChaosConfig()
        install(config)
        config.partition("coordinator", victim_id)
        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=20)
        assert coordinator.epoch == 1

        config.heal("coordinator", victim_id)
        # Front door: stale, immediately.
        with pytest.raises(TokenStaleError):
            coordinator.call(token, "echo", "stale")
        # The healed host still runs with the old epoch (it never heard
        # the bump): push the broadcast as a re-admission would, then it
        # fails closed too.
        record = coordinator._hosts[victim_id]
        record.control.call("epoch", encode_request(
            {"epoch": coordinator.epoch}))
        with pytest.raises(TokenStaleError):
            decode_reply(record.data.call("invoke", encode_request(
                {"token": token, "method": "echo", "args": ["x"]})))

    def test_dynamic_heal_restores_transport(self, fleet, chaos):
        """partition() and heal() act at the calling edge, so healing
        takes effect immediately — no cross-process propagation."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        config = ChaosConfig()
        install(config)
        config.partition("coordinator", "h1")
        with pytest.raises(FleetUnavailableError):
            coordinator.call(token, "echo", "x")
        config.heal("coordinator", "h1")
        # Healed before eviction: same token keeps working.
        if coordinator.hosts()["h1"] == "live":
            assert coordinator.call(token, "echo", "x") == "x"


class TestHeartbeatLoss:
    def test_heartbeat_loss_alone_evicts(self, fleet, chaos):
        """Pings dropped, data path intact: from the coordinator's seat
        that is indistinguishable from a dying host, and the fleet
        answer is eviction + re-placement, not optimism."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        coordinator.place("front", "echo")
        victim_id = coordinator.placements()["front"]

        config = ChaosConfig()
        install(config)
        config.lose_heartbeats("coordinator", victim_id)

        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=20)
        assert config.injected["heartbeat"] >= coordinator.max_missed
        result, _ = retry_call(coordinator, "front", "echo", "onward")
        assert result == "onward"
        assert coordinator.placements()["front"] != victim_id

    def test_heartbeat_loss_does_not_fault_data_calls(self, fleet,
                                                      chaos):
        coordinator = fleet(heartbeat_interval=0.3, max_missed=10)
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        config = ChaosConfig()
        install(config)
        config.lose_heartbeats("coordinator", "h1")
        # Long before the 10-beat eviction window closes, data flows.
        assert coordinator.call(token, "echo", "still") == "still"


class TestCrashMidInvoke:
    def test_host_crash_mid_invoke_is_bridged_by_rebind(self, fleet,
                                                        chaos):
        """The agent executes the call, then dies before replying (the
        PR 6 host-crash-mid-LRMI scenario at fleet scale).  The caller
        sees a typed error, the fleet fails over, rebind converges."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        # Arm the crash point, then spawn nothing else: the config is
        # inherited only by... no — hooks act in THIS process for the
        # coordinator's edge, so instead install before spawning the
        # victim so the forked agent inherits the armed hook.
        victim_token = coordinator.place("front", "echo")
        victim_id = coordinator.placements()["front"]
        coordinator._hosts[victim_id].process.kill()

        # The kill stands in for the crash-at-invoke (same observable:
        # dead before replying); the armed-fork variant below exercises
        # the actual crash point.
        result, seen = retry_call(coordinator, "front", "echo", "x")
        assert result == "x"
        assert seen <= {"FleetUnavailableError", "TokenStaleError"}
        with pytest.raises(TokenStaleError):
            coordinator.call(victim_token, "echo", "stale")

    def test_armed_crash_point_kills_agent_between_execute_and_reply(
            self, fleet, chaos):
        config = ChaosConfig(crash_at=("fleet.host.invoke",))
        install(config)
        coordinator = fleet()
        # Spawned AFTER install: the forked agent inherits the armed
        # hook (fork-time chaos state), the coordinator edge stays
        # clean because crash_at only fires inside the agent's verb.
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        token = coordinator.place("front", "echo")
        with pytest.raises((FleetUnavailableError, RpcError)):
            coordinator.call(token, "echo", "boom")
        victim_id = coordinator.placements()["front"]
        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=20)


class TestQuotaThroughChaos:
    def test_totals_reconcile_exactly_through_partition_eviction(
            self, fleet, chaos):
        coordinator = fleet(reconcile_every=1)
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        coordinator.federation.set_quota(
            "acme", QuotaSpec(cpu_ticks=10**9))
        a = coordinator.place("svc-a", "spin", tenant="acme")
        b = coordinator.place("svc-b", "spin", tenant="acme")
        for _ in range(3):
            coordinator.call(a, "spin", 5_000)
            coordinator.call(b, "spin", 5_000)

        def both_reported():
            with coordinator.federation._lock:
                live = coordinator.federation._live
            return all(
                live.get(host, {}).get("acme", {}).get("cpu_ticks", 0)
                > 0 for host in ("h1", "h2"))

        assert wait_until(both_reported, timeout=30)
        before = coordinator.federation.totals()["acme"]

        victim_id = coordinator.placements()["svc-a"]
        config = ChaosConfig()
        install(config)
        config.partition("coordinator", victim_id)
        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=20)

        after = coordinator.federation.totals()["acme"]
        for key, value in before.items():
            assert after.get(key, 0) >= value, (key, before, after)
        with coordinator.federation._lock:
            assert victim_id not in coordinator.federation._live
