"""HTTP parser fuzz/property tests (PR 4 satellite).

Pins the incremental :class:`RequestParser` to the seed's blocking
:func:`read_request`: any split of a valid byte stream across ``recv``
boundaries must parse identically to the one-shot parse, and any input
the reference rejects must raise :class:`HttpError` incrementally too —
at the server level, malformed input yields a 400 (or a clean close),
never a hang or a traceback.
"""

import io
import random
import socket

import pytest

from repro.web import (
    HttpError,
    NativeHttpServer,
    RequestParser,
    read_request,
)

METHODS = ["GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "patch"]
HEADER_NAMES = ["Host", "User-Agent", "Accept", "X-Thing", "COOKIE",
                "content-TYPE", "x-empty"]
LINE_ENDINGS = [b"\r\n", b"\n"]


def _reader(data):
    return io.BufferedReader(io.BytesIO(data))


def random_request_bytes(rng):
    """One valid request, exercising the grammar corners the seed parser
    accepts (2- or 3-token request lines, mixed line endings, colonless
    headers, optional bodies)."""
    method = rng.choice(METHODS)
    path = "/" + "/".join(
        "".join(rng.choices("abcdefghij0123456789._-", k=rng.randint(1, 8)))
        for _ in range(rng.randint(1, 3))
    )
    eol = rng.choice(LINE_ENDINGS)
    if rng.random() < 0.2:
        line = f"{method} {path}".encode("latin-1")
    else:
        version = rng.choice(["HTTP/1.0", "HTTP/1.1"])
        line = f"{method} {path} {version}".encode("latin-1")
    parts = [line + eol]
    body = b""
    if rng.random() < 0.4:
        body = bytes(rng.randrange(256) for _ in range(rng.randint(0, 64)))
        parts.append(
            f"Content-Length: {len(body)}".encode("latin-1")
            + rng.choice(LINE_ENDINGS)
        )
    for _ in range(rng.randint(0, 4)):
        name = rng.choice(HEADER_NAMES)
        if rng.random() < 0.1:
            parts.append(f"{name}-colonless".encode("latin-1")
                         + rng.choice(LINE_ENDINGS))
        else:
            value = "".join(rng.choices("abcdef ghi;=,", k=rng.randint(0, 12)))
            spacing = " " * rng.randint(0, 2)
            parts.append(f"{name}:{spacing}{value}".encode("latin-1")
                         + rng.choice(LINE_ENDINGS))
    parts.append(rng.choice(LINE_ENDINGS))
    parts.append(body)
    return b"".join(parts)


def random_chunks(rng, data):
    """Split ``data`` at random byte boundaries (including empty feeds)."""
    chunks = []
    position = 0
    while position < len(data):
        if rng.random() < 0.1:
            chunks.append(b"")
        step = rng.randint(1, max(1, min(17, len(data) - position)))
        chunks.append(data[position:position + step])
        position += step
    return chunks


def parse_incremental(data, chunks):
    parser = RequestParser()
    requests = []
    for chunk in chunks:
        parser.feed(chunk)
        while True:
            request = parser.next_request()
            if request is None:
                break
            requests.append(request)
    return parser, requests


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_streams_parse_identically(self, seed):
        rng = random.Random(seed)
        stream = b"".join(
            random_request_bytes(rng) for _ in range(rng.randint(1, 4))
        )
        reader = _reader(stream)
        expected = []
        while True:
            request = read_request(reader)
            if request is None:
                break
            expected.append(request)

        _, got = parse_incremental(stream, random_chunks(rng, stream))
        assert len(got) == len(expected)
        for ours, reference in zip(got, expected):
            assert ours.method == reference.method
            assert ours.path == reference.path
            assert ours.version == reference.version
            assert ours.headers == reference.headers
            assert ours.body == reference.body

    def test_every_split_point_of_one_request(self):
        data = (b"POST /exact HTTP/1.1\r\nContent-Length: 5\r\n"
                b"X-A: 1\r\n\r\nhello")
        reference = read_request(_reader(data))
        for split in range(len(data) + 1):
            _, got = parse_incremental(data, [data[:split], data[split:]])
            assert len(got) == 1, f"split at {split}"
            assert got[0] == reference, f"split at {split}"

    def test_byte_at_a_time(self):
        data = b"GET /bytewise HTTP/1.0\r\nX: y\r\n\r\n"
        reference = read_request(_reader(data))
        _, got = parse_incremental(data, [bytes([b]) for b in data])
        assert got == [reference]


MALFORMED = [
    b"\r\n\r\n",                                  # empty request line
    b"ONETOKEN\r\n\r\n",                          # one token
    b"GET /x HTTP/1.0 extra\r\n\r\n",             # four tokens
    b"   \r\n\r\n",                               # whitespace line
    b"POST /x HTTP/1.0\r\nContent-Length: abc\r\n\r\n",
    b"POST /x HTTP/1.0\r\nContent-Length: -1\r\n\r\n",
    b"POST /x HTTP/1.0\r\nContent-Length: 0x10\r\n\r\n",
    b"POST /x HTTP/1.0\r\nContent-Length: 1e3\r\n\r\n",
]


class TestMalformedVerdictsPinned:
    @pytest.mark.parametrize("data", MALFORMED)
    def test_both_parsers_reject(self, data):
        # Both parsers reject the whole corpus with HttpError —
        # including bad/negative Content-Length values, which the
        # blocking parser once turned into a ValueError leak or an
        # indefinite read(-1) hang.
        with pytest.raises(HttpError):
            read_request(_reader(data))
        parser = RequestParser()
        with pytest.raises(HttpError):
            parser.feed(data)
            while parser.next_request() is not None:
                pass

    def test_negative_content_length_rejected(self):
        parser = RequestParser()
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: -5\r\n\r\n")
        with pytest.raises(HttpError):
            parser.next_request()

    def test_oversized_request_line_rejected(self):
        parser = RequestParser(max_line=128)
        with pytest.raises(HttpError):
            parser.feed(b"GET /" + b"a" * 200)
            parser.next_request()

    def test_oversized_headers_rejected(self):
        parser = RequestParser(max_header_bytes=256)
        parser.feed(b"GET /x HTTP/1.0\r\n")
        with pytest.raises(HttpError):
            for index in range(64):
                parser.feed(f"X-{index}: {'v' * 32}\r\n".encode())
                parser.next_request()

    def test_oversized_body_is_413(self):
        parser = RequestParser(max_body=64)
        parser.feed(b"POST /x HTTP/1.0\r\nContent-Length: 100000\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            parser.next_request()
        assert excinfo.value.status == 413


@pytest.fixture()
def live_server():
    server = NativeHttpServer()
    server.documents.put("/ok", b"fine")
    server.start()
    yield server
    server.stop()


def _raw_exchange(port, payload, timeout=5.0):
    """Send raw bytes, return everything the server sends back."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as conn:
        conn.sendall(payload)
        conn.shutdown(socket.SHUT_WR)
        received = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return received
            received += chunk


class TestServerNeverHangsOnGarbage:
    @pytest.mark.parametrize("data", MALFORMED)
    def test_malformed_yields_400_and_close(self, live_server, data):
        raw = _raw_exchange(live_server.port, data)
        assert raw.startswith(b"HTTP/1.0 400")
        # and the server is still alive for the next client
        ok = _raw_exchange(live_server.port, b"GET /ok HTTP/1.0\r\n\r\n")
        assert b"200" in ok.split(b"\r\n", 1)[0]

    @pytest.mark.parametrize("seed", range(10))
    def test_random_binary_garbage(self, live_server, seed):
        rng = random.Random(1000 + seed)
        junk = bytes(rng.randrange(256) for _ in range(rng.randint(1, 512)))
        raw = _raw_exchange(live_server.port, junk)
        # Either a clean 400 or a clean close; never a hang (the
        # _raw_exchange timeout would trip) and never a traceback body.
        if raw:
            assert raw.startswith(b"HTTP/1.0 400") or b"200" in raw[:16]
        assert b"Traceback" not in raw

    def test_truncated_request_gets_400(self, live_server):
        raw = _raw_exchange(live_server.port,
                            b"POST /x HTTP/1.0\r\nContent-Length: 50\r\n\r\nab")
        assert raw.startswith(b"HTTP/1.0 400")

    def test_valid_split_oddly_still_served(self, live_server):
        with socket.create_connection(("127.0.0.1", live_server.port),
                                      timeout=5.0) as conn:
            for piece in (b"GET /o", b"k HTT", b"P/1.0\r", b"\n\r\n"):
                conn.sendall(piece)
            conn.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.split(b"\r\n", 1)[0] == b"HTTP/1.0 200 OK"
        assert data.endswith(b"fine")
