"""Keep-alive / pipelining conformance (PR 4 satellite).

Connection and Content-Length semantics for HTTP/1.0 vs 1.1, pipelined
requests answered strictly in order (including when a pooled extension
finishes out of order), half-close, and slow (byte-at-a-time) clients —
all under test deadlines so a regression shows up as a failure, not a
hang.
"""

import socket
import time

import pytest

from repro.web import (
    NativeHttpServer,
    Response,
    fetch_many,
    fetch_pipelined,
    format_request,
    read_response,
)

DEADLINE = 10.0


@pytest.fixture()
def server():
    server = NativeHttpServer()
    for index in range(8):
        server.documents.put(f"/doc{index}", f"body-{index}".encode())
    server.documents.put("/page", b"<html>page</html>")
    server.start()
    yield server
    server.stop()


def _connect(port):
    conn = socket.create_connection(("127.0.0.1", port), timeout=DEADLINE)
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


class TestConnectionSemantics:
    def test_http10_defaults_to_close(self, server):
        with _connect(server.port) as conn:
            conn.sendall(b"GET /page HTTP/1.0\r\n\r\n")
            reader = conn.makefile("rb")
            response = read_response(reader)
            assert response.status == 200
            assert response.headers["connection"] == "close"
            assert reader.read() == b""  # server closed

    def test_http10_keep_alive_header_keeps_open(self, server):
        responses = fetch_many("127.0.0.1", server.port,
                               ["/page", "/doc0", "/doc1"])
        assert [r.status for r in responses] == [200, 200, 200]
        assert all(r.headers["connection"] == "keep-alive"
                   for r in responses)

    def test_http11_defaults_to_keep_alive(self, server):
        with _connect(server.port) as conn:
            reader = conn.makefile("rb")
            for _ in range(2):
                conn.sendall(b"GET /page HTTP/1.1\r\n\r\n")
                response = read_response(reader)
                assert response.status == 200
            reader.close()

    def test_http11_response_status_line_echoes_version(self, server):
        with _connect(server.port) as conn:
            conn.sendall(b"GET /page HTTP/1.1\r\nConnection: close\r\n\r\n")
            raw = b""
            while b"\r\n" not in raw:
                raw += conn.recv(4096)
        assert raw.startswith(b"HTTP/1.1 200")

    def test_http11_connection_close_closes(self, server):
        with _connect(server.port) as conn:
            conn.sendall(b"GET /page HTTP/1.1\r\nConnection: close\r\n\r\n")
            reader = conn.makefile("rb")
            response = read_response(reader)
            assert response.status == 200
            assert response.headers["connection"] == "close"
            assert reader.read() == b""

    def test_content_length_exact(self, server):
        response = fetch_many("127.0.0.1", server.port, ["/page"])[0]
        assert int(response.headers["content-length"]) == len(response.body)
        assert response.body == b"<html>page</html>"

    def test_post_body_round_trip(self, server):
        seen = {}

        def echo(request):
            seen["body"] = request.body
            return Response(200, {}, request.body[::-1])

        server.add_extension("/echo", echo, inline=True)
        with _connect(server.port) as conn:
            payload = b"hello-world-123"
            conn.sendall(format_request("POST", "/echo/x", body=payload,
                                        keep_alive=False))
            response = read_response(conn.makefile("rb"))
        assert seen["body"] == payload
        assert response.body == payload[::-1]


class TestPipelining:
    def test_pipelined_documents_answered_in_order(self, server):
        paths = [f"/doc{index}" for index in range(8)] * 3
        responses = fetch_pipelined("127.0.0.1", server.port, paths)
        assert len(responses) == len(paths)
        for path, response in zip(paths, responses):
            assert response.status == 200
            assert response.body == f"body-{path[4:]}".encode()

    def test_slow_pooled_extension_does_not_reorder(self, server):
        def slow(request):
            time.sleep(0.15)
            return Response(200, {}, b"slow-done")

        server.add_extension("/slow", slow)  # pooled (default)
        paths = ["/slow/x", "/doc0", "/doc1", "/slow/y", "/doc2"]
        started = time.monotonic()
        responses = fetch_pipelined("127.0.0.1", server.port, paths)
        assert time.monotonic() - started < DEADLINE
        bodies = [r.body for r in responses]
        assert bodies == [b"slow-done", b"body-0", b"body-1",
                          b"slow-done", b"body-2"]

    def test_pipelined_after_close_is_dropped(self, server):
        burst = (b"GET /doc0 HTTP/1.0\r\nConnection: close\r\n\r\n"
                 b"GET /doc1 HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        with _connect(server.port) as conn:
            conn.sendall(burst)
            reader = conn.makefile("rb")
            first = read_response(reader)
            assert first.body == b"body-0"
            assert read_response(reader) is None  # connection closed

    def test_deep_pipeline_beyond_cap_all_answered(self):
        server = NativeHttpServer(max_pipeline=4)
        server.documents.put("/d", b"x" * 32)
        server.start()
        try:
            paths = ["/d"] * 40
            responses = fetch_pipelined("127.0.0.1", server.port, paths)
            assert len(responses) == 40
            assert all(r.status == 200 and r.body == b"x" * 32
                       for r in responses)
        finally:
            server.stop()


class TestHalfCloseAndSlowClients:
    def test_half_close_still_gets_response(self, server):
        with _connect(server.port) as conn:
            conn.sendall(b"GET /page HTTP/1.0\r\n\r\n")
            conn.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.split(b"\r\n", 1)[0] == b"HTTP/1.0 200 OK"
        assert data.endswith(b"<html>page</html>")

    def test_half_close_with_pipelined_requests_flushes_all(self, server):
        burst = b"".join(
            format_request("GET", f"/doc{index}", keep_alive=True)
            for index in range(4)
        )
        with _connect(server.port) as conn:
            conn.sendall(burst)
            conn.shutdown(socket.SHUT_WR)
            reader = conn.makefile("rb")
            bodies = []
            while True:
                response = read_response(reader)
                if response is None:
                    break
                bodies.append(response.body)
        assert bodies == [b"body-0", b"body-1", b"body-2", b"body-3"]

    def test_byte_at_a_time_client(self, server):
        request = b"GET /page HTTP/1.0\r\nX-Slow: yes\r\n\r\n"
        deadline = time.monotonic() + DEADLINE
        with _connect(server.port) as conn:
            for byte in request:
                conn.sendall(bytes([byte]))
                assert time.monotonic() < deadline
            response = read_response(conn.makefile("rb"))
        assert response.status == 200
        assert response.body == b"<html>page</html>"

    def test_slow_reader_gets_whole_large_response(self):
        server = NativeHttpServer(out_highwater=4096)
        big = bytes(range(256)) * 2048  # 512 KiB
        server.documents.put("/big", big, content_type="application/params")
        server.start()
        try:
            with _connect(server.port) as conn:
                conn.sendall(b"GET /big HTTP/1.0\r\n\r\n")
                received = b""
                deadline = time.monotonic() + DEADLINE * 3
                while time.monotonic() < deadline:
                    chunk = conn.recv(2048)
                    if not chunk:
                        break
                    received += chunk
                    time.sleep(0.001)  # dribble
            head, _, body = received.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.0 200")
            assert body == big
        finally:
            server.stop()


class TestBodyLimits:
    def test_body_over_buffer_bound_is_413_not_stall(self):
        server = NativeHttpServer(max_buffered=16384)
        server.documents.put("/d", b"d")
        server.start()
        try:
            body = b"x" * 100_000
            with _connect(server.port) as conn:
                conn.sendall(format_request("POST", "/d", body=body,
                                            keep_alive=False))
                response = read_response(conn.makefile("rb"))
            assert response.status == 413
        finally:
            server.stop()

    def test_body_within_bound_accepted(self, server):
        seen = {}

        def sink(request):
            seen["n"] = len(request.body)
            return Response(200, {}, b"got")

        server.add_extension("/sink", sink, inline=True)
        body = b"y" * 30_000  # under the default 64 KiB bound
        with _connect(server.port) as conn:
            conn.sendall(format_request("POST", "/sink/x", body=body,
                                        keep_alive=False))
            response = read_response(conn.makefile("rb"))
        assert response.status == 200
        assert seen["n"] == 30_000

    def test_max_body_knob_independent_of_buffer(self):
        server = NativeHttpServer(max_buffered=16384, max_body=262144)
        got = {}

        def sink(request):
            got["n"] = len(request.body)
            return Response(200, {}, b"big-ok")

        server.add_extension("/up", sink, inline=True)
        server.start()
        try:
            body = b"z" * 100_000
            with _connect(server.port) as conn:
                conn.sendall(format_request("POST", "/up/x", body=body,
                                            keep_alive=False))
                response = read_response(conn.makefile("rb"))
            assert response.status == 200
            assert got["n"] == 100_000
        finally:
            server.stop()

    def test_pipelined_amplification_bounded_by_out_highwater(self):
        server = NativeHttpServer(out_highwater=65536, max_pipeline=64)
        server.documents.put("/big", b"B" * 32768)
        server.start()
        try:
            paths = ["/big"] * 60  # ~2MB of responses from one tiny burst
            responses = fetch_pipelined("127.0.0.1", server.port, paths,
                                        timeout=30.0)
            assert len(responses) == 60
            assert all(len(r.body) == 32768 for r in responses)
            # the write buffer never ballooned past the high-water mark
            # by more than one response's worth
            for loop in server._loops:
                for conn in loop.connections:
                    assert len(conn.out) <= 65536 + 33000
        finally:
            server.stop()
