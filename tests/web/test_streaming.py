"""SCM_RIGHTS reply streaming, end to end through the web stack.

An out-of-process servlet's host writes HTTP responses straight to the
browser's socket — the master passes the client-socket fd with the LRMI
call.  These tests drive real HTTP over real sockets and verify the
stream happened (not just that a correct response arrived), plus the
ordering guards, keep-alive behaviour and the write primitive itself.
"""

import os
import socket
import threading
import time

import pytest

from repro.web import JKernelWebServer, Servlet, ServletResponse
from repro.web import streaming
from repro.web.client import fetch_many, fetch_once, fetch_pipelined
from repro.web.streaming import STREAMED, StreamWriteError, write_all_fd


def _body_servlet(payload):
    class BodyServlet(Servlet):
        def service(self, request):
            return ServletResponse(
                200, {"Content-Type": "application/octet-stream"}, payload
            )

    return BodyServlet


class _OfferSpy:
    """Records every stream offer the reactor publishes (master side)."""

    def __init__(self, monkeypatch):
        self.offers = []
        original = streaming.open_offer

        def spying(fd, version, keep_alive):
            offer = original(fd, version, keep_alive)
            self.offers.append(offer)
            return offer

        monkeypatch.setattr(streaming, "open_offer", spying)

    @property
    def streamed(self):
        return [offer for offer in self.offers if offer.streamed]


class TestStreamedReplies:
    def test_response_is_written_by_the_host(self, monkeypatch):
        """The HTTP bytes reach the client via the granted fd: the offer
        completes with the exact wire byte count, and the body is the
        servlet's — produced in another process."""
        payload = os.urandom(32 * 1024)
        spy = _OfferSpy(monkeypatch)
        with JKernelWebServer(workers=1) as jk:
            registration = jk.install_servlet_out_of_process(
                "/blob", _body_servlet(payload)
            )
            assert registration.stream_proxy is not None
            assert streaming.armed()
            response = fetch_once("127.0.0.1", jk.port, "/servlet/blob")
            assert response.status == 200
            assert response.body == payload
        completed = spy.streamed
        assert completed, "no offer was streamed"
        # the host reported writing a full HTTP response: status line +
        # headers + the body
        assert completed[0].granted
        assert completed[0].nbytes > len(payload)

    def test_keep_alive_connection_survives_streamed_replies(self,
                                                             monkeypatch):
        """Two sequential requests on ONE keep-alive connection, both
        streamed: the host formats for keep-alive and the reactor keeps
        the connection open."""
        payload = b"stream-keep-alive" * 100
        spy = _OfferSpy(monkeypatch)
        with JKernelWebServer(workers=1) as jk:
            jk.install_servlet_out_of_process("/ka", _body_servlet(payload))
            responses = fetch_many(
                "127.0.0.1", jk.port,
                ["/servlet/ka", "/servlet/ka"], version="HTTP/1.1",
            )
        assert [r.status for r in responses] == [200, 200]
        assert all(r.body == payload for r in responses)
        assert len(spy.streamed) == 2

    def test_pipelined_burst_keeps_response_order(self):
        """Back-to-back pipelined requests: the single-pending-slot guard
        refuses to stream when an earlier response is still owed, so the
        burst comes back complete and in order."""
        payload = b"pipelined-payload" * 64
        with JKernelWebServer(workers=1) as jk:
            jk.install_servlet_out_of_process("/pipe",
                                              _body_servlet(payload))
            responses = fetch_pipelined(
                "127.0.0.1", jk.port,
                ["/servlet/pipe"] * 4, version="HTTP/1.1",
            )
        assert [r.status for r in responses] == [200] * 4
        assert all(r.body == payload for r in responses)

    def test_inprocess_servlet_unaffected_while_armed(self, monkeypatch):
        """An armed server still answers in-process servlets through the
        marshalled path: the offer goes unclaimed and the normal
        formatter runs."""
        spy = _OfferSpy(monkeypatch)
        with JKernelWebServer(workers=1) as jk:
            jk.install_servlet_out_of_process(
                "/far", _body_servlet(b"far-body")
            )
            jk.install_servlet("/near", _body_servlet(b"near-body"))
            response = fetch_once("127.0.0.1", jk.port, "/servlet/near")
            assert response.status == 200
            assert response.body == b"near-body"
        unclaimed = [offer for offer in spy.offers
                     if not offer.granted and not offer.streamed]
        assert unclaimed, "in-process dispatch should leave offers unclaimed"

    def test_retire_disarms_streaming(self):
        with JKernelWebServer(workers=1) as jk:
            jk.install_servlet_out_of_process("/tmp",
                                              _body_servlet(b"x"))
            assert streaming.armed()
            jk.terminate_servlet("/tmp")
            assert not streaming.armed()

    def test_accounting_still_charges_streamed_requests(self):
        with JKernelWebServer(workers=1) as jk:
            registration = jk.install_servlet_out_of_process(
                "/acct", _body_servlet(b"charged")
            )
            for _ in range(3):
                assert fetch_once("127.0.0.1", jk.port,
                                  "/servlet/acct").status == 200
            deadline = time.monotonic() + 2.0
            while (registration.account.requests < 3
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            assert registration.account.requests == 3


class TestWriteAllFd:
    def test_writes_larger_than_socket_buffer(self):
        """A payload far beyond the kernel buffer drains fully through
        the EAGAIN/select loop while a reader consumes concurrently."""
        left, right = socket.socketpair()
        left.setblocking(False)  # the reactor's socket is non-blocking
        payload = os.urandom(2 * 1024 * 1024)
        received = bytearray()

        def drain():
            while len(received) < len(payload):
                chunk = right.recv(65536)
                if not chunk:
                    break
                received.extend(chunk)

        reader = threading.Thread(target=drain, daemon=True)
        reader.start()
        try:
            written = write_all_fd(left.fileno(), payload)
        finally:
            left.close()
            reader.join(5.0)
            right.close()
        assert written == len(payload)
        assert bytes(received) == payload

    def test_peer_close_raises_with_written_count(self):
        left, right = socket.socketpair()
        left.setblocking(False)
        right.close()
        with pytest.raises(StreamWriteError) as excinfo:
            write_all_fd(left.fileno(), b"x" * 4096)
        assert excinfo.value.written == 0
        left.close()

    def test_streamed_sentinel_is_singular(self):
        assert repr(STREAMED) == "<STREAMED>"
        assert streaming.claim() is None  # nothing open on this thread
