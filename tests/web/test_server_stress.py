"""Concurrency/soak battery for the serving layer (PR 4 satellite).

N concurrent keep-alive clients × mixed document/servlet traffic × a
revoker hot-swapping a servlet mid-flight: zero dropped or garbled
responses, per-domain request accounting reconciles with client-observed
counts, shutdown leaks neither threads nor sockets, and the shared
request counters stay exact under hammering (the seed's unsynchronized
``requests_served += 1`` regression test).

Client/request counts are env-tunable so CI can bound the soak:
``JK_STRESS_CLIENTS`` (default 8) and ``JK_STRESS_ROUNDS`` (default 40).
"""

import os
import socket
import threading
import time

import pytest

from repro.web import (
    JKernelWebServer,
    NativeHttpServer,
    Request,
    Servlet,
    format_request,
    read_response,
    run_mixed_load,
    text_response,
)

STRESS_CLIENTS = int(os.environ.get("JK_STRESS_CLIENTS", "8"))
STRESS_ROUNDS = int(os.environ.get("JK_STRESS_ROUNDS", "40"))


class StampServlet(Servlet):
    """Returns a recognizable body so garbling is detectable."""

    def __init__(self, stamp):
        self.stamp = stamp

    def service(self, request):
        return text_response(f"stamp:{self.stamp}:{request.path}")


class TestSharedCounters:
    def test_requests_served_exact_from_threads(self):
        server = NativeHttpServer()
        server.documents.put("/x", b"x")
        request = Request("GET", "/x")
        threads_n, per_thread = 8, 5_000

        def hammer():
            process = server.process
            for _ in range(per_thread):
                process(request)

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert server.requests_served == threads_n * per_thread

    def test_requests_served_exact_from_many_connections(self):
        server = NativeHttpServer()
        server.documents.put("/y", b"counted")
        server.start()
        try:
            per_client = 25

            def client():
                with socket.create_connection(
                        ("127.0.0.1", server.port), timeout=10.0) as conn:
                    reader = conn.makefile("rb")
                    request = format_request("GET", "/y", keep_alive=True)
                    for _ in range(per_client):
                        conn.sendall(request)
                        assert read_response(reader).status == 200
                    reader.close()

            threads = [threading.Thread(target=client)
                       for _ in range(STRESS_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert server.requests_served == STRESS_CLIENTS * per_client
        finally:
            server.stop()


class TestMixedSoakWithHotSwap:
    def test_soak_mixed_traffic_revoker_and_accounting(self):
        server = NativeHttpServer()
        server.documents.put("/static", b"static-body")
        jk = JKernelWebServer(server=server, mount="/servlet")
        jk.install_servlet("/steady", lambda: StampServlet("steady"))
        jk.install_servlet("/swap", lambda: StampServlet("swap"))
        steady_account = jk.registrations()["/steady"].account
        swap_account = jk.registrations()["/swap"].account
        steady_before = steady_account.requests
        swap_before = swap_account.requests
        server.start()

        swaps = 0
        stop_revoker = threading.Event()
        swap_accounts = {id(swap_account): swap_account}

        def revoker():
            nonlocal swaps
            while not stop_revoker.is_set():
                replacement = jk.replace_servlet(
                    "/swap", lambda: StampServlet("swap")
                )
                # each incarnation gets its own fresh account
                swap_accounts[id(replacement.account)] = replacement.account
                swaps += 1
                time.sleep(0.003)

        revoker_thread = threading.Thread(target=revoker, daemon=True)
        revoker_thread.start()
        try:
            report = run_mixed_load(
                "127.0.0.1", server.port,
                script=["/static", "/servlet/steady", "/servlet/swap",
                        "/static", "/servlet/steady"],
                clients=STRESS_CLIENTS, rounds=STRESS_ROUNDS,
                expectations={
                    "/static": lambda r: r.body == b"static-body",
                    "/servlet/steady":
                        lambda r: r.body == b"stamp:steady:/steady",
                    "/servlet/swap":
                        lambda r: r.body == b"stamp:swap:/swap",
                },
            )
        finally:
            stop_revoker.set()
            revoker_thread.join(5.0)
            server.stop()
            jk.stop()

        assert swaps > 0, "revoker never ran"
        assert report.errors == []
        assert report.dropped == 0
        assert report.garbled == []

        expected = STRESS_CLIENTS * STRESS_ROUNDS
        # non-swapped paths must be flawless
        assert report.statuses("/static") == {200: expected * 2}
        assert report.statuses("/servlet/steady") == {200: expected * 2}
        # the swapped path may see 503s in the drain window, nothing else
        swap_statuses = report.statuses("/servlet/swap")
        assert set(swap_statuses) <= {200, 503}
        assert sum(swap_statuses.values()) == expected

        # per-domain accounting reconciles with client-observed counts:
        # every 200 the clients saw was charged to exactly one servlet
        # incarnation's account (each replacement domain opens a fresh
        # account; retired accounts keep their final totals)
        assert steady_account.requests - steady_before == expected * 2
        swap_total = sum(account.requests
                         for account in swap_accounts.values())
        assert swap_total - swap_before == swap_statuses.get(200, 0)
        assert len(swap_accounts) > 1  # fresh account per incarnation

    def test_drain_lets_in_flight_request_finish(self):
        release = threading.Event()
        entered = threading.Event()

        class BlockingServlet(Servlet):
            def service(self, request):
                entered.set()
                release.wait(10.0)
                return text_response("finished")

        jk = JKernelWebServer()
        jk.install_servlet("/block", BlockingServlet)
        jk.server.start()
        try:
            result = {}

            def slow_call():
                with socket.create_connection(
                        ("127.0.0.1", jk.server.port), timeout=15.0) as conn:
                    conn.sendall(format_request(
                        "GET", "/servlet/block", keep_alive=False))
                    result["response"] = read_response(conn.makefile("rb"))

            caller = threading.Thread(target=slow_call)
            caller.start()
            assert entered.wait(5.0)

            terminated = {}

            def terminate():
                terminated["registration"] = jk.terminate_servlet("/block")

            terminator = threading.Thread(target=terminate)
            terminator.start()
            time.sleep(0.05)
            assert terminator.is_alive(), "terminate should wait on drain"
            release.set()
            terminator.join(10.0)
            caller.join(10.0)

            assert result["response"].status == 200
            assert result["response"].body == b"finished"
            registration = terminated["registration"]
            assert registration.domain.terminated
            assert registration.draining
        finally:
            jk.server.stop()
            jk.stop()


class TestPoolSaturation:
    def test_saturated_pool_answers_503_not_hang(self):
        server = NativeHttpServer(pool_workers=1, pool_capacity=2,
                                  max_pipeline=64)
        gate = threading.Event()

        def slow(request):
            gate.wait(5.0)
            from repro.web import Response
            return Response(200, {}, b"slow-ok")

        server.add_extension("/slow", slow)  # pooled
        server.start()
        try:
            burst = b"".join(
                format_request("GET", "/slow/x", keep_alive=True)
                for _ in range(12)
            )
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=15.0) as conn:
                conn.sendall(burst)
                time.sleep(0.3)  # let the pool saturate, then release
                gate.set()
                reader = conn.makefile("rb")
                statuses = [read_response(reader).status
                            for _ in range(12)]
            assert set(statuses) <= {200, 503}
            assert 503 in statuses, "pool never saturated"
            assert statuses.count(200) >= 1
            assert server.pool.stats()["rejected"] > 0
        finally:
            server.stop()


class TestCleanShutdown:
    def test_no_thread_or_socket_leaks(self):
        def server_thread_names():
            return sorted(
                thread.name for thread in threading.enumerate()
                if thread.name.startswith(("httpd-", "jws-"))
            )

        baseline = server_thread_names()
        jk = JKernelWebServer()
        jk.server.documents.put("/d", b"doc")
        jk.install_servlet("/s", lambda: StampServlet("s"))
        jk.server.start()

        report = run_mixed_load(
            "127.0.0.1", jk.server.port,
            script=["/d", "/servlet/s"],
            clients=4, rounds=10,
            expectations={"/d": lambda r: r.body == b"doc"},
        )
        assert report.dropped == 0 and report.errors == []

        assert len(server_thread_names()) > len(baseline)
        jk.server.stop()
        jk.stop()

        deadline = time.monotonic() + 10.0
        while server_thread_names() != baseline:
            assert time.monotonic() < deadline, (
                f"leaked threads: {server_thread_names()}"
            )
            time.sleep(0.05)
        assert jk.server.live_connections() == 0
        assert jk.server._listener.fileno() == -1  # listener closed

    def test_stop_is_idempotent_and_restartable_state(self):
        server = NativeHttpServer()
        server.documents.put("/a", b"a")
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op, not an error
        assert server.live_connections() == 0


class TestIdleReaping:
    def test_idle_connection_reaped_and_mid_request_gets_408(self):
        server = NativeHttpServer(idle_timeout=0.5)
        server.documents.put("/z", b"z")
        server.start()
        try:
            # idle socket with a partial request: reaped with a 408
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=30.0) as conn:
                conn.sendall(b"GET /z HTT")  # slow-loris stops here
                deadline = time.monotonic() + 25.0
                data = b""
                while time.monotonic() < deadline:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                assert data.startswith(b"HTTP/1.0 408"), data
            # a fully idle socket (no bytes at all) is just closed
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=30.0) as conn:
                assert conn.recv(4096) == b""  # server closed it
            assert server.stats()["idle_closed"] >= 2
            # and active clients were never affected
            assert server.live_connections() == 0
        finally:
            server.stop()

    def test_slow_pooled_handler_outlives_idle_timeout(self):
        from repro.web import Response

        server = NativeHttpServer(idle_timeout=0.4)

        def slow(request):
            time.sleep(1.0)  # well beyond idle_timeout
            return Response(200, {}, b"worth-the-wait")

        server.add_extension("/slow", slow)  # pooled
        server.start()
        try:
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10.0) as conn:
                conn.sendall(format_request("GET", "/slow/x",
                                            keep_alive=False))
                response = read_response(conn.makefile("rb"))
            assert response is not None and response.status == 200
            assert response.body == b"worth-the-wait"
        finally:
            server.stop()
