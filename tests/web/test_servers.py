"""The three servers: native (IIS), J-Kernel-extended, and interpreted JWS.

Includes the §4 protection stories: servlet crash isolation, hot
replacement, termination, and source upload.
"""

import pytest

from repro.core import Domain
from repro.web import (
    DocumentStore,
    JKernelWebServer,
    JWSServer,
    NativeHttpServer,
    Request,
    Servlet,
    ServletRequest,
    ServletResponse,
    fetch_once,
    measure_throughput,
    text_response,
)


class HelloServlet(Servlet):
    def service(self, request):
        return text_response(f"hello {request.path}")


class CrashServlet(Servlet):
    def service(self, request):
        raise RuntimeError("chart component failure")


class CounterServlet(Servlet):
    def __init__(self):
        self.count = 0

    def service(self, request):
        self.count += 1
        return text_response(str(self.count))


@pytest.fixture()
def iis():
    server = NativeHttpServer()
    server.documents.put("/index", b"<html>home</html>")
    server.documents.put("/data", b"payload")
    server.start()
    yield server
    server.stop()


class TestNativeServer:
    def test_serves_documents(self, iis):
        response = fetch_once("127.0.0.1", iis.port, "/index")
        assert response.status == 200
        assert response.body == b"<html>home</html>"

    def test_404_for_missing(self, iis):
        assert fetch_once("127.0.0.1", iis.port, "/ghost").status == 404

    def test_keep_alive_connection_reuse(self, iis):
        tput = measure_throughput("127.0.0.1", iis.port, "/data",
                                  clients=2, requests_per_client=10,
                                  warmup=2)
        assert tput > 0

    def test_process_directly(self, iis):
        response = iis.process(Request("GET", "/data"))
        assert response.status == 200
        assert response.body == b"payload"

    def test_extension_hook_intercepts(self, iis):
        def handler(request):
            from repro.web import Response

            return Response(200, {}, b"from extension")

        iis.add_extension("/ext", handler)
        assert iis.process(Request("GET", "/ext/abc")).body == \
            b"from extension"
        assert iis.process(Request("GET", "/data")).body == b"payload"

    def test_extension_error_becomes_500(self, iis):
        def handler(request):
            raise ValueError("extension exploded")

        iis.add_extension("/bad", handler)
        assert iis.process(Request("GET", "/bad/x")).status == 500

    def test_longest_prefix_wins(self, iis):
        from repro.web import Response

        iis.add_extension("/a", lambda r: Response(200, {}, b"short"))
        iis.add_extension("/a/b", lambda r: Response(200, {}, b"long"))
        assert iis.process(Request("GET", "/a/b/c")).body == b"long"
        assert iis.process(Request("GET", "/a/x")).body == b"short"


@pytest.fixture()
def jk(iis):
    server = JKernelWebServer(server=iis, mount="/servlet")
    yield server
    for prefix in list(server.registrations()):
        server.terminate_servlet(prefix)


class TestJKernelWebServer:
    def test_servlet_roundtrip(self, iis, jk):
        jk.install_servlet("/hello", HelloServlet)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/hello/x")
        assert response.status == 200
        assert response.body == b"hello /hello/x"

    def test_servlet_runs_in_own_domain(self, iis, jk):
        class WhoServlet(Servlet):
            def service(self, request):
                return text_response(Domain.current().name)

        jk.install_servlet("/who", WhoServlet, domain_name="who-domain")
        response = fetch_once("127.0.0.1", iis.port, "/servlet/who")
        assert response.body == b"who-domain"

    def test_missing_servlet_404(self, iis, jk):
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/nothing").status == 404

    def test_crash_isolated_to_servlet(self, iis, jk):
        """The §1 story: the chart component fails, the word processor
        keeps running."""
        jk.install_servlet("/chart", CrashServlet)
        jk.install_servlet("/doc", HelloServlet)
        crash = fetch_once("127.0.0.1", iis.port, "/servlet/chart")
        assert crash.status == 500
        ok = fetch_once("127.0.0.1", iis.port, "/servlet/doc")
        assert ok.status == 200
        # the native document path is untouched too
        assert fetch_once("127.0.0.1", iis.port, "/index").status == 200

    def test_hot_replacement(self, iis, jk):
        registration = jk.install_servlet("/svc", CrashServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/svc").status == 500
        jk.replace_servlet("/svc", HelloServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/svc").status == 200
        assert registration.domain.terminated  # old domain torn down

    def test_terminate_servlet(self, iis, jk):
        registration = jk.install_servlet("/temp", HelloServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/temp").status == 200
        jk.terminate_servlet("/temp")
        assert registration.domain.terminated
        assert registration.capability.revoked
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/temp").status == 404

    def test_stale_route_after_external_termination_is_503(self, iis, jk):
        registration = jk.install_servlet("/stale", HelloServlet)
        registration.domain.terminate()  # domain dies, route remains
        response = fetch_once("127.0.0.1", iis.port, "/servlet/stale")
        assert response.status == 503

    def test_source_upload(self, iis, jk):
        source = (
            "class UploadedServlet(Servlet):\n"
            "    def service(self, request):\n"
            "        println('served ' + request.path)\n"
            "        return ServletResponse(200, {}, b'uploaded!')\n"
            "servlet = UploadedServlet\n"
        )
        registration = jk.install_source("/up", source)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/up")
        assert response.body == b"uploaded!"
        assert registration.domain.output == ["served /up"]

    def test_uploaded_source_cannot_open_files(self, iis, jk):
        source = (
            "class EvilServlet(Servlet):\n"
            "    def service(self, request):\n"
            "        open('/etc/passwd')\n"
            "        return ServletResponse(200, {}, b'got it')\n"
            "servlet = EvilServlet\n"
        )
        jk.install_source("/evil", source)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/evil")
        assert response.status == 500  # NameError, isolated

    def test_servlet_state_persists_across_requests(self, iis, jk):
        jk.install_servlet("/count", CounterServlet)
        bodies = [
            fetch_once("127.0.0.1", iis.port, "/servlet/count").body
            for _ in range(3)
        ]
        assert bodies == [b"1", b"2", b"3"]


class TestJWS:
    @pytest.fixture()
    def jws(self):
        server = JWSServer({"/a": b"alpha", "/bb": b"beta-doc"})
        server.start()
        yield server
        server.stop()

    def test_serves_documents_interpreted(self, jws):
        response = fetch_once("127.0.0.1", jws.port, "/a")
        assert response.status == 200
        assert response.body == b"alpha"
        response = fetch_once("127.0.0.1", jws.port, "/bb")
        assert response.body == b"beta-doc"

    def test_404_path(self, jws):
        assert fetch_once("127.0.0.1", jws.port, "/zz").status == 404

    def test_handle_bytes_direct(self, jws):
        raw = b"GET /a HTTP/1.0\r\n\r\n"
        response = jws.handle_bytes(raw)
        assert response.startswith(b"HTTP/1.0 200")
        assert response.endswith(b"alpha")

    def test_malformed_request_400(self, jws):
        assert jws.handle_bytes(b"NONSENSE\r\n\r\n").startswith(
            b"HTTP/1.0 400"
        )

    def test_counts_requests(self, jws):
        before = jws.requests_served
        jws.handle_bytes(b"GET /a HTTP/1.0\r\n\r\n")
        assert jws.requests_served == before + 1


class TestReactorFeatures:
    """PR 4: event-driven reactor — cache, pool, stats, lifecycle."""

    def test_response_cache_serves_and_invalidates(self):
        server = NativeHttpServer()
        server.documents.put("/cached", b"first")
        server.start()
        try:
            assert fetch_once("127.0.0.1", server.port,
                              "/cached").body == b"first"
            for _ in range(3):
                fetch_once("127.0.0.1", server.port, "/cached")
            stats = server.stats()
            assert stats["cache_hits"] >= 1
            # a put bumps the store generation: stale entries miss
            server.documents.put("/cached", b"second")
            assert fetch_once("127.0.0.1", server.port,
                              "/cached").body == b"second"
        finally:
            server.stop()

    def test_pooled_extension_runs_off_loop(self):
        import threading as _threading

        server = NativeHttpServer()
        seen = {}

        def handler(request):
            seen["thread"] = _threading.current_thread().name
            from repro.web import Response
            return Response(200, {}, b"pooled")

        server.add_extension("/p", handler)  # pooled by default
        server.start()
        try:
            assert fetch_once("127.0.0.1", server.port,
                              "/p/x").body == b"pooled"
            assert seen["thread"].startswith("httpd-pool")
        finally:
            server.stop()

    def test_inline_extension_runs_on_loop(self):
        import threading as _threading

        server = NativeHttpServer()
        seen = {}

        def handler(request):
            seen["thread"] = _threading.current_thread().name
            from repro.web import Response
            return Response(200, {}, b"inline")

        server.add_extension("/i", handler, inline=True)
        server.start()
        try:
            assert fetch_once("127.0.0.1", server.port,
                              "/i/x").body == b"inline"
            assert seen["thread"].startswith("httpd-loop")
        finally:
            server.stop()

    def test_stats_shape(self):
        server = NativeHttpServer()
        server.documents.put("/s", b"s")
        server.start()
        try:
            fetch_once("127.0.0.1", server.port, "/s")
            stats = server.stats()
            for key in ("requests_served", "live_connections",
                        "cache_hits", "cache_misses",
                        "backpressure_pauses", "accept_backpressure",
                        "pool"):
                assert key in stats
            assert stats["requests_served"] >= 1
        finally:
            server.stop()

    def test_document_store_remove(self):
        store = DocumentStore()
        store.put("/a", b"x")
        generation = store.generation
        assert store.remove("/a") is not None
        assert store.generation > generation
        assert store.get("/a") is None
        assert store.remove("/ghost") is None


class TestSealedServletSemantics:
    """PR 4: sealed request/response carriers."""

    def test_servlet_cannot_mutate_request(self, iis, jk):
        class Mutator(Servlet):
            def service(self, request):
                request.path = "/hacked"
                return text_response("never")

        jk.install_servlet("/mut", Mutator)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/mut")
        assert response.status == 500  # AttributeError, isolated

    def test_identical_requests_are_interned(self, iis, jk):
        seen = []

        class Observer(Servlet):
            def service(self, request):
                seen.append(id(request))
                return text_response("ok")

        jk.install_servlet("/obs", Observer)
        from repro.web import fetch_many
        fetch_many("127.0.0.1", iis.port,
                   ["/servlet/obs", "/servlet/obs"])
        assert len(seen) == 2
        assert seen[0] == seen[1]  # sealed request carrier reused

    def test_response_wire_bytes_memoized(self):
        response = text_response("hello")
        first = response.wire_bytes("HTTP/1.1", True)
        second = response.wire_bytes("HTTP/1.1", True)
        assert first is second
        assert first.startswith(b"HTTP/1.1 200")
        close_variant = response.wire_bytes("HTTP/1.0", False)
        assert close_variant is not first
        assert b"Connection: close" in close_variant

    def test_system_lrmi_compat_mode(self, iis):
        jk = JKernelWebServer(server=iis, mount="/servlet2",
                              system_lrmi=True)
        jk.install_servlet("/hello", HelloServlet)
        try:
            response = fetch_once("127.0.0.1", iis.port,
                                  "/servlet2/hello")
            assert response.status == 200
            assert response.body == b"hello /hello"
            # the bridge->system hop is a real LRMI in this mode
            assert jk.system_domain.stats["lrmi_calls_in"] >= 1
        finally:
            for prefix in list(jk.registrations()):
                jk.terminate_servlet(prefix)

    def test_per_domain_request_accounting(self, iis, jk):
        jk.install_servlet("/acct", HelloServlet)
        registration = jk.registrations()["/acct"]
        before = registration.account.requests
        for _ in range(3):
            fetch_once("127.0.0.1", iis.port, "/servlet/acct")
        assert registration.account.requests - before == 3


class TestReviewHardening:
    """PR 4 review fixes: crash containment and sealed-internal safety."""

    def test_unformattable_response_degrades_to_500_not_dead_loop(self):
        server = NativeHttpServer()
        server.documents.put("/alive", b"still here")

        def broken(request):
            from repro.web import Response
            return Response(200, {"X-Note": "café☃"}, b"")

        server.add_extension("/broken", broken, inline=True)
        server.start()
        try:
            assert fetch_once("127.0.0.1", server.port,
                              "/broken/x").status == 500
            # the loop survived: both paths still served
            assert fetch_once("127.0.0.1", server.port,
                              "/alive").body == b"still here"
            assert fetch_once("127.0.0.1", server.port,
                              "/broken/y").status == 500
        finally:
            server.stop()

    def test_broken_pooled_handler_does_not_kill_pool(self):
        server = NativeHttpServer(pool_workers=1)
        server.documents.put("/d", b"d")

        def broken(request):
            from repro.web import Response
            return Response(200, {"X-Bad": "☃"}, b"")

        server.add_extension("/pooled-broken", broken)  # pooled
        server.start()
        try:
            for _ in range(3):
                assert fetch_once("127.0.0.1", server.port,
                                  "/pooled-broken/x").status == 500
            assert fetch_once("127.0.0.1", server.port,
                              "/d").status == 200
        finally:
            server.stop()

    def test_frozen_map_backing_is_read_only(self):
        from repro.core.sealed import FrozenMap

        frozen = FrozenMap({"a": "1"})
        with pytest.raises(TypeError):
            frozen._map["a"] = "poisoned"  # mappingproxy: no item set

    def test_response_wire_memo_not_instance_reachable(self):
        response = text_response("x")
        response.wire_bytes()
        assert not hasattr(response, "_wire")

    def test_document_store_generation_exact_under_threads(self):
        import threading as _threading

        store = DocumentStore()
        rounds = 2_000

        def putter(tag):
            for index in range(rounds):
                store.put(f"/{tag}", f"{index}".encode())

        threads = [_threading.Thread(target=putter, args=(tag,))
                   for tag in ("a", "b", "c", "d")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.generation == 4 * rounds

    def test_domain_in_flight_calls_public_api(self, iis, jk):
        jk.install_servlet("/flight", HelloServlet)
        registration = jk.registrations()["/flight"]
        assert registration.domain.in_flight_calls() == 0
        fetch_once("127.0.0.1", iis.port, "/servlet/flight")
        assert registration.in_flight == 0  # back to quiescent


class TestPerPathInvalidation:
    def test_updating_one_doc_keeps_others_cached(self):
        server = NativeHttpServer()
        server.documents.put("/hot", b"hot-1")
        server.documents.put("/cold", b"cold-1")
        server.start()
        try:
            for _ in range(3):
                fetch_once("127.0.0.1", server.port, "/hot")
            hits_before = server.stats()["cache_hits"]
            server.documents.put("/cold", b"cold-2")  # unrelated mutation
            assert fetch_once("127.0.0.1", server.port,
                              "/hot").body == b"hot-1"
            assert server.stats()["cache_hits"] > hits_before  # still hit
            assert fetch_once("127.0.0.1", server.port,
                              "/cold").body == b"cold-2"
            # and mutating the hot path is visible immediately
            server.documents.put("/hot", b"hot-2")
            assert fetch_once("127.0.0.1", server.port,
                              "/hot").body == b"hot-2"
        finally:
            server.stop()

    def test_removed_document_stops_being_served(self):
        server = NativeHttpServer()
        server.documents.put("/gone", b"here")
        server.start()
        try:
            assert fetch_once("127.0.0.1", server.port,
                              "/gone").status == 200
            server.documents.remove("/gone")
            assert fetch_once("127.0.0.1", server.port,
                              "/gone").status == 404
        finally:
            server.stop()


class TestAccountLifecycle:
    """PR 4: per-incarnation resource accounts."""

    def test_replacement_servlet_gets_fresh_account(self, iis, jk):
        jk.install_servlet("/fresh", HelloServlet)
        first = jk.registrations()["/fresh"]
        for _ in range(3):
            fetch_once("127.0.0.1", iis.port, "/servlet/fresh")
        assert first.account.requests == 3
        jk.replace_servlet("/fresh", HelloServlet)
        second = jk.registrations()["/fresh"]
        assert second.account is not first.account
        assert second.account.requests == 0
        fetch_once("127.0.0.1", iis.port, "/servlet/fresh")
        assert second.account.requests == 1
        assert first.account.requests == 3  # final total preserved

    def test_terminated_servlet_account_released(self, iis, jk):
        from repro.core import get_accountant

        jk.install_servlet("/closed", HelloServlet)
        registration = jk.registrations()["/closed"]
        fetch_once("127.0.0.1", iis.port, "/servlet/closed")
        jk.terminate_servlet("/closed")
        # the accountant no longer tracks the dead domain
        assert registration.domain.name not in get_accountant().report()


class TestWorkersParameterAndListeners:
    """PR 5: reactor sizing + pre-bound listener adoption (the prefork
    tier builds on both)."""

    def test_jkweb_workers_sizes_event_loop_pool(self):
        jk = JKernelWebServer(workers=4)
        assert jk.server.workers == 4
        jk.start()
        try:
            assert len(jk.server._loops) == 4
            jk.server.documents.put("/w", b"workers")
            assert fetch_once("127.0.0.1", jk.port, "/w").status == 200
        finally:
            jk.stop()

    def test_explicit_server_wins_over_workers(self):
        server = NativeHttpServer(workers=1)
        jk = JKernelWebServer(server=server)
        assert jk.server is server

    def test_start_adopts_prebound_listener(self):
        from repro.web import make_listener

        listener = make_listener("127.0.0.1", 0)
        port = listener.getsockname()[1]
        server = NativeHttpServer()
        server.documents.put("/pre", b"bound")
        server.start(listener)
        try:
            assert server.port == port
            assert fetch_once("127.0.0.1", port, "/pre").status == 200
        finally:
            server.stop()

    def test_stop_accepting_keeps_existing_connections(self):
        from repro.web import fetch_many

        server = NativeHttpServer()
        server.documents.put("/d", b"doc")
        server.start()
        try:
            import socket as socket_module

            conn = socket_module.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            try:
                from repro.web import format_request, read_response

                reader = conn.makefile("rb")
                # Complete one request FIRST: that guarantees an event
                # loop adopted the connection (a handshake alone may
                # still sit in the listener backlog, where closing the
                # listener would reset it).
                conn.sendall(format_request("GET", "/d", keep_alive=True))
                assert read_response(reader).status == 200
                server.stop_accepting()
                # the established connection is still served...
                conn.sendall(format_request("GET", "/d", keep_alive=True))
                response = read_response(reader)
                assert response.status == 200
                reader.close()
            finally:
                conn.close()
            # ...but new connections are refused (listener closed)
            with pytest.raises(OSError):
                fetch_many("127.0.0.1", server.port, ["/d"])
        finally:
            server.stop()
