"""The three servers: native (IIS), J-Kernel-extended, and interpreted JWS.

Includes the §4 protection stories: servlet crash isolation, hot
replacement, termination, and source upload.
"""

import pytest

from repro.core import Domain
from repro.web import (
    JKernelWebServer,
    JWSServer,
    NativeHttpServer,
    Request,
    Servlet,
    ServletRequest,
    ServletResponse,
    fetch_once,
    measure_throughput,
    text_response,
)


class HelloServlet(Servlet):
    def service(self, request):
        return text_response(f"hello {request.path}")


class CrashServlet(Servlet):
    def service(self, request):
        raise RuntimeError("chart component failure")


class CounterServlet(Servlet):
    def __init__(self):
        self.count = 0

    def service(self, request):
        self.count += 1
        return text_response(str(self.count))


@pytest.fixture()
def iis():
    server = NativeHttpServer()
    server.documents.put("/index", b"<html>home</html>")
    server.documents.put("/data", b"payload")
    server.start()
    yield server
    server.stop()


class TestNativeServer:
    def test_serves_documents(self, iis):
        response = fetch_once("127.0.0.1", iis.port, "/index")
        assert response.status == 200
        assert response.body == b"<html>home</html>"

    def test_404_for_missing(self, iis):
        assert fetch_once("127.0.0.1", iis.port, "/ghost").status == 404

    def test_keep_alive_connection_reuse(self, iis):
        tput = measure_throughput("127.0.0.1", iis.port, "/data",
                                  clients=2, requests_per_client=10,
                                  warmup=2)
        assert tput > 0

    def test_process_directly(self, iis):
        response = iis.process(Request("GET", "/data"))
        assert response.status == 200
        assert response.body == b"payload"

    def test_extension_hook_intercepts(self, iis):
        def handler(request):
            from repro.web import Response

            return Response(200, {}, b"from extension")

        iis.add_extension("/ext", handler)
        assert iis.process(Request("GET", "/ext/abc")).body == \
            b"from extension"
        assert iis.process(Request("GET", "/data")).body == b"payload"

    def test_extension_error_becomes_500(self, iis):
        def handler(request):
            raise ValueError("extension exploded")

        iis.add_extension("/bad", handler)
        assert iis.process(Request("GET", "/bad/x")).status == 500

    def test_longest_prefix_wins(self, iis):
        from repro.web import Response

        iis.add_extension("/a", lambda r: Response(200, {}, b"short"))
        iis.add_extension("/a/b", lambda r: Response(200, {}, b"long"))
        assert iis.process(Request("GET", "/a/b/c")).body == b"long"
        assert iis.process(Request("GET", "/a/x")).body == b"short"


@pytest.fixture()
def jk(iis):
    server = JKernelWebServer(server=iis, mount="/servlet")
    yield server
    for prefix in list(server.registrations()):
        server.terminate_servlet(prefix)


class TestJKernelWebServer:
    def test_servlet_roundtrip(self, iis, jk):
        jk.install_servlet("/hello", HelloServlet)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/hello/x")
        assert response.status == 200
        assert response.body == b"hello /hello/x"

    def test_servlet_runs_in_own_domain(self, iis, jk):
        class WhoServlet(Servlet):
            def service(self, request):
                return text_response(Domain.current().name)

        jk.install_servlet("/who", WhoServlet, domain_name="who-domain")
        response = fetch_once("127.0.0.1", iis.port, "/servlet/who")
        assert response.body == b"who-domain"

    def test_missing_servlet_404(self, iis, jk):
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/nothing").status == 404

    def test_crash_isolated_to_servlet(self, iis, jk):
        """The §1 story: the chart component fails, the word processor
        keeps running."""
        jk.install_servlet("/chart", CrashServlet)
        jk.install_servlet("/doc", HelloServlet)
        crash = fetch_once("127.0.0.1", iis.port, "/servlet/chart")
        assert crash.status == 500
        ok = fetch_once("127.0.0.1", iis.port, "/servlet/doc")
        assert ok.status == 200
        # the native document path is untouched too
        assert fetch_once("127.0.0.1", iis.port, "/index").status == 200

    def test_hot_replacement(self, iis, jk):
        registration = jk.install_servlet("/svc", CrashServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/svc").status == 500
        jk.replace_servlet("/svc", HelloServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/svc").status == 200
        assert registration.domain.terminated  # old domain torn down

    def test_terminate_servlet(self, iis, jk):
        registration = jk.install_servlet("/temp", HelloServlet)
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/temp").status == 200
        jk.terminate_servlet("/temp")
        assert registration.domain.terminated
        assert registration.capability.revoked
        assert fetch_once("127.0.0.1", iis.port,
                          "/servlet/temp").status == 404

    def test_stale_route_after_external_termination_is_503(self, iis, jk):
        registration = jk.install_servlet("/stale", HelloServlet)
        registration.domain.terminate()  # domain dies, route remains
        response = fetch_once("127.0.0.1", iis.port, "/servlet/stale")
        assert response.status == 503

    def test_source_upload(self, iis, jk):
        source = (
            "class UploadedServlet(Servlet):\n"
            "    def service(self, request):\n"
            "        println('served ' + request.path)\n"
            "        return ServletResponse(200, {}, b'uploaded!')\n"
            "servlet = UploadedServlet\n"
        )
        registration = jk.install_source("/up", source)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/up")
        assert response.body == b"uploaded!"
        assert registration.domain.output == ["served /up"]

    def test_uploaded_source_cannot_open_files(self, iis, jk):
        source = (
            "class EvilServlet(Servlet):\n"
            "    def service(self, request):\n"
            "        open('/etc/passwd')\n"
            "        return ServletResponse(200, {}, b'got it')\n"
            "servlet = EvilServlet\n"
        )
        jk.install_source("/evil", source)
        response = fetch_once("127.0.0.1", iis.port, "/servlet/evil")
        assert response.status == 500  # NameError, isolated

    def test_servlet_state_persists_across_requests(self, iis, jk):
        jk.install_servlet("/count", CounterServlet)
        bodies = [
            fetch_once("127.0.0.1", iis.port, "/servlet/count").body
            for _ in range(3)
        ]
        assert bodies == [b"1", b"2", b"3"]


class TestJWS:
    @pytest.fixture()
    def jws(self):
        server = JWSServer({"/a": b"alpha", "/bb": b"beta-doc"})
        server.start()
        yield server
        server.stop()

    def test_serves_documents_interpreted(self, jws):
        response = fetch_once("127.0.0.1", jws.port, "/a")
        assert response.status == 200
        assert response.body == b"alpha"
        response = fetch_once("127.0.0.1", jws.port, "/bb")
        assert response.body == b"beta-doc"

    def test_404_path(self, jws):
        assert fetch_once("127.0.0.1", jws.port, "/zz").status == 404

    def test_handle_bytes_direct(self, jws):
        raw = b"GET /a HTTP/1.0\r\n\r\n"
        response = jws.handle_bytes(raw)
        assert response.startswith(b"HTTP/1.0 200")
        assert response.endswith(b"alpha")

    def test_malformed_request_400(self, jws):
        assert jws.handle_bytes(b"NONSENSE\r\n\r\n").startswith(
            b"HTTP/1.0 400"
        )

    def test_counts_requests(self, jws):
        before = jws.requests_served
        jws.handle_bytes(b"GET /a HTTP/1.0\r\n\r\n")
        assert jws.requests_served == before + 1
