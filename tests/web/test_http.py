"""HTTP parsing and formatting."""

import io

import pytest

from repro.web import (
    HttpError,
    Request,
    Response,
    format_request,
    format_response,
    read_request,
    read_response,
)
from repro.web.http import read_request as _read


def _reader(data):
    return io.BufferedReader(io.BytesIO(data))


class TestRequestParsing:
    def test_simple_get(self):
        request = read_request(_reader(b"GET /x HTTP/1.0\r\n\r\n"))
        assert request.method == "GET"
        assert request.path == "/x"
        assert request.version == "HTTP/1.0"
        assert request.body == b""

    def test_headers_lowercased(self):
        request = read_request(_reader(
            b"GET / HTTP/1.0\r\nContent-Type: text/plain\r\nX-Thing: 1\r\n"
            b"\r\n"
        ))
        assert request.headers["content-type"] == "text/plain"
        assert request.headers["x-thing"] == "1"

    def test_body_by_content_length(self):
        request = read_request(_reader(
            b"POST /u HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello"
        ))
        assert request.method == "POST"
        assert request.body == b"hello"

    def test_eof_returns_none(self):
        assert read_request(_reader(b"")) is None

    def test_malformed_line_rejected(self):
        with pytest.raises(HttpError):
            read_request(_reader(b"NONSENSE\r\n\r\n"))

    def test_truncated_body_rejected(self):
        with pytest.raises(HttpError):
            read_request(_reader(
                b"POST / HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc"
            ))

    def test_keep_alive_flags(self):
        http10 = read_request(_reader(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ))
        assert http10.keep_alive
        http10_close = read_request(_reader(b"GET / HTTP/1.0\r\n\r\n"))
        assert not http10_close.keep_alive
        http11 = read_request(_reader(b"GET / HTTP/1.1\r\n\r\n"))
        assert http11.keep_alive

    def test_two_word_request_line(self):
        request = read_request(_reader(b"GET /legacy\r\n\r\n"))
        assert request.path == "/legacy"


class TestFormatting:
    def test_response_roundtrip(self):
        wire = format_response(
            Response(200, {"Content-Type": "text/plain"}, b"body")
        )
        response = read_response(_reader(wire))
        assert response.status == 200
        assert response.body == b"body"
        assert response.headers["content-type"] == "text/plain"
        assert response.headers["content-length"] == "4"

    def test_request_roundtrip(self):
        wire = format_request("POST", "/path", {"X-A": "1"}, b"data")
        request = read_request(_reader(wire))
        assert request.method == "POST"
        assert request.path == "/path"
        assert request.headers["x-a"] == "1"
        assert request.body == b"data"

    def test_unknown_status_reason(self):
        wire = format_response(Response(299, {}, b""))
        assert b"299" in wire

    def test_connection_header_reflects_keep_alive(self):
        keep = format_response(Response(200, {}, b""), keep_alive=True)
        close = format_response(Response(200, {}, b""), keep_alive=False)
        assert b"keep-alive" in keep
        assert b"close" in close

    def test_response_version_parameter(self):
        wire = format_response(Response(200, {}, b""), version="HTTP/1.1")
        assert wire.startswith(b"HTTP/1.1 200")
        assert format_response(Response(200, {}, b"")).startswith(
            b"HTTP/1.0 200"
        )

    def test_response_respects_caller_headers(self):
        wire = format_response(Response(
            200, {"Content-Length": "99", "Connection": "upgrade"}, b"xy"
        ))
        head = wire.split(b"\r\n\r\n", 1)[0]
        assert head.count(b"Content-Length") == 1
        assert b"Content-Length: 99" in head
        assert b"Connection: upgrade" in head

    def test_request_version_parameter(self):
        wire = format_request("GET", "/x", version="HTTP/1.1")
        assert wire.startswith(b"GET /x HTTP/1.1\r\n")
        # 1.1 keep-alive is the default: no Connection header emitted
        assert b"Connection" not in wire
        closing = format_request("GET", "/x", keep_alive=False,
                                 version="HTTP/1.1")
        assert b"Connection: close" in closing


class TestRequestParser:
    def _parse_all(self, parser):
        requests = []
        while True:
            request = parser.next_request()
            if request is None:
                return requests
            requests.append(request)

    def test_single_feed_single_request(self):
        from repro.web import RequestParser

        parser = RequestParser()
        parser.feed(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n")
        (request,) = self._parse_all(parser)
        assert request.method == "GET"
        assert request.version == "HTTP/1.1"
        assert request.headers == {"host": "h"}
        assert parser.buffered == 0
        assert not parser.mid_request

    def test_pipelined_requests_in_one_feed(self):
        from repro.web import RequestParser

        parser = RequestParser()
        parser.feed(
            b"GET /one HTTP/1.1\r\n\r\n"
            b"POST /two HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
            b"GET /three HTTP/1.1\r\n\r\n"
        )
        requests = self._parse_all(parser)
        assert [r.path for r in requests] == ["/one", "/two", "/three"]
        assert requests[1].body == b"abc"

    def test_mid_request_flag_for_partial_body(self):
        from repro.web import RequestParser

        parser = RequestParser()
        parser.feed(b"POST /p HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc")
        assert parser.next_request() is None
        assert parser.mid_request
        parser.feed(b"defghij")
        (request,) = self._parse_all(parser)
        assert request.body == b"abcdefghij"
