"""Fleet control plane units (``repro.web.control``) and the reactor's
parse-boundary admission integration.

Autoscaler ticks run against injected stats (no forks): the unit under
test is the decision logic, not the prefork plumbing (which
``tests/chaos`` exercises end to end).
"""

import threading
import time

import pytest

from repro.core.quota import QuotaManager, QuotaSpec
from repro.web import NativeHttpServer, fetch_once
from repro.web.control import (
    AdmissionController,
    AutoscalePolicy,
    Autoscaler,
    LatencyTracker,
    default_classifier,
    fleet_signals,
)


class TestLatencyTracker:
    def test_percentiles_over_samples(self):
        tracker = LatencyTracker(size=100)
        for us in range(1, 101):
            tracker.note(us * 1000)
        assert tracker.sample_count() == 100
        assert tracker.p50_ms() == pytest.approx(51.0, abs=2.0)
        assert tracker.p99_ms() == pytest.approx(100.0, abs=2.0)

    def test_empty_ring_reads_zero(self):
        assert LatencyTracker().p99_ms() == 0.0

    def test_ring_wraps(self):
        tracker = LatencyTracker(size=4)
        for _ in range(100):
            tracker.note(5)
        assert tracker.sample_count() == 4


class TestClassifier:
    @pytest.mark.parametrize("path,tenant", [
        ("/servlet/shop/cart", "/shop"),
        ("/servlet/shop", "/shop"),
        ("/doc.html", "_static"),
        ("/", "_static"),
        ("no-slash", "_other"),
    ])
    def test_tenant_keys(self, path, tenant):
        assert default_classifier(path) == tenant


def _drain(controller, decisions):
    for decision in decisions:
        if decision.admitted:
            controller.finish(decision.tenant)


class TestAdmissionController:
    def test_everything_admitted_below_pressure(self):
        controller = AdmissionController(max_inflight=100)
        decisions = [controller.decide(f"/servlet/t{i}/x")
                     for i in range(10)]
        assert all(d.admitted for d in decisions)
        assert controller.inflight() == 10
        _drain(controller, decisions)
        assert controller.inflight() == 0

    def test_at_capacity_sheds_everyone(self):
        controller = AdmissionController(max_inflight=4)
        held = [controller.decide("/servlet/a/x") for _ in range(4)]
        assert all(d.admitted for d in held)
        shed = controller.decide("/servlet/b/x")
        assert not shed.admitted
        assert shed.reason == "at-capacity"
        assert shed.retry_after == controller.retry_after_s
        assert "shed" in repr(shed)
        _drain(controller, held)

    @staticmethod
    def _register(controller, *tenants):
        """Fair share is computed over tenants seen so far; touch each
        once so the capacity splits the way production traffic would."""
        for tenant in tenants:
            decision = controller.decide(f"/servlet{tenant}/warm")
            if decision.admitted:
                controller.finish(decision.tenant)

    def test_fair_share_sheds_the_hog_under_pressure(self):
        controller = AdmissionController(max_inflight=10,
                                         shed_threshold=0.5)
        self._register(controller, "/hog", "/meek")
        hog = [controller.decide("/servlet/hog/x") for _ in range(5)]
        assert all(d.admitted for d in hog)  # filling up to its share
        # Past the pressure threshold the hog is over its 1/2 share; a
        # well-behaved neighbour is not.
        over = controller.decide("/servlet/hog/x")
        assert not over.admitted
        assert over.reason == "over-fair-share"
        assert controller.decide("/servlet/meek/x").admitted
        _drain(controller, hog)
        controller.finish("/meek")

    def test_weights_shift_the_fair_share(self):
        controller = AdmissionController(
            max_inflight=9, shed_threshold=0.0,
            weights={"/gold": 8.0, "/lead": 1.0},
        )
        self._register(controller, "/gold", "/lead")
        gold = [controller.decide("/servlet/gold/x") for _ in range(8)]
        assert all(d.admitted for d in gold)
        lead = controller.decide("/servlet/lead/x")
        assert lead.admitted  # share floor of 1 request
        assert not controller.decide("/servlet/lead/x").admitted
        _drain(controller, gold)
        controller.finish("/lead")

    def test_deprioritized_tenant_sheds_first(self):
        controller = AdmissionController(max_inflight=8,
                                         shed_threshold=0.0,
                                         deprioritized_fraction=0.25)
        controller.set_deprioritized("/throttled")
        # Sole tenant: share is the full bound (8), cut to 2 by the
        # deprioritized fraction.
        held = [controller.decide("/servlet/throttled/x")
                for _ in range(2)]
        assert all(d.admitted for d in held)
        third = controller.decide("/servlet/throttled/x")
        assert not third.admitted
        assert third.reason == "deprioritized"
        controller.set_deprioritized("/throttled", False)
        assert controller.decide("/servlet/throttled/x").admitted
        _drain(controller, held)
        controller.finish("/throttled")

    def test_quota_hard_sheds_at_the_door(self):
        quota = QuotaManager()
        quota.set_quota("/dead", QuotaSpec(cpu_ticks=1))
        quota.charge_cpu("/dead", 5)
        controller = AdmissionController(quota_manager=quota)
        decision = controller.decide("/servlet/dead/x")
        assert not decision.admitted
        assert decision.reason == "quota-exceeded"

    def test_quota_soft_deprioritizes(self):
        quota = QuotaManager()
        quota.set_quota("/warm", QuotaSpec(cpu_ticks=100,
                                           soft_fraction=0.5))
        quota.charge_cpu("/warm", 60)
        controller = AdmissionController(max_inflight=8, shed_threshold=0.0,
                                         deprioritized_fraction=0.25,
                                         quota_manager=quota)
        held = [controller.decide("/servlet/warm/x") for _ in range(2)]
        assert all(d.admitted for d in held)  # quarter of the sole share
        shed = controller.decide("/servlet/warm/x")
        assert not shed.admitted and shed.reason == "deprioritized"
        _drain(controller, held)

    def test_slow_p99_turns_pressure_on(self):
        controller = AdmissionController(max_inflight=100, slo_ms=10.0,
                                         shed_threshold=0.99)
        self._register(controller, "/a", "/b")  # share: 50 each
        for _ in range(50):
            controller.latency.note(50_000)  # 50 ms, far over the SLO
        held = [controller.decide("/servlet/a/x") for _ in range(60)]
        assert sum(not d.admitted for d in held) == 10
        _drain(controller, held)

    def test_finish_records_latency_and_is_idempotent(self):
        controller = AdmissionController()
        decision = controller.decide("/servlet/a/x")
        controller.finish(decision.tenant, 2_000.0)
        controller.finish(decision.tenant, 2_000.0)  # extra: no underflow
        controller.finish("/never-admitted")
        assert controller.inflight() == 0
        assert controller.latency.sample_count() == 2

    def test_stats_shape(self):
        controller = AdmissionController(max_inflight=2)
        held = [controller.decide("/servlet/a/x") for _ in range(3)]
        stats = controller.stats()
        assert stats["admitted"] == 2
        assert stats["shed"] == 1
        assert 0 < stats["shed_rate"] < 1
        assert stats["tenants"]["/a"]["in_flight"] == 2
        assert controller.shed_rate() == pytest.approx(1 / 3)
        _drain(controller, held)

    def test_set_weight_updates_live_tenant(self):
        controller = AdmissionController()
        controller.decide("/servlet/a/x")
        controller.set_weight("/a", 5.0)
        assert controller.stats()["tenants"]["/a"]["weight"] == 5.0
        controller.finish("/a")

    def test_concurrent_decide_finish_keeps_gauge_consistent(self):
        controller = AdmissionController(max_inflight=64)

        def worker():
            for _ in range(200):
                decision = controller.decide("/servlet/x/y")
                if decision.admitted:
                    controller.finish(decision.tenant, 100.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert controller.inflight() == 0


class TestReactorAdmission:
    def test_shed_is_a_parse_boundary_503_with_retry_after(self):
        controller = AdmissionController(max_inflight=1)
        # Pin the one admission unit so the live request must shed.
        assert controller.decide("/servlet/app/x").admitted
        server = NativeHttpServer(workers=1, admission=controller)
        server.documents.put("/doc", b"ok")
        with server:
            response = fetch_once("127.0.0.1", server.port, "/doc")
        assert response.status == 503
        assert response.headers.get("retry-after") == "1"
        assert b"at-capacity" in response.body
        controller.finish("/app")

    def test_admitted_requests_flow_and_release_units(self):
        controller = AdmissionController(max_inflight=16)
        server = NativeHttpServer(workers=1, admission=controller)
        server.documents.put("/doc", b"ok")
        with server:
            for _ in range(5):
                assert fetch_once("127.0.0.1", server.port,
                                  "/doc").status == 200
            stats = server.stats()
        assert stats["admission"]["admitted"] == 5
        assert stats["admission"]["in_flight"] == 0
        assert "p99_latency_ms" in stats
        assert controller.latency.sample_count() == 5


def _stats(shed, admitted, p99, workers):
    return {
        "worker_count": workers,
        "workers": [{
            "server": {
                "p99_latency_ms": p99,
                "admission": {"shed": shed, "admitted": admitted},
            },
        }],
    }


class _FakePrefork:
    def __init__(self):
        self.workers = 1
        self.calls = []

    def scale_to(self, target):
        self.calls.append(target)
        self.workers = target


class TestAutoscaler:
    def test_policy_validates_bounds(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=4, max_workers=2)

    def test_fleet_signals_aggregate(self):
        rate, p99, sheds, total = fleet_signals(_stats(5, 95, 30.0, 2))
        assert rate == pytest.approx(0.05)
        assert p99 == 30.0 and sheds == 5 and total == 100
        assert fleet_signals({"workers": []}) == (0.0, 0.0, 0, 0)

    def test_scales_up_after_consecutive_hot_ticks(self):
        prefork = _FakePrefork()
        scaler = Autoscaler(prefork, AutoscalePolicy(
            max_workers=4, up_consecutive=2, cooldown_s=0.0))
        assert scaler.tick(_stats(10, 90, 10.0, 1)) is None  # 1 hot tick
        assert scaler.tick(_stats(30, 170, 10.0, 1)) == "up"
        assert prefork.calls == [2]
        assert scaler.decisions[0][1] == "up"

    def test_shed_rate_is_windowed_not_lifetime(self):
        prefork = _FakePrefork()
        scaler = Autoscaler(prefork, AutoscalePolicy(
            up_consecutive=1, cooldown_s=0.0))
        scaler.tick(_stats(50, 50, 10.0, 1))  # historical burst
        prefork.calls.clear()
        # Counters now FLAT: the old burst must not read as hot.
        assert scaler.tick(_stats(50, 50, 10.0, 2)) is None
        assert scaler.tick(_stats(50, 50, 10.0, 2)) is None
        assert prefork.calls == []

    def test_scales_down_after_calm_ticks_to_min(self):
        prefork = _FakePrefork()
        prefork.workers = 2
        scaler = Autoscaler(prefork, AutoscalePolicy(
            min_workers=1, down_consecutive=3, cooldown_s=0.0))
        for _ in range(2):
            assert scaler.tick(_stats(0, 100, 5.0, 2)) is None
        assert scaler.tick(_stats(0, 100, 5.0, 2)) == "down"
        assert prefork.calls == [1]
        # At min_workers: calm ticks take no further action.
        for _ in range(4):
            assert scaler.tick(_stats(0, 100, 5.0, 1)) is None

    def test_cooldown_suppresses_back_to_back_actions(self):
        prefork = _FakePrefork()
        scaler = Autoscaler(prefork, AutoscalePolicy(
            up_consecutive=1, cooldown_s=60.0))
        assert scaler.tick(_stats(10, 10, 10.0, 1)) == "up"
        assert scaler.tick(_stats(40, 20, 10.0, 2)) is None  # cooling
        assert prefork.calls == [2]

    def test_background_thread_ticks_and_survives_stats_errors(self):
        class Flaky:
            workers = 1
            polls = 0

            def stats(self):
                Flaky.polls += 1
                raise RuntimeError("worker mid-restart")

            def scale_to(self, target):
                pass

        scaler = Autoscaler(Flaky(), AutoscalePolicy(interval_s=0.01))
        scaler.start()
        assert scaler.start() is scaler  # idempotent
        deadline = time.monotonic() + 2.0
        while Flaky.polls < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        scaler.stop()
        assert Flaky.polls >= 3
