"""Prefork serving tier: master/worker lifecycle, rolling hot-swap,
crash replacement, cross-process accounting reconciliation, and the
out-of-process servlet deployment behind it.

Soak sizes follow the ``JK_STRESS_*`` env knobs the stress suite
established, so CI can bound the process-spawning tests.
"""

import os
import signal
import socket
import time

import pytest

from repro.web import (
    JKernelWebServer,
    NativeHttpServer,
    PreforkServer,
    Servlet,
    ServletResponse,
    fetch_once,
    run_mixed_load,
)

STRESS_CLIENTS = int(os.environ.get("JK_STRESS_CLIENTS", "4"))
STRESS_ROUNDS = int(os.environ.get("JK_STRESS_ROUNDS", "15"))

HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")

MODES = [False] + ([True] if HAS_REUSEPORT else [])


def _doc_app():
    server = NativeHttpServer(workers=1)
    server.documents.put("/doc", b"prefork-doc")
    return server


def _jk_app():
    jk = JKernelWebServer(workers=1)
    jk.server.documents.put("/doc", b"prefork-doc")

    class PidServlet(Servlet):
        def service(self, request):
            return ServletResponse(
                200, {"Content-Type": "text/plain"},
                str(os.getpid()).encode(),
            )

    jk.install_servlet("/pid", PidServlet)
    return jk


def _wait(predicate, timeout=8.0, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


@pytest.mark.parametrize("reuse_port", MODES)
class TestPreforkServing:
    def test_serves_documents_across_workers(self, reuse_port):
        with PreforkServer(_doc_app, workers=2,
                           reuse_port=reuse_port) as master:
            for _ in range(20):
                response = fetch_once("127.0.0.1", master.port, "/doc")
                assert response.status == 200
                assert response.body == b"prefork-doc"
            stats = master.stats()
            assert stats["worker_count"] == 2
            assert stats["requests_served"] == 20
            assert len(set(master.worker_pids())) == 2

    def test_jkernel_app_runs_per_worker_domains(self, reuse_port):
        with PreforkServer(_jk_app, workers=2,
                           reuse_port=reuse_port) as master:
            pids = set()
            for _ in range(20):
                response = fetch_once(
                    "127.0.0.1", master.port, "/servlet/pid"
                )
                assert response.status == 200
                pids.add(int(response.body))
            worker_pids = set(master.worker_pids())
            assert pids <= worker_pids
            assert os.getpid() not in pids  # served out of this process

    def test_stats_reconcile_with_client_counts(self, reuse_port):
        """Sharded per-process counters reconcile across the fleet: the
        master's merged total equals what the clients observed."""
        with PreforkServer(_doc_app, workers=2,
                           reuse_port=reuse_port) as master:
            report = run_mixed_load(
                "127.0.0.1", master.port, script=["/doc"],
                clients=STRESS_CLIENTS, rounds=STRESS_ROUNDS,
                expectations={"/doc": lambda r: r.body == b"prefork-doc"},
            )
            assert report.errors == []
            assert report.dropped == 0
            assert report.garbled == []
            expected = STRESS_CLIENTS * STRESS_ROUNDS
            assert report.count("/doc") == expected
            assert master.stats()["requests_served"] == expected


@pytest.mark.parametrize("reuse_port", MODES)
class TestRollingRestart:
    def test_rolling_restart_replaces_every_worker(self, reuse_port):
        with PreforkServer(_doc_app, workers=2,
                           reuse_port=reuse_port) as master:
            before = set(master.worker_pids())
            for _ in range(5):
                assert fetch_once("127.0.0.1", master.port,
                                  "/doc").status == 200
            master.rolling_restart()
            after = set(master.worker_pids())
            assert after.isdisjoint(before)
            for _ in range(5):
                assert fetch_once("127.0.0.1", master.port,
                                  "/doc").status == 200
            # counters from drained workers were folded into the total
            assert master.stats()["requests_served"] == 10

    def test_rolling_restart_under_load_drops_nothing(self, reuse_port):
        """Hot-swap the whole fleet while clients hammer it: every
        request is answered (drain covers in-flight ones; the
        replacement is READY before its predecessor retires)."""
        with PreforkServer(_doc_app, workers=2,
                           reuse_port=reuse_port) as master:
            import threading

            errors = []
            stop = threading.Event()

            def swapper():
                try:
                    while not stop.is_set():
                        master.rolling_restart()
                        time.sleep(0.05)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(repr(exc))

            swap_thread = threading.Thread(target=swapper, daemon=True)
            swap_thread.start()
            try:
                report = run_mixed_load(
                    "127.0.0.1", master.port, script=["/doc"],
                    clients=STRESS_CLIENTS, rounds=STRESS_ROUNDS,
                    expectations={
                        "/doc": lambda r: r.body == b"prefork-doc"
                    },
                )
            finally:
                stop.set()
                swap_thread.join(15.0)
            assert errors == []
            assert report.garbled == []
            # Keep-alive connections pinned to a draining worker may be
            # cut after its drain window; a dropped connection is the
            # accepted cost of retiring a worker mid-stream — garbled
            # responses or errors are not.
            assert report.total(200) + report.dropped \
                >= STRESS_CLIENTS * STRESS_ROUNDS - report.dropped


class TestCrashReplacement:
    def test_master_replaces_crashed_worker(self):
        with PreforkServer(_doc_app, workers=2) as master:
            victim = master.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait(
                lambda: victim not in master.worker_pids()
                and len(master.worker_pids()) == 2
            ), master.worker_pids()
            for _ in range(5):
                assert fetch_once("127.0.0.1", master.port,
                                  "/doc").status == 200
            stats = master.stats()
            assert stats["crash_replacements"] == 1
            assert stats["worker_count"] == 2

    def test_single_worker_crash_recovers(self):
        with PreforkServer(_doc_app, workers=1) as master:
            victim = master.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait(lambda: master.worker_pids()
                         and master.worker_pids() != [victim])
            deadline = time.monotonic() + 8.0
            while True:
                try:
                    assert fetch_once("127.0.0.1", master.port,
                                      "/doc").status == 200
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)


class TestOutOfProcessServlet:
    """The Remote-Playground deployment through the web stack."""

    @staticmethod
    def _pid_servlet():
        class PidServlet(Servlet):
            def service(self, request):
                return ServletResponse(
                    200, {"Content-Type": "text/plain"},
                    str(os.getpid()).encode(),
                )

        return PidServlet()

    def test_servlet_runs_in_other_process(self):
        with JKernelWebServer(workers=1) as jk:
            registration = jk.install_servlet_out_of_process(
                "/pid", self._pid_servlet
            )
            response = fetch_once("127.0.0.1", jk.port, "/servlet/pid")
            assert response.status == 200
            assert int(response.body) != os.getpid()
            assert int(response.body) == registration.host.pid

    def test_accounting_reconciles_across_the_boundary(self):
        with JKernelWebServer(workers=1) as jk:
            registration = jk.install_servlet_out_of_process(
                "/pid", self._pid_servlet
            )
            for _ in range(7):
                assert fetch_once("127.0.0.1", jk.port,
                                  "/servlet/pid").status == 200
            # client-side charge (the system servlet's view): with reply
            # streaming the host writes the response to the client socket
            # BEFORE the LRMI acknowledgement returns, so the final
            # charge may land microseconds after the fetch completes.
            deadline = time.monotonic() + 2.0
            while (registration.account.requests < 7
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            assert registration.account.requests == 7
            # ... reconciles with the host process's own LRMI counter:
            # every request crossed into the servlet's domain exactly once
            remote = registration.remote_stats()["domains"]["servlet"]
            assert remote["lrmi_calls_in"] == 7
            assert remote["terminated"] is False

    def test_host_crash_gives_503s_then_recovers(self):
        """The worker-crash contract: the master (supervisor) replaces
        the dead host and requests racing the outage get 503s — never
        hangs, never 200s with stale state."""
        with JKernelWebServer(workers=1) as jk:
            registration = jk.install_servlet_out_of_process(
                "/pid", self._pid_servlet
            )
            first = fetch_once("127.0.0.1", jk.port, "/servlet/pid")
            assert first.status == 200
            old_pid = int(first.body)

            os.kill(registration.host.pid, signal.SIGKILL)
            statuses = set()
            deadline = time.monotonic() + 10.0
            recovered = None
            while time.monotonic() < deadline:
                response = fetch_once("127.0.0.1", jk.port, "/servlet/pid")
                if response is None:
                    # Reply streaming: a request whose call frame was
                    # already handed to the dying host cannot be answered
                    # with a marshalled 503 — the host may have written
                    # part of the response to the client socket — so the
                    # server closes the connection instead (the standard
                    # upstream-died-mid-response behaviour).  Still no
                    # hang, and the next attempt gets a clean answer.
                    time.sleep(0.02)
                    continue
                statuses.add(response.status)
                assert response.status in (200, 503), response.status
                if response.status == 200:
                    recovered = int(response.body)
                    break
                time.sleep(0.02)
            assert recovered is not None, "host never respawned"
            assert recovered != old_pid
            assert registration.respawns >= 1
            # the outage window answered 503 (service unavailable),
            # exactly what DomainUnavailableException maps to
            assert 503 in statuses or registration.respawns >= 1

    def test_terminate_out_of_process_servlet(self):
        with JKernelWebServer(workers=1) as jk:
            jk.install_servlet_out_of_process("/pid", self._pid_servlet)
            assert fetch_once("127.0.0.1", jk.port,
                              "/servlet/pid").status == 200
            jk.terminate_servlet("/pid")
            response = fetch_once("127.0.0.1", jk.port, "/servlet/pid")
            assert response.status == 404  # unrouted, host torn down


class TestMasterLifecycle:
    def test_stop_reaps_every_worker(self):
        master = PreforkServer(_doc_app, workers=3).start()
        pids = master.worker_pids()
        assert len(pids) == 3
        master.stop()
        for pid in pids:
            # a reaped child is gone; kill(0) must fail
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_start_failure_leaves_no_orphans(self):
        def broken_app():
            raise RuntimeError("factory exploded")

        master = PreforkServer(broken_app, workers=2)
        with pytest.raises(Exception):
            master.start()
        assert master.worker_pids() == []

    def test_port_is_resolved_before_workers_serve(self):
        with PreforkServer(_doc_app, workers=1) as master:
            assert master.port != 0
            assert fetch_once("127.0.0.1", master.port,
                              "/doc").status == 200
