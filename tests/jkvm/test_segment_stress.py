"""Concurrency stress for pooled VM thread segments.

Many guest threads hammer cross-domain calls while a guest revoker thread
revokes a capability mid-traffic.  The properties under test:

* pooled ``_VMSegment`` reuse never leaks across threads or overlaps —
  at every scheduler slice, each live segment object sits on exactly one
  thread's stack, pooled segments are retired (dead incarnation) and
  disjoint from every active stack;
* ``jk/RevokedException`` is the *only* failure mode guest code observes
  (workers catch it; nothing else may unwind a worker);
* after the storm every thread is terminated with a balanced segment
  stack and its original domain tag.
"""

import pytest

from repro.jkvm import JKernelVM
from repro.jvm import ClassAssembler, interface
from repro.jvm.classfile import CONSTRUCTOR_NAME
from repro.jvm.instructions import (
    ALOAD,
    CHECKCAST,
    GETFIELD,
    GOTO,
    IADD,
    ICONST,
    IF_ICMPGE,
    IINC,
    ILOAD,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    ISTORE,
    POP,
    PUTFIELD,
    RETURN,
)

IFACE = "svc/IStress"
WORKERS = 6
CALLS_PER_WORKER = 40


def _service_classfiles():
    iface = interface(IFACE, [("ping", "()I")], extends=("jk/Remote",))
    impl = ClassAssembler("svc/StressImpl", interfaces=(IFACE, "jk/Remote"))
    with impl.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with impl.method("ping", "()I") as m:
        m.emit(ICONST, 99)
        m.emit(IRETURN)
    return [iface, impl.build()]


def _worker_classfile():
    """``cap`` is hammered and may be revoked mid-run; ``stable`` must
    stay callable.  Catches RevokedException, records it, and keeps
    hammering the stable capability so traffic continues post-revocation.
    """
    ca = ClassAssembler("cl/Worker", super_name="java/lang/Thread")
    ca.field("cap", f"L{IFACE};")
    ca.field("stable", f"L{IFACE};")
    ca.field("ok", "I")
    ca.field("sawRevoked", "I")
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Thread", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method("run", "()V") as m:
        m.emit(ICONST, 0)
        m.emit(ISTORE, 1)
        loop = m.here()
        m.emit(ILOAD, 1)
        m.emit(ICONST, CALLS_PER_WORKER)
        done = m.label("done")
        m.emit(IF_ICMPGE, done)
        try_start = m.here()
        m.emit(ALOAD, 0)
        m.emit(GETFIELD, "cl/Worker", "cap")
        m.emit(INVOKEINTERFACE, IFACE, "ping", "()I")
        m.emit(POP)
        # success: ok += 1
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 0)
        m.emit(GETFIELD, "cl/Worker", "ok")
        m.emit(ICONST, 1)
        m.emit(IADD)
        m.emit(PUTFIELD, "cl/Worker", "ok")
        try_end = m.here()
        next_round = m.label("next")
        m.emit(GOTO, next_round)
        handler = m.here()
        # revoked: record it, swap in the stable capability, keep going
        m.emit(POP)
        m.emit(ALOAD, 0)
        m.emit(ICONST, 1)
        m.emit(PUTFIELD, "cl/Worker", "sawRevoked")
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 0)
        m.emit(GETFIELD, "cl/Worker", "stable")
        m.emit(PUTFIELD, "cl/Worker", "cap")
        m.mark(next_round)
        m.emit(IINC, 1, 1)
        m.emit(GOTO, loop.pc)
        m.handler(try_start, try_end, handler, "jk/RevokedException")
        m.mark(done)
        m.emit(RETURN)
    return ca.build()


def _revoker_classfile():
    ca = ClassAssembler("cl/Revoker", super_name="java/lang/Thread")
    ca.field("victim", "Ljk/Capability;")
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Thread", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method("run", "()V") as m:
        # let the workers get going, then revoke mid-traffic
        m.emit(ICONST, 0)
        m.emit(ISTORE, 1)
        loop = m.here()
        m.emit(ILOAD, 1)
        m.emit(ICONST, 4)
        done = m.label("done")
        m.emit(IF_ICMPGE, done)
        m.emit(INVOKESTATIC, "java/lang/Thread", "yield", "()V")
        m.emit(IINC, 1, 1)
        m.emit(GOTO, loop.pc)
        m.mark(done)
        m.emit(ALOAD, 0)
        m.emit(GETFIELD, "cl/Revoker", "victim")
        m.emit(INVOKEVIRTUAL, "jk/Capability", "revoke", "()V")
        m.emit(RETURN)
    return ca.build()


def _set_field(obj, name, value):
    obj.fields[obj.jclass.field_slots[name]] = value


def _get_field(obj, name):
    return obj.fields[obj.jclass.field_slots[name]]


def _assert_no_stale_segment_reuse(threads):
    """Every live segment is on exactly one stack with a live incarnation;
    every pooled segment is retired and on no stack."""
    active_ids = set()
    for thread in threads:
        for segment in thread.segments:
            assert segment.state[0], "dead incarnation on an active stack"
            assert id(segment) not in active_ids, (
                "one segment object active on two stacks"
            )
            active_ids.add(id(segment))
    for thread in threads:
        for segment in thread.segment_pool:
            assert not segment.state[0], "pooled segment still live"
            assert id(segment) not in active_ids, (
                "pooled segment simultaneously on an active stack"
            )


@pytest.mark.parametrize("profile", ["msvm", "sunvm"])
def test_pooled_segments_under_revocation_storm(profile):
    kernel = JKernelVM(profile=profile)
    vm = kernel.vm
    server = kernel.new_domain("server")
    client = kernel.new_domain("client")
    server.define(_service_classfiles())
    target = vm.construct(server.load("svc/StressImpl"),
                          domain_tag=server.tag)
    victim = server.create_capability(target)
    stable = server.create_capability(target)
    client.share_from(server, IFACE)
    client.define([_worker_classfile(), _revoker_classfile()])

    workers = []
    for _ in range(WORKERS):
        worker = vm.construct(client.load("cl/Worker"),
                              domain_tag=client.tag)
        _set_field(worker, "cap", victim)
        _set_field(worker, "stable", stable)
        vm.pinned.add(worker)
        vm.call_virtual(worker, "start", "()V", domain_tag=client.tag)
        workers.append(worker)
    revoker = vm.construct(client.load("cl/Revoker"),
                           domain_tag=client.tag)
    _set_field(revoker, "victim", victim)
    vm.pinned.add(revoker)
    vm.call_virtual(revoker, "start", "()V", domain_tag=client.tag)

    contexts = [w.native for w in workers] + [revoker.native]
    # drive in slices, checking the reuse invariants mid-flight
    for _ in range(400):
        if all(not c.alive for c in contexts):
            break
        vm.scheduler.run_for(300)
        _assert_no_stale_segment_reuse(vm.scheduler.threads)
    assert all(not c.alive for c in contexts), "storm did not finish"

    # RevokedException is the only failure mode — and it was caught, so
    # no worker may have died with anything uncaught.
    for context in contexts:
        assert context.uncaught is None
        assert not context.segments
        assert context.domain_tag == client.tag

    total_ok = sum(_get_field(w, "ok") for w in workers)
    saw_revoked = [w for w in workers if _get_field(w, "sawRevoked")]
    # every round either succeeded or was the (single) caught revocation
    assert total_ok + len(saw_revoked) == WORKERS * CALLS_PER_WORKER
    # the revoker really interrupted live traffic
    assert saw_revoked
    # the victim really is dead, the stable capability really is alive
    assert vm.call_virtual(victim, "isRevoked", "()Z") == 1
    assert vm.call_virtual(stable, "isRevoked", "()Z") == 0


@pytest.mark.parametrize("profile", ["msvm", "sunvm"])
def test_segment_pool_reuse_is_bounded_and_recycled(profile):
    """A deep burst of sequential LRMIs must recycle pooled segments
    instead of growing the pool or allocating per call."""
    kernel = JKernelVM(profile=profile)
    vm = kernel.vm
    server = kernel.new_domain("server")
    client = kernel.new_domain("client")
    server.define(_service_classfiles())
    target = vm.construct(server.load("svc/StressImpl"),
                          domain_tag=server.tag)
    cap = server.create_capability(target)
    client.share_from(server, IFACE)

    driver = ClassAssembler("cl/Burst")
    with driver.method("burst", f"(L{IFACE};I)I", 0x0009) as m:
        m.emit(ICONST, 0)
        m.emit(ISTORE, 2)
        loop = m.here()
        m.emit(ILOAD, 2)
        m.emit(ILOAD, 1)
        done = m.label("done")
        m.emit(IF_ICMPGE, done)
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "ping", "()I")
        m.emit(POP)
        m.emit(IINC, 2, 1)
        m.emit(GOTO, loop.pc)
        m.mark(done)
        m.emit(ILOAD, 2)
        m.emit(IRETURN)
    client.define([driver.build()])
    result = vm.call_static(client.load("cl/Burst"), "burst",
                            f"(L{IFACE};I)I", [cap, 200],
                            domain_tag=client.tag)
    assert result == 200
    burst_thread = vm.scheduler.threads[-1]
    # one non-nested call chain: exactly one pooled segment, reused 200x
    assert len(burst_thread.segment_pool) == 1
    assert not burst_thread.segment_pool[0].state[0]
    assert not burst_thread.segments
