"""The VM-level J-Kernel: generated stub bytecode, copy semantics,
revocation, domains, repository natives."""

import pytest

from repro.jkvm import JKernelVM, generate_stub_classfile, stub_name_for
from repro.jvm import ClassAssembler, interface
from repro.jvm.classfile import CONSTRUCTOR_NAME
from repro.jvm.errors import JThrowable, VMError
from repro.jvm.instructions import (
    ALOAD,
    ARETURN,
    BALOAD,
    BASTORE,
    IADD,
    ICONST,
    ILOAD,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKESTATIC,
    INVOKEVIRTUAL,
    IRETURN,
    LDC_STR,
    RETURN,
)

SERVICE_IFACE = "svc/Service"


def service_interface():
    return interface(
        SERVICE_IFACE,
        [("ping", "()I"), ("add3", "(III)I"), ("fill", "([B)[B")],
        extends=("jk/Remote",),
    )


def service_impl():
    ca = ClassAssembler("svc/ServiceImpl",
                        interfaces=(SERVICE_IFACE, "jk/Remote"))
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method("ping", "()I") as m:
        m.emit(ICONST, 99)
        m.emit(IRETURN)
    with ca.method("add3", "(III)I") as m:
        m.emit(ILOAD, 1)
        m.emit(ILOAD, 2)
        m.emit(IADD)
        m.emit(ILOAD, 3)
        m.emit(IADD)
        m.emit(IRETURN)
    with ca.method("fill", "([B)[B") as m:
        m.emit(ALOAD, 1)
        m.emit(ICONST, 0)
        m.emit(ICONST, 77)
        m.emit(BASTORE)
        m.emit(ALOAD, 1)
        m.emit(ARETURN)
    return ca.build()


@pytest.fixture(params=["msvm", "sunvm"])
def kernel(request):
    return JKernelVM(profile=request.param)


@pytest.fixture()
def world(kernel):
    server = kernel.new_domain("server")
    client = kernel.new_domain("client")
    server.define([service_interface(), service_impl()])
    target = kernel.vm.construct(
        server.load("svc/ServiceImpl"), domain_tag=server.tag
    )
    capability = server.create_capability(target)
    client.share_from(server, SERVICE_IFACE)
    return kernel, server, client, capability, target


def client_driver(client):
    ca = ClassAssembler("cl/Driver")
    with ca.method("ping", f"(L{SERVICE_IFACE};)I", 0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, SERVICE_IFACE, "ping", "()I")
        m.emit(IRETURN)
    with ca.method("fillThenReadLocal", f"(L{SERVICE_IFACE};[B)I",
                   0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, SERVICE_IFACE, "fill", "([B)[B")
        m.emit(ICONST, 0)
        m.emit(BALOAD)  # returned copy's first byte
        m.emit(ALOAD, 1)
        m.emit(ICONST, 0)
        m.emit(BALOAD)  # local buffer's first byte
        m.emit(IADD)
        m.emit(IRETURN)
    client.define([ca.build()])
    return client.load("cl/Driver")


class TestStubGeneration:
    def test_stub_classfile_shape(self, world):
        kernel, server, _, capability, target = world
        stub_class = capability.jclass
        assert stub_class.name == stub_name_for(target.jclass)
        assert stub_class.superclass.name == "jk/Capability"
        iface_names = {iface.name for iface in stub_class.all_interfaces}
        assert SERVICE_IFACE in iface_names
        assert "jk/Remote" in iface_names

    def test_stub_fields_private(self, world):
        _, _, _, capability, _ = world
        from repro.jvm.classfile import ACC_PRIVATE

        for field_def in capability.jclass.instance_field_defs:
            assert field_def.flags & ACC_PRIVATE

    def test_stub_passes_verifier(self, world):
        # define() verified the stub already; re-verify explicitly.
        kernel, server, _, capability, _ = world
        from repro.jvm.verifier import verify_class

        verify_class(kernel.vm, capability.jclass)

    def test_stub_class_cached_per_target_class(self, world):
        kernel, server, _, capability, target = world
        second_target = kernel.vm.construct(
            target.jclass, domain_tag=server.tag
        )
        second = server.create_capability(second_target)
        assert second.jclass is capability.jclass
        assert second is not capability

    def test_no_remote_interface_rejected(self, kernel):
        domain = kernel.new_domain("plain")
        plain = ClassAssembler("p/Plain")
        with plain.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME,
                   "()V")
            m.emit(RETURN)
        domain.define([plain.build()])
        obj = kernel.vm.construct(domain.load("p/Plain"),
                                  domain_tag=domain.tag)
        with pytest.raises(VMError, match="no interface extending"):
            domain.create_capability(obj)


class TestLrmiSemantics:
    def test_null_call(self, world):
        kernel, _, client, capability, _ = world
        driver = client_driver(client)
        assert kernel.vm.call_static(
            driver, "ping", f"(L{SERVICE_IFACE};)I", [capability],
            domain_tag=client.tag,
        ) == 99

    def test_arguments_copied_caller_buffer_isolated(self, world):
        kernel, _, client, capability, _ = world
        driver = client_driver(client)
        buffer = kernel.vm.heap.new_array(
            kernel.vm.array_class_for_descriptor("[B", kernel.vm.boot_loader),
            4, owner=client.tag,
        )
        result = kernel.vm.call_static(
            driver, "fillThenReadLocal", f"(L{SERVICE_IFACE};[B)I",
            [capability, buffer], domain_tag=client.tag,
        )
        # returned copy was mutated (77), caller's buffer was not (0)
        assert result == 77
        assert buffer.elems == [0, 0, 0, 0]

    def test_copies_charged_to_callee_domain(self, world):
        kernel, server, client, capability, _ = world
        driver = client_driver(client)
        buffer = kernel.vm.heap.new_array(
            kernel.vm.array_class_for_descriptor("[B", kernel.vm.boot_loader),
            64, owner=client.tag,
        )
        before = kernel.vm.heap.stats(server.tag).allocated_bytes
        kernel.vm.call_static(
            driver, "fillThenReadLocal", f"(L{SERVICE_IFACE};[B)I",
            [capability, buffer], domain_tag=client.tag,
        )
        after = kernel.vm.heap.stats(server.tag).allocated_bytes
        assert after > before  # the argument copy landed on the server

    def test_segment_restored_after_callee_throw(self, world):
        kernel, server, client, capability, _ = world
        # a service whose method throws
        thrower_iface = interface(
            "svc/Thrower", [("boom", "()I")], extends=("jk/Remote",)
        )
        ca = ClassAssembler("svc/ThrowerImpl",
                            interfaces=("svc/Thrower", "jk/Remote"))
        with ca.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME,
                   "()V")
            m.emit(RETURN)
        with ca.method("boom", "()I") as m:
            m.emit("new", "java/lang/IllegalStateException")
            m.emit("dup")
            m.emit(INVOKESPECIAL, "java/lang/IllegalStateException",
                   "<init>", "()V")
            m.emit("athrow")
        server.define([thrower_iface, ca.build()])
        target = kernel.vm.construct(server.load("svc/ThrowerImpl"),
                                     domain_tag=server.tag)
        cap = server.create_capability(target)
        client.share_from(server, "svc/Thrower")
        drv = ClassAssembler("cl/ThrowDriver")
        with drv.method("call", "(Lsvc/Thrower;)I", 0x0009) as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "svc/Thrower", "boom", "()I")
            m.emit(IRETURN)
        client.define([drv.build()])
        driver = client.load("cl/ThrowDriver")
        with pytest.raises(JThrowable, match="IllegalState"):
            kernel.vm.call_static(driver, "call", "(Lsvc/Thrower;)I",
                                  [cap], domain_tag=client.tag)
        # thread's segment stack must be balanced again
        threads = [t for t in kernel.vm.scheduler.threads]
        assert all(not t.segments for t in threads)

    def test_heap_tag_restored_after_callee_athrow(self, world):
        """Regression: the stub's exception handler restores the caller's
        segment, so an allocation made right after *catching* a callee
        ATHROW must be charged to the caller's heap tag, not the callee's.
        """
        kernel, server, client, _, _ = world
        thrower_iface = interface(
            "svc/Thrower2", [("boom", "()I")], extends=("jk/Remote",)
        )
        ca = ClassAssembler("svc/Thrower2Impl",
                            interfaces=("svc/Thrower2", "jk/Remote"))
        with ca.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME,
                   "()V")
            m.emit(RETURN)
        with ca.method("boom", "()I") as m:
            m.emit("new", "java/lang/IllegalStateException")
            m.emit("dup")
            m.emit(INVOKESPECIAL, "java/lang/IllegalStateException",
                   "<init>", "()V")
            m.emit("athrow")
        server.define([thrower_iface, ca.build()])
        target = kernel.vm.construct(server.load("svc/Thrower2Impl"),
                                     domain_tag=server.tag)
        cap = server.create_capability(target)
        client.share_from(server, "svc/Thrower2")
        drv = ClassAssembler("cl/CatchDriver")
        with drv.method("probe", "(Lsvc/Thrower2;)Ljava/lang/Object;",
                        0x0009) as m:
            start = m.here()
            m.emit(ALOAD, 0)
            m.emit(INVOKEINTERFACE, "svc/Thrower2", "boom", "()I")
            m.emit("pop")
            m.emit("aconst_null")
            m.emit(ARETURN)
            end = m.here()
            handler = m.here()
            m.emit("pop")
            m.emit("new", "java/lang/Object")
            m.emit("dup")
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME,
                   "()V")
            m.emit(ARETURN)
            m.handler(start, end, handler, None)
        client.define([drv.build()])
        driver = client.load("cl/CatchDriver")
        result = kernel.vm.call_static(
            driver, "probe", "(Lsvc/Thrower2;)Ljava/lang/Object;", [cap],
            domain_tag=client.tag,
        )
        assert result is not None
        # the post-catch allocation landed on the *caller's* heap account
        assert kernel.vm.heap.owner_of(result) == client.tag
        call_thread = kernel.vm.scheduler.threads[-1]
        assert call_thread.domain_tag == client.tag
        assert not call_thread.segments


class TestRevocation:
    def test_revoke_via_host(self, world):
        kernel, server, client, capability, _ = world
        driver = client_driver(client)
        server.revoke_capability(capability)
        with pytest.raises(JThrowable, match="RevokedException"):
            kernel.vm.call_static(driver, "ping", f"(L{SERVICE_IFACE};)I",
                                  [capability], domain_tag=client.tag)

    def test_revoke_via_guest_native(self, world):
        kernel, _, client, capability, _ = world
        kernel.vm.call_virtual(capability, "revoke", "()V")
        assert kernel.vm.call_virtual(capability, "isRevoked", "()Z") == 1

    def test_termination_revokes_all(self, world):
        kernel, server, client, capability, _ = world
        driver = client_driver(client)
        server.terminate()
        assert server.terminated
        with pytest.raises(JThrowable, match="RevokedException"):
            kernel.vm.call_static(driver, "ping", f"(L{SERVICE_IFACE};)I",
                                  [capability], domain_tag=client.tag)

    def test_revocation_frees_target_memory(self, world):
        kernel, server, client, capability, target = world
        kernel.vm.pinned.add(capability)  # client still holds the stub
        server.revoke_capability(capability)
        del target
        stats = kernel.vm.collect()
        live_impls = [
            obj for obj in kernel.vm.heap.live_objects()
            if getattr(getattr(obj, "jclass", None), "name", "")
            == "svc/ServiceImpl"
        ]
        assert live_impls == []  # the target was collected
        assert kernel.vm.heap.contains(capability)  # the stub survives

    def test_terminated_domain_rejects_new_work(self, world):
        kernel, server, _, _, _ = world
        server.terminate()
        with pytest.raises(VMError, match="terminated"):
            server.define([interface("x/I", [], extends=("jk/Remote",))])


class TestSharingRules:
    def test_share_requires_no_statics(self, kernel):
        domain_a = kernel.new_domain("share-a")
        domain_b = kernel.new_domain("share-b")
        from repro.jvm.classfile import ACC_PUBLIC, ACC_STATIC, FieldDef

        ca = ClassAssembler("s/WithStatic")
        ca.field("counter", "I", ACC_PUBLIC | ACC_STATIC)
        with ca.method(CONSTRUCTOR_NAME, "()V") as m:
            m.emit(ALOAD, 0)
            m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME,
                   "()V")
            m.emit(RETURN)
        domain_a.define([ca.build()])
        with pytest.raises(VMError, match="static fields"):
            domain_b.share_from(domain_a, "s/WithStatic")

    def test_namespaces_isolated_without_sharing(self, kernel):
        domain_a = kernel.new_domain("iso-a")
        domain_b = kernel.new_domain("iso-b")
        domain_a.define([service_interface()])
        from repro.jvm import ClassNotFoundError

        with pytest.raises(ClassNotFoundError):
            domain_b.load(SERVICE_IFACE)


class TestRepositoryNatives:
    def test_guest_bind_and_lookup(self, world):
        kernel, server, client, capability, _ = world
        kernel.bind("svc", capability)
        driver_ca = ClassAssembler("cl/Repo")
        with driver_ca.method("fetchAndPing", "()I", 0x0009) as m:
            m.emit(LDC_STR, "svc")
            m.emit(INVOKESTATIC, "jk/Repository", "lookup",
                   "(Ljava/lang/String;)Ljava/lang/Object;")
            m.emit("checkcast", SERVICE_IFACE)
            m.emit(INVOKEINTERFACE, SERVICE_IFACE, "ping", "()I")
            m.emit(IRETURN)
        client.define([driver_ca.build()])
        result = kernel.vm.call_static(
            client.load("cl/Repo"), "fetchAndPing", "()I", [],
            domain_tag=client.tag,
        )
        assert result == 99

    def test_bind_non_capability_rejected(self, world):
        kernel, server, _, _, _ = world
        plain = kernel.vm.heap.new_object(kernel.vm.object_class)
        with pytest.raises(VMError, match="only capabilities"):
            kernel.bind("bad", plain)

    def test_double_bind_rejected(self, world):
        kernel, _, _, capability, _ = world
        kernel.bind("one", capability)
        with pytest.raises(VMError, match="already bound"):
            kernel.bind("one", capability)

    def test_current_domain_name_native(self, world):
        kernel, server, client, capability, _ = world
        ca = ClassAssembler("cl/Who")
        with ca.method("who", "()Ljava/lang/String;", 0x0009) as m:
            m.emit(INVOKESTATIC, "jk/Kernel", "currentDomainName",
                   "()Ljava/lang/String;")
            m.emit(ARETURN)
        client.define([ca.build()])
        result = kernel.vm.call_static(
            client.load("cl/Who"), "who", "()Ljava/lang/String;", [],
            domain_tag=client.tag,
        )
        assert kernel.vm.text_of(result) == "<system>"
