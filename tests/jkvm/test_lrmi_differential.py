"""Differential LRMI testing: hosted kernel vs VM kernel.

The J-Kernel exists twice in this repo — the hosted implementation over
Python objects (``repro.core``) and the enforced implementation over
verified bytecode on the MiniJVM (``repro.jkvm``).  The paper describes
*one* calling convention; this suite runs the same scenario matrix through
both implementations and normalizes what the caller observes, so the two
can never silently diverge:

* null call, int-argument call (values returned unchanged),
* reference arguments (callee mutations invisible to the caller; the
  returned copy carries them),
* immutable ``String`` arguments (pass by reference, value preserved),
* revocation before a call and revocation *during* a call (the in-flight
  call completes; the next one fails),
* callee exceptions (propagate to the caller with the caller's domain
  context restored),
* cross-domain re-entry (A -> B -> A nested segments).

Each scenario produces an implementation-independent outcome tuple;
the matrix asserts hosted == VM, then spot-checks the per-side invariants
(segment stacks balanced, heap/domain context restored).
"""

import pytest

from repro.core import Capability, Domain, Remote, RevokedException
from repro.jkvm import JKernelVM
from repro.jvm import ClassAssembler, interface
from repro.jvm.classfile import CONSTRUCTOR_NAME
from repro.jvm.errors import JThrowable
from repro.jvm.instructions import (
    ALOAD,
    ARETURN,
    ATHROW,
    BALOAD,
    BASTORE,
    CHECKCAST,
    DUP,
    GOTO,
    IADD,
    ICONST,
    ILOAD,
    INVOKEINTERFACE,
    INVOKESPECIAL,
    INVOKEVIRTUAL,
    IRETURN,
    NEW,
    RETURN,
)

PUBLIC_STATIC = 0x0009

IFACE = "svc/IDiff"

OK = "ok"
REVOKED = "revoked"
CALLEE_EXCEPTION = "callee-exception"


# ---------------------------------------------------------------------------
# hosted world
# ---------------------------------------------------------------------------

class IDiff(Remote):
    def ping(self): ...
    def add3(self, a, b, c): ...
    def fill(self, buf): ...
    def echo(self, text): ...
    def boom(self): ...
    def revoke_it(self, cap): ...
    def call_back(self, cb): ...
    def bump(self, outer): ...


class HostedImpl(IDiff):
    def ping(self):
        return 99

    def add3(self, a, b, c):
        return a + b + c

    def fill(self, buf):
        buf[0] = 77
        return buf

    def echo(self, text):
        return text

    def boom(self):
        raise RuntimeError("boom")

    def revoke_it(self, cap):
        cap.revoke()
        return 1

    def call_back(self, cb):
        return cb.ping() + 1

    def bump(self, outer):
        inner = outer[0]
        inner[0] += 1
        return inner


class HostedPing(IDiff):
    """Client-side target for the re-entry scenario."""

    def ping(self):
        return 99

    def add3(self, a, b, c): ...
    def fill(self, buf): ...
    def echo(self, text): ...
    def boom(self): ...
    def revoke_it(self, cap): ...
    def call_back(self, cb): ...
    def bump(self, outer): ...


class HostedWorld:
    name = "hosted"

    def __init__(self):
        self.server = Domain("diff-server")
        self.client = Domain("diff-client")
        self.cap = self.server.run(lambda: Capability.create(HostedImpl()))

    def _call(self, fn):
        try:
            return self.client.run(fn)
        except RevokedException:
            return (REVOKED,)
        except RuntimeError:
            return (CALLEE_EXCEPTION,)

    def null_call(self):
        result = self._call(lambda: self.cap.ping())
        return result if isinstance(result, tuple) else (OK, result)

    def int_args(self):
        result = self._call(lambda: self.cap.add3(1, 2, 3))
        return result if isinstance(result, tuple) else (OK, result)

    def reference_args(self):
        buf = [0, 0, 0, 0]  # mirrors the VM-side byte array
        result = self._call(lambda: self.cap.fill(buf))
        if isinstance(result, tuple):
            return result
        return (OK, result[0], buf[0])

    def string_arg(self):
        result = self._call(lambda: self.cap.echo("hello"))
        return result if isinstance(result, tuple) else (OK, result)

    def revoked_call(self):
        self.server.run(self.cap.revoke)
        return self.null_call()

    def revoke_mid_call(self):
        first = self._call(lambda: self.cap.revoke_it(self.cap))
        if isinstance(first, tuple):
            return first
        after = self.null_call()
        return (OK, first) + after

    def callee_throw(self):
        outcome = self._call(lambda: self.cap.boom())
        from repro.core import current_domain

        # unwound cleanly: the calling thread is back outside any segment
        assert current_domain() is None
        return outcome if isinstance(outcome, tuple) else (OK, outcome)

    def reentry(self):
        callback = self.client.run(
            lambda: Capability.create(HostedPing())
        )
        result = self._call(lambda: self.cap.call_back(callback))
        return result if isinstance(result, tuple) else (OK, result)

    def graph_args(self):
        inner = [5]
        outer = [inner]  # two-level graph: copy must recurse
        result = self._call(lambda: self.cap.bump(outer))
        if isinstance(result, tuple):
            return result
        # callee bumped its *copy* of the inner node and returned it
        return (OK, result[0], inner[0])


# ---------------------------------------------------------------------------
# VM world
# ---------------------------------------------------------------------------

def _iface_classfile():
    return interface(
        IFACE,
        [
            ("ping", "()I"),
            ("add3", "(III)I"),
            ("fill", "([B)[B"),
            ("echo", "(Ljava/lang/String;)Ljava/lang/String;"),
            ("boom", "()I"),
            ("revokeIt", f"(L{IFACE};)I"),
            ("callBack", f"(L{IFACE};)I"),
            ("bump", "(Lsvc/Node;)Lsvc/Node;"),
        ],
        extends=("jk/Remote",),
    )


def _node_classfile():
    """A linked guest object: exercises the deep copier's reference-slot
    plan and back-reference memo when it crosses domains."""
    ca = ClassAssembler("svc/Node")
    ca.field("val", "I")
    ca.field("next", "Lsvc/Node;")
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    return ca.build()


def _impl_classfile(name="svc/DiffImpl", ping_value=99):
    ca = ClassAssembler(name, interfaces=(IFACE, "jk/Remote"))
    with ca.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with ca.method("ping", "()I") as m:
        m.emit(ICONST, ping_value)
        m.emit(IRETURN)
    with ca.method("add3", "(III)I") as m:
        m.emit(ILOAD, 1)
        m.emit(ILOAD, 2)
        m.emit(IADD)
        m.emit(ILOAD, 3)
        m.emit(IADD)
        m.emit(IRETURN)
    with ca.method("fill", "([B)[B") as m:
        m.emit(ALOAD, 1)
        m.emit(ICONST, 0)
        m.emit(ICONST, 77)
        m.emit(BASTORE)
        m.emit(ALOAD, 1)
        m.emit(ARETURN)
    with ca.method("echo", "(Ljava/lang/String;)Ljava/lang/String;") as m:
        m.emit(ALOAD, 1)
        m.emit(ARETURN)
    with ca.method("boom", "()I") as m:
        m.emit(NEW, "java/lang/IllegalStateException")
        m.emit(DUP)
        m.emit(INVOKESPECIAL, "java/lang/IllegalStateException",
               CONSTRUCTOR_NAME, "()V")
        m.emit(ATHROW)
    with ca.method("revokeIt", f"(L{IFACE};)I") as m:
        m.emit(ALOAD, 1)
        m.emit(CHECKCAST, "jk/Capability")
        m.emit(INVOKEVIRTUAL, "jk/Capability", "revoke", "()V")
        m.emit(ICONST, 1)
        m.emit(IRETURN)
    with ca.method("callBack", f"(L{IFACE};)I") as m:
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, IFACE, "ping", "()I")
        m.emit(ICONST, 1)
        m.emit(IADD)
        m.emit(IRETURN)
    with ca.method("bump", "(Lsvc/Node;)Lsvc/Node;") as m:
        # m = n.next; m.val += 1; return m
        m.emit(ALOAD, 1)
        m.emit("getfield", "svc/Node", "next")
        m.emit("astore", 2)
        m.emit(ALOAD, 2)
        m.emit(ALOAD, 2)
        m.emit("getfield", "svc/Node", "val")
        m.emit(ICONST, 1)
        m.emit(IADD)
        m.emit("putfield", "svc/Node", "val")
        m.emit(ALOAD, 2)
        m.emit(ARETURN)
    return ca.build()


def _driver_classfile():
    """Client-side entry points, one static method per scenario leg."""
    ca = ClassAssembler("cl/DiffDriver")
    with ca.method("ping", f"(L{IFACE};)I", PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "ping", "()I")
        m.emit(IRETURN)
    with ca.method("add3", f"(L{IFACE};)I", PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(ICONST, 1)
        m.emit(ICONST, 2)
        m.emit(ICONST, 3)
        m.emit(INVOKEINTERFACE, IFACE, "add3", "(III)I")
        m.emit(IRETURN)
    with ca.method("fillSum", f"(L{IFACE};[B)I", PUBLIC_STATIC) as m:
        # returns 10 * returned_copy[0] + caller_buffer[0]
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, IFACE, "fill", "([B)[B")
        m.emit(ICONST, 0)
        m.emit(BALOAD)
        m.emit(ICONST, 10)
        m.emit("imul")
        m.emit(ALOAD, 1)
        m.emit(ICONST, 0)
        m.emit(BALOAD)
        m.emit(IADD)
        m.emit(IRETURN)
    with ca.method("echo",
                   f"(L{IFACE};Ljava/lang/String;)Ljava/lang/String;",
                   PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, IFACE, "echo",
               "(Ljava/lang/String;)Ljava/lang/String;")
        m.emit(ARETURN)
    with ca.method("boom", f"(L{IFACE};)I", PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "boom", "()I")
        m.emit(IRETURN)
    with ca.method("revokeIt", f"(L{IFACE};)I", PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "revokeIt", f"(L{IFACE};)I")
        m.emit(IRETURN)
    with ca.method("callBack", f"(L{IFACE};L{IFACE};)I", PUBLIC_STATIC) as m:
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, IFACE, "callBack", f"(L{IFACE};)I")
        m.emit(IRETURN)
    with ca.method("bumpGraph",
                   f"(L{IFACE};Lsvc/Node;Lsvc/Node;)I", PUBLIC_STATIC) as m:
        # returns returned_node.val * 10 + caller_inner_node.val
        m.emit(ALOAD, 0)
        m.emit(ALOAD, 1)
        m.emit(INVOKEINTERFACE, IFACE, "bump", "(Lsvc/Node;)Lsvc/Node;")
        m.emit("getfield", "svc/Node", "val")
        m.emit(ICONST, 10)
        m.emit("imul")
        m.emit(ALOAD, 2)
        m.emit("getfield", "svc/Node", "val")
        m.emit(IADD)
        m.emit(IRETURN)
    # boomCaught: catch the callee's exception in guest code, then prove
    # the thread still runs client-side by completing a second LRMI.
    with ca.method("boomCaught", f"(L{IFACE};)I", PUBLIC_STATIC) as m:
        start = m.here()
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "boom", "()I")
        m.emit(IRETURN)
        end = m.here()
        handler = m.here()
        m.emit("pop")
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, IFACE, "ping", "()I")
        m.emit(IRETURN)
        m.handler(start, end, handler, "java/lang/IllegalStateException")
    return ca.build()


class VMWorld:
    name = "vm"

    def __init__(self, profile="sunvm"):
        self.kernel = JKernelVM(profile=profile)
        self.vm = self.kernel.vm
        self.server = self.kernel.new_domain("diff-server")
        self.client = self.kernel.new_domain("diff-client")
        self.server.define([_node_classfile(), _iface_classfile(),
                            _impl_classfile()])
        target = self.vm.construct(
            self.server.load("svc/DiffImpl"), domain_tag=self.server.tag
        )
        self.cap = self.server.create_capability(target)
        self.client.share_from(self.server, IFACE)
        self.client.share_from(self.server, "svc/Node")
        self.client.define([_driver_classfile()])
        self.driver = self.client.load("cl/DiffDriver")

    def _call(self, method, desc, args):
        try:
            return self.vm.call_static(
                self.driver, method, desc, args, domain_tag=self.client.tag
            )
        except JThrowable as exc:
            name = exc.jobject.jclass.name
            if name == "jk/RevokedException":
                return (REVOKED,)
            return (CALLEE_EXCEPTION,)

    def null_call(self):
        result = self._call("ping", f"(L{IFACE};)I", [self.cap])
        return result if isinstance(result, tuple) else (OK, result)

    def int_args(self):
        result = self._call("add3", f"(L{IFACE};)I", [self.cap])
        return result if isinstance(result, tuple) else (OK, result)

    def reference_args(self):
        buf = self.vm.heap.new_array(
            self.vm.array_class_for_descriptor("[B", self.vm.boot_loader),
            4, owner=self.client.tag,
        )
        result = self._call("fillSum", f"(L{IFACE};[B)I", [self.cap, buf])
        if isinstance(result, tuple):
            return result
        # fillSum packed both observations: returned[0] * 10 + caller[0]
        return (OK, result // 10, result % 10)

    def string_arg(self):
        text = self.vm.new_string("hello", owner=self.client.tag)
        result = self._call(
            "echo", f"(L{IFACE};Ljava/lang/String;)Ljava/lang/String;",
            [self.cap, text],
        )
        if isinstance(result, tuple):
            return result
        return (OK, self.vm.text_of(result))

    def revoked_call(self):
        self.server.revoke_capability(self.cap)
        return self.null_call()

    def revoke_mid_call(self):
        first = self._call("revokeIt", f"(L{IFACE};)I", [self.cap])
        if isinstance(first, tuple):
            return first
        after = self.null_call()
        return (OK, first) + after

    def callee_throw(self):
        outcome = self._call("boom", f"(L{IFACE};)I", [self.cap])
        # unwound cleanly: no dangling segments on any guest thread
        assert all(not t.segments for t in self.vm.scheduler.threads)
        return outcome if isinstance(outcome, tuple) else (OK, outcome)

    def graph_args(self):
        node_class = self.client.load("svc/Node")
        inner = self.vm.construct(node_class, domain_tag=self.client.tag)
        inner.fields[node_class.field_slots["val"]] = 5
        head = self.vm.construct(node_class, domain_tag=self.client.tag)
        head.fields[node_class.field_slots["next"]] = inner
        result = self._call(
            "bumpGraph", f"(L{IFACE};Lsvc/Node;Lsvc/Node;)I",
            [self.cap, head, inner],
        )
        if isinstance(result, tuple):
            return result
        return (OK, result // 10, result % 10)

    def reentry(self):
        self.client.define([_impl_classfile(name="cl/PingImpl")])
        target = self.vm.construct(
            self.client.load("cl/PingImpl"), domain_tag=self.client.tag
        )
        callback = self.client.create_capability(target)
        result = self._call(
            "callBack", f"(L{IFACE};L{IFACE};)I", [self.cap, callback]
        )
        return result if isinstance(result, tuple) else (OK, result)


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------

SCENARIOS = {
    "null_call": (OK, 99),
    "int_args": (OK, 6),
    # callee saw its copy and mutated it (77); the caller's buffer kept 0
    "reference_args": (OK, 77, 0),
    "string_arg": (OK, "hello"),
    "revoked_call": (REVOKED,),
    # the in-flight call survives its own revocation; the next one fails
    "revoke_mid_call": (OK, 1, REVOKED),
    "callee_throw": (CALLEE_EXCEPTION,),
    "reentry": (OK, 100),
    # the callee bumped the copied graph; the caller's nodes kept 5
    "graph_args": (OK, 6, 5),
}


def _world_pairs():
    return [
        ("sunvm", lambda: (HostedWorld(), VMWorld("sunvm"))),
        ("msvm", lambda: (HostedWorld(), VMWorld("msvm"))),
    ]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("profile", ["sunvm", "msvm"])
def test_hosted_and_vm_agree(scenario, profile):
    hosted = HostedWorld()
    vm_world = VMWorld(profile)
    expected = SCENARIOS[scenario]
    hosted_outcome = getattr(hosted, scenario)()
    vm_outcome = getattr(vm_world, scenario)()
    assert hosted_outcome == vm_outcome, (
        f"{scenario}: hosted={hosted_outcome} vm={vm_outcome}"
    )
    assert hosted_outcome == expected


def test_exception_unwind_leaves_caller_usable_vm():
    """After a callee throw is *caught in guest code*, the same guest
    thread must keep running with the caller's domain context (a further
    LRMI through a live capability succeeds)."""
    world = VMWorld()
    result = world.vm.call_static(
        world.driver, "boomCaught", f"(L{IFACE};)I", [world.cap],
        domain_tag=world.client.tag,
    )
    assert result == 99


def test_string_identity_shared_across_domains_vm():
    """The VM convention shares immutable Strings by reference (stubgen's
    copy-skip): the callee must observe the identical object."""
    world = VMWorld()
    text = world.vm.new_string("shared", owner=world.client.tag)
    result = world.vm.call_static(
        world.driver, "echo",
        f"(L{IFACE};Ljava/lang/String;)Ljava/lang/String;",
        [world.cap, text], domain_tag=world.client.tag,
    )
    assert result is text
