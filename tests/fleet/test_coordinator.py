"""Coordinator basics: knob validation, placement, routing, revocation."""

import time

import pytest

from repro.fleet import (
    FleetCoordinator,
    FleetUnavailableError,
    NoLiveHostError,
    PlacementGoneError,
    TokenRevokedError,
    validate_liveness_knobs,
)
from repro.fleet.coordinator import wait_until

pytestmark = pytest.mark.timeout(120)


class TestLivenessKnobValidation:
    """Satellite: ping_deadline and heartbeat_interval can silently
    conflict — a deadline longer than the interval means an in-flight
    ping scores the next beat as missed, spuriously evicting a slow
    host.  The conflict is rejected at construction."""

    def test_ping_deadline_longer_than_interval_rejected(self):
        with pytest.raises(ValueError) as err:
            validate_liveness_knobs(ping_deadline=0.5,
                                    heartbeat_interval=0.1, max_missed=3)
        assert "spuriously evict" in str(err.value)

    def test_equal_deadline_and_interval_allowed(self):
        validate_liveness_knobs(ping_deadline=0.1,
                                heartbeat_interval=0.1, max_missed=3)

    @pytest.mark.parametrize("kwargs", [
        {"ping_deadline": 0, "heartbeat_interval": 1, "max_missed": 3},
        {"ping_deadline": 1, "heartbeat_interval": 0, "max_missed": 3},
        {"ping_deadline": 0.1, "heartbeat_interval": 1, "max_missed": 0},
    ])
    def test_degenerate_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            validate_liveness_knobs(**kwargs)

    def test_coordinator_constructor_validates(self):
        with pytest.raises(ValueError):
            FleetCoordinator(heartbeat_interval=0.1, ping_deadline=0.5)

    def test_ping_deadline_defaults_to_interval(self):
        coordinator = FleetCoordinator(heartbeat_interval=0.2)
        assert coordinator.ping_deadline == 0.2

    def test_blackout_hint_covers_detection_window(self):
        coordinator = FleetCoordinator(heartbeat_interval=0.1,
                                       max_missed=3)
        assert coordinator.blackout_hint >= 0.3


class TestPlacement:
    def test_place_and_call_round_trip(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        assert coordinator.call(token, "echo", "hello") == "hello"
        assert coordinator.call(token, "shout", "hello") == "HELLO"

    def test_placement_spreads_by_load(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        for index in range(4):
            coordinator.place(f"svc-{index}", "echo")
        by_host = {}
        for _, host_id in coordinator.placements().items():
            by_host[host_id] = by_host.get(host_id, 0) + 1
        assert by_host == {"h1": 2, "h2": 2}

    def test_no_live_host_is_typed(self, fleet):
        coordinator = fleet()
        with pytest.raises(NoLiveHostError):
            coordinator.place("front", "echo")

    def test_duplicate_placement_name_rejected(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.place("front", "echo")
        with pytest.raises(ValueError):
            coordinator.place("front", "echo")

    def test_lookup_unknown_placement_is_gone(self, fleet):
        coordinator = fleet()
        with pytest.raises(PlacementGoneError):
            coordinator.lookup("never-placed")

    def test_unknown_kind_surfaces_remotely(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        from repro.core import RemoteException

        with pytest.raises(RemoteException):
            coordinator.place("front", "no-such-kind")

    def test_failed_place_rolls_back_the_name_reservation(self, fleet):
        """place() reserves the name under the lock (so a racing
        duplicate fails the existence check, not the insert) and must
        release the reservation on ANY failure — remote or local."""
        from repro.core import RemoteException

        coordinator = fleet()
        with pytest.raises(NoLiveHostError):
            coordinator.place("front", "echo")
        assert "front" not in coordinator.placements()
        coordinator.spawn_host("h1")
        with pytest.raises(RemoteException):
            coordinator.place("front", "no-such-kind")
        assert "front" not in coordinator.placements()
        token = coordinator.place("front", "echo")
        assert coordinator.call(token, "echo", "x") == "x"

    def test_duplicate_host_id_rejected(self, fleet):
        coordinator = fleet()
        host = coordinator.spawn_host("h1")
        with pytest.raises(ValueError):
            coordinator.register_host(host)


class TestCallPath:
    def test_method_outside_token_claims_refused(self, fleet):
        """The token carries the method set it was minted for — the
        host refuses anything else, like a narrowed capability."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        from repro.fleet.tokens import TokenAuthority

        narrowed = TokenAuthority(
            coordinator.tokens.secret,
            coordinator.tokens.epoch).mint(
                "front", methods=("echo",))
        assert coordinator.call(narrowed, "echo", "x") == "x"
        with pytest.raises(PlacementGoneError):
            coordinator.call(narrowed, "shout", "x")

    def test_forged_token_refused_at_front_door(self, fleet):
        from repro.fleet import TokenInvalidError
        from repro.fleet.tokens import TokenAuthority

        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.place("front", "echo")
        forged = TokenAuthority(b"attacker-secret-0123456789abcdef") \
            .mint("front")
        with pytest.raises(TokenInvalidError):
            coordinator.call(forged, "echo", "x")

    def test_heartbeats_flow(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        assert wait_until(lambda: coordinator.heartbeats_sent >= 3)


class TestRevocation:
    def test_revoked_token_fails_locally_at_once(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        assert coordinator.call(token, "echo", "x") == "x"
        coordinator.revoke(token)
        with pytest.raises(TokenRevokedError):
            coordinator.call(token, "echo", "y")

    def test_revocation_reaches_hosts_by_broadcast(self, fleet):
        """Defence in depth: after the sweeper's broadcast the HOST
        refuses the token id too, even if the coordinator's own check
        were bypassed."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        coordinator.revoke(token)
        record = coordinator._hosts["h1"]

        def host_knows():
            from repro.fleet.proto import decode_reply, encode_request

            body = record.control.call("stats", encode_request({}))
            return decode_reply(body)["revoked"] >= 1

        assert wait_until(host_knows)
        # And the pending set drains once delivered.
        assert wait_until(
            lambda: not coordinator._pending_revocations)

    def test_late_registered_host_hears_prior_revocations(self, fleet):
        """A host that joins AFTER a revocation was flushed still gets
        the full revoked-id set at registration — no hole in the
        host-side defence-in-depth layer."""
        from repro.fleet.proto import decode_reply, encode_request

        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        coordinator.revoke(token)
        assert wait_until(lambda: not coordinator._pending_revocations)
        coordinator.spawn_host("h2")
        record = coordinator._hosts["h2"]
        body = record.control.call("stats", encode_request({}))
        assert decode_reply(body)["revoked"] >= 1

    def test_revocations_pend_with_zero_live_hosts(self, fleet):
        """With nobody to tell, the sweeper must NOT mark the set
        delivered; the first host to register receives it."""
        from repro.fleet.proto import decode_reply, encode_request

        coordinator = fleet()
        token = coordinator.tokens.mint("front", methods=("echo",))
        coordinator.revoke(token)
        time.sleep(0.35)  # several beats fire with zero live hosts
        assert coordinator._pending_revocations
        coordinator.spawn_host("h1")
        record = coordinator._hosts["h1"]
        body = record.control.call("stats", encode_request({}))
        assert decode_reply(body)["revoked"] >= 1

    def test_lookup_after_revoke_mints_a_usable_token(self, fleet):
        """Revocation kills the TOKEN, not the placement."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        coordinator.revoke(token)
        fresh = coordinator.lookup("front")
        assert coordinator.call(fresh, "echo", "z") == "z"


class TestLifecycle:
    def test_stop_reaps_spawned_hosts(self, fleet):
        coordinator = fleet()
        h1 = coordinator.spawn_host("h1")
        h2 = coordinator.spawn_host("h2")
        coordinator.stop()
        assert not h1.alive() and not h2.alive()

    def test_stats_shape(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.place("front", "echo", tenant="acme")
        stats = coordinator.stats()
        assert stats["epoch"] == 0
        assert stats["hosts"]["h1"]["state"] == "live"
        assert stats["placements"] == {"front": "h1"}
        assert stats["failovers"] == 0
        assert "quota" in stats

    def test_context_manager(self):
        from tests.fleet.conftest import REGISTRY

        with FleetCoordinator(REGISTRY, heartbeat_interval=0.1) as fleet:
            fleet.spawn_host("h1")
            token = fleet.place("front", "echo")
            assert fleet.call(token, "echo", "x") == "x"
