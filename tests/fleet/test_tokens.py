"""Cross-host capability tokens: unforgeable, epoch-scoped, fail-closed."""

import pytest

from repro.core import RevokedException
from repro.fleet import (
    TokenAuthority,
    TokenError,
    TokenInvalidError,
    TokenStaleError,
)

pytestmark = pytest.mark.timeout(30)

SECRET = b"fleet-test-secret-32-bytes-long!"


class TestMintVerify:
    def test_round_trip_returns_claims(self):
        authority = TokenAuthority(SECRET)
        token = authority.mint("front", tenant="acme",
                               methods=("echo", "shout"))
        claims = authority.verify(token)
        assert claims["placement"] == "front"
        assert claims["tenant"] == "acme"
        assert claims["methods"] == ["echo", "shout"]
        assert claims["epoch"] == 0

    def test_replica_with_same_secret_verifies(self):
        """Hosts hold a replica built from the shared secret; keys
        never cross the wire."""
        coordinator = TokenAuthority(SECRET)
        host_replica = TokenAuthority(SECRET)
        token = coordinator.mint("front")
        assert host_replica.verify(token)["placement"] == "front"

    def test_token_ids_are_unique(self):
        authority = TokenAuthority(SECRET)
        first = authority.verify(authority.mint("front"))
        second = authority.verify(authority.mint("front"))
        assert first["tid"] != second["tid"]


class TestFailClosed:
    def test_wrong_secret_is_a_forgery(self):
        token = TokenAuthority(SECRET).mint("front")
        stranger = TokenAuthority(b"some-other-secret-entirely-here!")
        with pytest.raises(TokenInvalidError):
            stranger.verify(token)

    def test_tampered_claims_are_a_forgery(self):
        authority = TokenAuthority(SECRET)
        token = authority.mint("front")
        body, _, mac = token.rpartition(".")
        tampered = body[:-2] + ("AA" if body[-2:] != "AA" else "BB")
        with pytest.raises(TokenInvalidError):
            authority.verify(tampered + "." + mac)

    @pytest.mark.parametrize("junk", [
        "", "no-dot-here", "a.b", None, 42, "..", "!!!.???",
    ])
    def test_garbage_never_verifies(self, junk):
        authority = TokenAuthority(SECRET)
        with pytest.raises(TokenInvalidError):
            authority.verify(junk)

    def test_token_errors_are_revoked_exceptions(self):
        """An untrusted token is treated exactly like a revoked
        capability: same exception family, same fail-closed handling
        everywhere RevokedException is already caught."""
        assert issubclass(TokenError, RevokedException)
        assert issubclass(TokenStaleError, TokenError)
        assert issubclass(TokenInvalidError, TokenError)


class TestEpochs:
    def test_bump_stales_earlier_tokens(self):
        authority = TokenAuthority(SECRET)
        token = authority.mint("front")
        authority.bump_epoch()
        with pytest.raises(TokenStaleError):
            authority.verify(token)

    def test_stale_is_distinct_from_forged(self):
        """An authentically-signed old-epoch token is STALE — a
        meaningful verdict (rebind via lookup); a bad signature is a
        forgery.  The distinction must not leak trust: both refuse."""
        authority = TokenAuthority(SECRET)
        old = authority.mint("front")
        authority.bump_epoch()
        with pytest.raises(TokenStaleError):
            authority.verify(old)
        # Same token, tampered: forged beats stale.
        body, _, mac = old.rpartition(".")
        with pytest.raises(TokenInvalidError):
            authority.verify(body + "." + mac[:-2] + "zz")

    def test_cannot_claim_a_future_epoch_without_the_key(self):
        """Epoch is authenticated, not advisory: rewriting the claims
        to the current epoch invalidates the signature."""
        import json

        from repro.fleet.tokens import _b64, _unb64

        authority = TokenAuthority(SECRET)
        old = authority.mint("front")
        authority.bump_epoch()
        body_text, _, mac_text = old.rpartition(".")
        claims = json.loads(_unb64(body_text))
        claims["epoch"] = authority.epoch  # attacker edits the claim
        forged_body = _b64(json.dumps(claims, sort_keys=True)
                           .encode("utf-8"))
        with pytest.raises(TokenInvalidError):
            authority.verify(forged_body + "." + mac_text)

    def test_replica_epoch_broadcast_stales_fleet_wide(self):
        coordinator = TokenAuthority(SECRET)
        host_replica = TokenAuthority(SECRET)
        token = coordinator.mint("front")
        new_epoch = coordinator.bump_epoch()
        host_replica.epoch = new_epoch  # the broadcast
        with pytest.raises(TokenStaleError):
            host_replica.verify(token)

    def test_partitioned_host_honours_old_epoch_until_broadcast(self):
        """A host cut off by a partition keeps the old epoch and keeps
        honouring old tokens — which is why the coordinator ALSO
        verifies at the front door; once the broadcast lands the host
        fails closed too."""
        coordinator = TokenAuthority(SECRET)
        partitioned = TokenAuthority(SECRET)
        token = coordinator.mint("front")
        coordinator.bump_epoch()
        assert partitioned.verify(token)["placement"] == "front"  # cut off
        partitioned.epoch = coordinator.epoch  # heal + broadcast
        with pytest.raises(TokenStaleError):
            partitioned.verify(token)


class TestAuthorityConstruction:
    def test_secret_must_be_bytes(self):
        with pytest.raises(TypeError):
            TokenAuthority("stringly-secret")

    def test_generated_secrets_differ(self):
        assert TokenAuthority().secret != TokenAuthority().secret
