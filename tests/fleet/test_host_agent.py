"""FleetHostAgent verbs, exercised in-process.

The e2e suites drive the agent across a fork; these tests call the
verb handlers directly so the agent-side logic (placement table, token
replica, revocation set, usage counters, envelope error mapping) is
pinned — and measured — in the parent process.
"""

import json

import pytest

from repro.core import RemoteException
from repro.fleet import TokenAuthority, TokenRevokedError, TokenStaleError
from repro.fleet.host import FleetHostAgent
from repro.fleet.proto import (
    PlacementGoneError,
    decode_reply,
    encode_request,
    envelope,
)
from tests.fleet.conftest import REGISTRY

pytestmark = pytest.mark.timeout(60)

SECRET = b"agent-test-secret-32-bytes-long!"


@pytest.fixture()
def agent():
    return FleetHostAgent("h-test", REGISTRY, SECRET)


def _mint(agent, placement="front", **kwargs):
    # Tokens authorize exactly the methods they carry (empty = none),
    # so the default grant covers the echo servlet's interface.
    kwargs.setdefault("methods", ("echo", "shout"))
    return TokenAuthority(SECRET, agent.tokens.epoch).mint(
        placement, **kwargs)


class TestPlaceEvict:
    def test_place_returns_exported_methods(self, agent):
        reply = agent.place({"placement_id": "front", "kind": "echo"})
        assert reply["host_id"] == "h-test"
        assert set(reply["methods"]) == {"echo", "shout"}
        assert "front" in agent.placements

    def test_place_unknown_kind_raises(self, agent):
        with pytest.raises(KeyError):
            agent.place({"placement_id": "x", "kind": "nope"})

    def test_evict_terminates_the_domain(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        capability = agent.placements["front"].capability
        assert agent.evict({"placement_id": "front"})["evicted"]
        assert "front" not in agent.placements
        assert capability.creator.terminated

    def test_evict_missing_placement_is_not_an_error(self, agent):
        assert agent.evict({"placement_id": "ghost"}) == \
            {"evicted": False}


class TestInvoke:
    def test_invoke_dispatches_and_charges(self, agent):
        agent.place({"placement_id": "front", "kind": "echo",
                     "tenant": "acme"})
        token = _mint(agent, tenant="acme")
        reply = agent.invoke({"token": token, "method": "echo",
                              "args": ["hi"]})
        assert reply["result"] == "hi"
        usage = agent.quota_report({})["acme"]
        assert usage["requests"] == 1
        assert usage["cpu_ticks"] >= 0

    def test_invoke_untenanted_charges_nothing(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        agent.invoke({"token": _mint(agent), "method": "echo",
                      "args": ["x"]})
        assert agent.quota_report({}) == {}

    def test_stale_epoch_token_refused(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        token = _mint(agent)
        agent.epoch({"epoch": agent.tokens.epoch + 1})
        with pytest.raises(TokenStaleError):
            agent.invoke({"token": token, "method": "echo",
                          "args": ["x"]})

    def test_revoked_tid_refused(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        token = _mint(agent)
        claims = agent.tokens.verify(token)
        agent.revoke({"ids": [claims["tid"]]})
        with pytest.raises(TokenRevokedError):
            agent.invoke({"token": token, "method": "echo",
                          "args": ["x"]})

    def test_method_outside_claims_refused(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        token = _mint(agent, methods=("echo",))
        with pytest.raises(PlacementGoneError):
            agent.invoke({"token": token, "method": "shout",
                          "args": ["x"]})

    def test_empty_method_set_authorizes_nothing(self, agent):
        """Fail closed: a token with NO method claims grants no method
        at all — not every method."""
        agent.place({"placement_id": "front", "kind": "echo"})
        token = _mint(agent, methods=())
        with pytest.raises(PlacementGoneError):
            agent.invoke({"token": token, "method": "echo",
                          "args": ["x"]})

    def test_unexported_method_refused_even_when_claimed(self, agent):
        """Dispatch is bounded by the capability's remote interface:
        a token claiming a non-exported attribute (here the stub's
        ``creator`` backref) must not reach it through getattr."""
        agent.place({"placement_id": "front", "kind": "echo"})
        token = _mint(agent, methods=("creator",))
        with pytest.raises(PlacementGoneError):
            agent.invoke({"token": token, "method": "creator",
                          "args": []})

    def test_unplaced_placement_is_gone(self, agent):
        with pytest.raises(PlacementGoneError):
            agent.invoke({"token": _mint(agent, "never-placed"),
                          "method": "echo", "args": ["x"]})


class TestControlVerbs:
    def test_epoch_broadcast_updates_replica(self, agent):
        assert agent.epoch({"epoch": 4}) == {"epoch": 4}
        assert agent.tokens.epoch == 4

    def test_epoch_broadcast_never_regresses(self, agent):
        """Resends are idempotent and a delayed duplicate of an OLD
        broadcast cannot roll the replica back (which would resurrect
        stale tokens)."""
        agent.epoch({"epoch": 4})
        assert agent.epoch({"epoch": 2}) == {"epoch": 4}
        assert agent.tokens.epoch == 4

    def test_quota_report_is_cumulative_per_tenant(self, agent):
        agent.place({"placement_id": "front", "kind": "echo",
                     "tenant": "acme"})
        token = _mint(agent, tenant="acme")
        for _ in range(3):
            agent.invoke({"token": token, "method": "echo",
                          "args": ["x"]})
        assert agent.quota_report({})["acme"]["requests"] == 3

    def test_stats_shape(self, agent):
        agent.place({"placement_id": "front", "kind": "echo"})
        stats = agent.stats({})
        assert stats["host_id"] == "h-test"
        assert stats["placements"] == ["front"]
        assert stats["epoch"] == 0

    def test_handlers_cover_every_verb(self, agent):
        assert set(agent.handlers()) == {
            "place", "evict", "invoke", "revoke", "epoch",
            "quota_report", "stats",
        }


class TestEnvelope:
    def test_typed_errors_cross_as_their_kind(self, agent):
        handler = agent.handlers()["invoke"]
        body = handler(encode_request(
            {"token": _mint(agent, "ghost"), "method": "echo",
             "args": []}))
        with pytest.raises(PlacementGoneError):
            decode_reply(body)

    def test_success_envelope_round_trips(self, agent):
        handler = agent.handlers()["epoch"]
        assert decode_reply(handler(encode_request({"epoch": 2}))) == \
            {"epoch": 2}

    def test_untyped_errors_become_remote_exceptions(self):
        def bad(request):
            raise RuntimeError("boom")

        body = envelope(bad)(encode_request({}))
        assert not json.loads(body)["ok"]
        with pytest.raises(RemoteException) as err:
            decode_reply(body)
        assert "boom" in str(err.value)

    def test_empty_payload_decodes_as_empty_request(self, agent):
        assert decode_reply(agent.handlers()["stats"](b""))[
            "host_id"] == "h-test"
