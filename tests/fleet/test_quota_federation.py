"""Quota federation: one budget per tenant, no matter how many hosts.

The escape this layer closes: a tenant placed on two hosts would
otherwise spend its budget twice.  And the exactness invariant the
reconcile/fold protocol guarantees: fleet totals survive any host kill
— the dead host's last report retires into the retained base instead of
vanishing.
"""

import pytest

from repro.core.errors import QuotaExceededException
from repro.core.quota import HARD, OK, QuotaSpec
from repro.fleet import QuotaFederation
from repro.fleet.coordinator import wait_until

pytestmark = pytest.mark.timeout(120)


class TestFederationUnit:
    def test_live_reports_replace_not_accumulate(self):
        federation = QuotaFederation()
        federation.ingest("h1", {"acme": {"cpu_ticks": 100,
                                          "requests": 1}})
        federation.ingest("h1", {"acme": {"cpu_ticks": 150,
                                          "requests": 2}})
        assert federation.totals()["acme"]["cpu_ticks"] == 150

    def test_totals_sum_across_hosts(self):
        federation = QuotaFederation()
        federation.ingest("h1", {"acme": {"cpu_ticks": 100}})
        federation.ingest("h2", {"acme": {"cpu_ticks": 40}})
        assert federation.totals()["acme"]["cpu_ticks"] == 140

    def test_fold_retains_dead_host_usage_exactly(self):
        federation = QuotaFederation()
        federation.ingest("h1", {"acme": {"cpu_ticks": 100}})
        federation.ingest("h2", {"acme": {"cpu_ticks": 40}})
        before = federation.totals()["acme"]["cpu_ticks"]
        federation.fold_host("h1")
        assert federation.totals()["acme"]["cpu_ticks"] == before
        # A replacement host reporting from zero never resets history.
        federation.ingest("h3", {"acme": {"cpu_ticks": 0}})
        assert federation.totals()["acme"]["cpu_ticks"] == before
        federation.ingest("h3", {"acme": {"cpu_ticks": 25}})
        assert federation.totals()["acme"]["cpu_ticks"] == before + 25

    def test_budget_spans_hosts(self):
        """100 ticks on h1 + 100 on h2 breaches a 150-tick budget even
        though neither host alone would."""
        federation = QuotaFederation()
        federation.set_quota("acme", QuotaSpec(cpu_ticks=150))
        federation.ingest("h1", {"acme": {"cpu_ticks": 100}})
        assert federation.admit("acme") == OK
        federation.ingest("h2", {"acme": {"cpu_ticks": 100}})
        assert federation.admit("acme") == HARD

    def test_fold_preserves_budget_position(self):
        federation = QuotaFederation()
        federation.set_quota("acme", QuotaSpec(cpu_ticks=150))
        federation.ingest("h1", {"acme": {"cpu_ticks": 100}})
        federation.fold_host("h1")
        federation.ingest("h2", {"acme": {"cpu_ticks": 60}})
        assert federation.admit("acme") == HARD

    def test_unquotad_tenant_is_always_ok(self):
        federation = QuotaFederation()
        federation.ingest("h1", {"guest": {"cpu_ticks": 10**9}})
        assert federation.admit("guest") == OK

    def test_fold_unknown_host_is_harmless(self):
        QuotaFederation().fold_host("never-seen")


class TestFederationEndToEnd:
    def test_tenant_cannot_escape_budget_across_two_hosts(self, fleet):
        coordinator = fleet(reconcile_every=1)
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        coordinator.federation.set_quota(
            "acme", QuotaSpec(cpu_ticks=30_000))
        # Two placements land on different hosts (least-loaded spread).
        a = coordinator.place("spin-a", "spin", tenant="acme")
        b = coordinator.place("spin-b", "spin", tenant="acme")
        placed_on = set(coordinator.placements().values())
        assert placed_on == {"h1", "h2"}

        def burn():
            blocked = False
            for _ in range(200):
                try:
                    coordinator.call(a, "spin", 30_000)
                    coordinator.call(b, "spin", 30_000)
                except QuotaExceededException:
                    blocked = True
                    break
                if coordinator.federation.admit("acme") == HARD:
                    blocked = True
                    break
            return blocked

        assert wait_until(burn, timeout=60)
        with pytest.raises(QuotaExceededException):
            for _ in range(50):
                coordinator.call(coordinator.lookup("spin-a"),
                                 "spin", 10)

    def test_neighbour_tenant_unaffected(self, fleet):
        coordinator = fleet(reconcile_every=1)
        coordinator.spawn_host("h1")
        coordinator.federation.set_quota(
            "hog", QuotaSpec(cpu_ticks=10_000))
        hog = coordinator.place("hog-svc", "spin", tenant="hog")
        quiet = coordinator.place("quiet-svc", "echo", tenant="quiet")

        def hog_blocked():
            try:
                coordinator.call(hog, "spin", 50_000)
            except QuotaExceededException:
                return True
            return coordinator.federation.admit("hog") == HARD

        assert wait_until(hog_blocked, timeout=60)
        assert coordinator.call(quiet, "echo", "still here") == \
            "still here"

    def test_totals_reconcile_exactly_after_a_kill(self, fleet):
        """The acceptance invariant: fleet usage totals before a host
        kill equal totals after (the dead slice folds, nothing lost),
        and only grow by what survivors report afterwards."""
        coordinator = fleet(reconcile_every=1)
        hosts = {"h1": coordinator.spawn_host("h1"),
                 "h2": coordinator.spawn_host("h2")}
        a = coordinator.place("svc-a", "spin", tenant="acme")
        b = coordinator.place("svc-b", "spin", tenant="acme")
        for _ in range(5):
            coordinator.call(a, "spin", 5_000)
            coordinator.call(b, "spin", 5_000)

        # Both hosts must have reported non-zero usage.
        def both_reported():
            with coordinator.federation._lock:
                live = coordinator.federation._live
            return all(
                live.get(host, {}).get("acme", {}).get("cpu_ticks", 0) > 0
                for host in ("h1", "h2"))

        assert wait_until(both_reported, timeout=30)
        before = coordinator.federation.totals()["acme"]

        victim_id = coordinator.placements()["svc-a"]
        hosts[victim_id].kill()
        assert wait_until(
            lambda: coordinator.hosts()[victim_id] == "dead",
            timeout=15)

        after = coordinator.federation.totals()["acme"]
        for key, value in before.items():
            assert after.get(key, 0) >= value, (key, before, after)
        # The dead host's slice is retained, not live.
        with coordinator.federation._lock:
            assert victim_id not in coordinator.federation._live
            assert coordinator.federation._retained[
                "acme"]["cpu_ticks"] > 0

    def test_request_rate_is_charged_centrally(self, fleet):
        """The coordinator routes every call, so its sliding window IS
        the fleet-wide request rate — hosts never double-charge it."""
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.federation.set_quota(
            "acme", QuotaSpec(requests_per_sec=1_000_000))
        token = coordinator.place("front", "echo", tenant="acme")
        for _ in range(5):
            coordinator.call(token, "echo", "x")
        cell = coordinator.federation.manager.cell("acme")
        assert cell.window.total == 5
