"""Fleet-suite fixtures: a servlet registry and coordinator factory.

Coordinators and host processes are always torn down, even on assertion
failure — a leaked agent process would outlive the test run (the agents
carry an orphan watchdog, but only against *parent* death).
"""

import time

import pytest

from repro.core import Capability, Domain, Remote
from repro.fleet import FleetCoordinator


class IEcho(Remote):
    def echo(self, text): ...

    def shout(self, text): ...


class EchoImpl(IEcho):
    def echo(self, text):
        return text

    def shout(self, text):
        return text.upper()


def echo_setup():
    domain = Domain("fleet-echo")
    return domain.run(lambda: Capability.create(EchoImpl(), label="echo"))


def spin_setup():
    """A servlet that burns measurable CPU per call (quota tests)."""

    class ISpin(Remote):
        def spin(self, n): ...

    class SpinImpl(ISpin):
        def spin(self, n):
            total = 0
            for i in range(int(n)):
                total += i
            return total

    domain = Domain("fleet-spin")
    return domain.run(lambda: Capability.create(SpinImpl(), label="spin"))


REGISTRY = {"echo": echo_setup, "spin": spin_setup}


@pytest.fixture()
def fleet():
    """A coordinator factory; everything it makes is stopped on exit."""
    made = []

    def factory(**kwargs):
        kwargs.setdefault("heartbeat_interval", 0.1)
        kwargs.setdefault("ping_deadline", 0.1)
        coordinator = FleetCoordinator(REGISTRY, **kwargs).start()
        made.append(coordinator)
        return coordinator

    try:
        yield factory
    finally:
        for coordinator in made:
            coordinator.stop()


def retry_call(coordinator, name, method, *args, timeout=10.0, poll=0.05):
    """A well-behaved fleet client: rebind (lookup) and retry through
    typed errors until the call lands or ``timeout`` passes.  Returns
    (result, error_types_seen)."""
    from repro.fleet import FleetUnavailableError, TokenError

    seen = set()
    deadline = time.monotonic() + timeout
    while True:
        try:
            token = coordinator.lookup(name)
            return coordinator.call(token, method, *args), seen
        except (FleetUnavailableError, TokenError) as exc:
            seen.add(type(exc).__name__)
            if time.monotonic() > deadline:
                raise
            time.sleep(poll)
