"""The fleet's web surface: blackout -> typed 503 with Retry-After."""

import pytest

from repro.core import DomainUnavailableException
from repro.fleet import FleetUnavailableError
from repro.web.jkweb import SystemServlet
from repro.web.servlet import ServletRequest, error_response

pytestmark = pytest.mark.timeout(30)


class _Route:
    prefix = "/servlet/front"
    registration = None

    def __init__(self, capability):
        self.capability = capability


class _FailingOver:
    def service(self, request):
        raise FleetUnavailableError("placement 'front' is failing over",
                                    retry_after=0.4)


class _PlainUnavailable:
    def service(self, request):
        raise DomainUnavailableException("host gone")


def _request():
    return ServletRequest("GET", "/servlet/front", {}, b"")


class TestRetryAfter:
    def test_fleet_blackout_maps_to_503_with_retry_after(self):
        """RFC 9110 Retry-After is integer delay-seconds: the 0.4s
        blackout estimate rounds UP (never to a too-eager 0)."""
        response = SystemServlet._invoke(
            _Route(_FailingOver()), _request())
        assert response.status == 503
        assert response.headers["Retry-After"] == "1"

    def test_retry_after_rounds_up_not_down(self):
        class _SlowFailover:
            def service(self, request):
                raise FleetUnavailableError("failing over",
                                            retry_after=2.3)

        response = SystemServlet._invoke(
            _Route(_SlowFailover()), _request())
        assert response.headers["Retry-After"] == "3"

    def test_plain_unavailability_has_no_retry_after(self):
        """Only errors that carry an estimate advertise one — a bare
        supervisor respawn has no bound to promise."""
        response = SystemServlet._invoke(
            _Route(_PlainUnavailable()), _request())
        assert response.status == 503
        assert "Retry-After" not in response.headers

    def test_error_response_merges_headers(self):
        response = error_response(503, "busy",
                                  headers={"Retry-After": "1"})
        assert response.headers["Retry-After"] == "1"
        assert response.headers["Content-Type"] == "text/plain"

    def test_error_response_default_headers_unchanged(self):
        response = error_response(404)
        assert response.headers == {"Content-Type": "text/plain"}
