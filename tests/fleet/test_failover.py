"""Host failure: eviction, re-placement, epoch re-key, typed blackout.

The acceptance scenario: kill a host mid-service; the coordinator
evicts it within ``max_missed`` beats, re-places its domains on a
survivor, and a well-behaved client (rebind + retry) bridges the
blackout having seen only typed errors — never a hang, never a raw
``OSError``.
"""

import time

import pytest

from repro.fleet import (
    FleetUnavailableError,
    NoLiveHostError,
    TokenStaleError,
)
from repro.fleet.coordinator import wait_until
from tests.fleet.conftest import retry_call

pytestmark = pytest.mark.timeout(120)


def _kill_placement_host(coordinator, hosts, name):
    victim_id = coordinator.placements()[name]
    hosts[victim_id].kill()
    return victim_id


class TestEviction:
    def test_killed_host_evicted_within_missed_beat_window(self, fleet):
        coordinator = fleet(heartbeat_interval=0.1, max_missed=3)
        host = coordinator.spawn_host("h1")
        start = time.monotonic()
        host.kill()
        assert wait_until(
            lambda: coordinator.hosts()["h1"] == "dead", timeout=15)
        elapsed = time.monotonic() - start
        # 3 missed beats at 0.1s each, plus scheduling slack: an order
        # of magnitude under the 30s a TCP-ish timeout would take.
        assert elapsed < 5.0
        evictions = coordinator.stats()["evictions"]
        assert evictions and evictions[0]["host_id"] == "h1"
        assert evictions[0]["reason"] == "missed heartbeats"

    def test_eviction_bumps_epoch_exactly_once(self, fleet):
        coordinator = fleet()
        host = coordinator.spawn_host("h1")
        assert coordinator.epoch == 0
        host.kill()
        assert wait_until(
            lambda: coordinator.hosts()["h1"] == "dead", timeout=15)
        time.sleep(0.5)  # further beats must not re-evict
        assert coordinator.epoch == 1
        assert len(coordinator.stats()["evictions"]) == 1


class TestFailover:
    def test_kill_evict_replace_retry_bridges(self, fleet):
        coordinator = fleet()
        hosts = {"h1": coordinator.spawn_host("h1"),
                 "h2": coordinator.spawn_host("h2")}
        token = coordinator.place("front", "echo", tenant="acme")
        assert coordinator.call(token, "echo", "before") == "before"

        victim_id = _kill_placement_host(coordinator, hosts, "front")
        result, seen = retry_call(coordinator, "front", "echo", "after")
        assert result == "after"
        # Only typed, retryable errors during the blackout.
        assert seen <= {"FleetUnavailableError", "TokenStaleError"}

        survivor_id = coordinator.placements()["front"]
        assert survivor_id not in (None, victim_id)
        assert coordinator.stats()["failovers"] == 1

    def test_stale_token_fails_closed_after_failover(self, fleet):
        coordinator = fleet()
        hosts = {"h1": coordinator.spawn_host("h1"),
                 "h2": coordinator.spawn_host("h2")}
        token = coordinator.place("front", "echo")
        _kill_placement_host(coordinator, hosts, "front")
        assert wait_until(
            lambda: coordinator.epoch == 1, timeout=15)
        with pytest.raises(TokenStaleError):
            coordinator.call(token, "echo", "stale")

    def test_survivor_host_rejects_stale_token_after_broadcast(
            self, fleet):
        """Defence in depth: the SURVIVOR's token replica heard the new
        epoch and refuses pre-failover tokens itself."""
        from repro.fleet.proto import decode_reply, encode_request

        coordinator = fleet()
        hosts = {"h1": coordinator.spawn_host("h1"),
                 "h2": coordinator.spawn_host("h2")}
        token = coordinator.place("front", "echo")
        victim_id = _kill_placement_host(coordinator, hosts, "front")
        assert wait_until(
            lambda: coordinator.placements()["front"] not in
            (None, victim_id), timeout=15)
        survivor = coordinator._hosts[coordinator.placements()["front"]]

        def survivor_epoch():
            body = survivor.control.call("stats", encode_request({}))
            return decode_reply(body)["epoch"]

        assert wait_until(lambda: survivor_epoch() == 1, timeout=15)
        with pytest.raises(TokenStaleError):
            decode_reply(survivor.data.call("invoke", encode_request(
                {"token": token, "method": "echo", "args": ["x"]})))

    def test_heartbeat_resyncs_a_host_that_missed_the_broadcast(
            self, fleet):
        """A LIVE host that never heard an epoch bump (the eviction-time
        fanout RPC failed) must not stay wedged rejecting every
        current-epoch token: the heartbeat loop re-sends the epoch until
        the host acknowledges, so lookup()/rebind works again."""
        from repro.fleet.proto import decode_reply, encode_request

        coordinator = fleet()
        coordinator.spawn_host("h1")
        token = coordinator.place("front", "echo")
        # Simulate the lost broadcast: re-key the fleet without telling
        # anybody — exactly the state after a fanout RpcError.
        coordinator.tokens.bump_epoch()
        assert wait_until(
            lambda: coordinator._hosts["h1"].epoch == coordinator.epoch,
            timeout=15)
        record = coordinator._hosts["h1"]
        body = record.control.call("stats", encode_request({}))
        assert decode_reply(body)["epoch"] == coordinator.epoch
        # The pre-bump token is stale fail-closed; the rebind path
        # mints a token the re-synced host accepts.
        with pytest.raises(TokenStaleError):
            coordinator.call(token, "echo", "stale")
        fresh = coordinator.lookup("front")
        assert coordinator.call(fresh, "echo", "again") == "again"

    def test_blackout_callers_get_unavailable_with_retry_after(
            self, fleet):
        """Callers racing the failover window see the typed 503-shaped
        error carrying the coordinator's blackout estimate."""
        coordinator = fleet()
        hosts = {"h1": coordinator.spawn_host("h1"),
                 "h2": coordinator.spawn_host("h2")}
        coordinator.place("front", "echo")
        _kill_placement_host(coordinator, hosts, "front")
        saw_unavailable = None
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            try:
                coordinator.call(coordinator.lookup("front"), "echo", "x")
                break
            except FleetUnavailableError as exc:
                saw_unavailable = exc
                time.sleep(0.02)
            except TokenStaleError:
                time.sleep(0.02)
        assert saw_unavailable is not None
        assert saw_unavailable.retry_after > 0

    def test_multiple_placements_all_fail_over(self, fleet):
        coordinator = fleet()
        coordinator.spawn_host("h1")
        coordinator.spawn_host("h2")
        for index in range(4):
            coordinator.place(f"svc-{index}", "echo")
        victims = {host_id for host_id
                   in coordinator.placements().values()}
        assert victims == {"h1", "h2"}

        coordinator._hosts["h1"].process.kill()
        assert wait_until(
            lambda: all(host == "h2" for host
                        in coordinator.placements().values()),
            timeout=15)
        for index in range(4):
            result, _ = retry_call(coordinator, f"svc-{index}",
                                   "echo", str(index))
            assert result == str(index)

    def test_last_host_death_leaves_typed_unavailability(self, fleet):
        coordinator = fleet()
        host = coordinator.spawn_host("h1")
        coordinator.place("front", "echo")
        host.kill()
        assert wait_until(
            lambda: coordinator.hosts()["h1"] == "dead", timeout=15)
        with pytest.raises(FleetUnavailableError):
            coordinator.call(coordinator.lookup("front"), "echo", "x")
        with pytest.raises(NoLiveHostError):
            coordinator.place("another", "echo")

    def test_fresh_host_after_total_loss_restores_service(self, fleet):
        """Capacity returning after a total-loss window re-places the
        orphaned placements automatically: registering the fresh host is
        all it takes — no operator re-place by hand."""
        coordinator = fleet()
        host = coordinator.spawn_host("h1")
        coordinator.place("front", "echo")
        host.kill()
        assert wait_until(
            lambda: coordinator.placements()["front"] is None,
            timeout=15)
        coordinator.spawn_host("h2")
        assert coordinator.placements()["front"] == "h2"
        result, _ = retry_call(coordinator, "front", "echo", "back")
        assert result == "back"
