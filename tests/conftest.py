"""Test-wide fixtures."""

from __future__ import annotations

import pytest

from repro.core import reset_repository


@pytest.fixture()
def repository():
    """A fresh global repository for tests that bind names."""
    return reset_repository()


@pytest.fixture(params=["msvm", "sunvm"])
def profile(request):
    """Parametrize a test over both VM cost profiles."""
    return request.param


@pytest.fixture()
def vm(profile):
    from tests.support import fresh_vm

    return fresh_vm(profile=profile)


@pytest.fixture()
def sun_vm():
    from tests.support import fresh_vm

    return fresh_vm(profile="sunvm")
