"""Test-wide fixtures."""

from __future__ import annotations

import pytest

from repro.core import reset_repository


@pytest.fixture()
def repository():
    """A fresh global repository for tests that bind names."""
    return reset_repository()


@pytest.fixture(params=["msvm", "sunvm"])
def profile(request):
    """Parametrize a test over both VM cost profiles."""
    return request.param


@pytest.fixture(params=["threaded", "generic"])
def dispatch_tier(request):
    """Parametrize over the interpreter's two dispatch tiers, so every
    ``vm``-fixture test doubles as a threaded-vs-generic differential."""
    return request.param


@pytest.fixture()
def vm(profile, dispatch_tier):
    from tests.support import fresh_vm

    return fresh_vm(profile=profile,
                    threaded_code=(dispatch_tier == "threaded"))


@pytest.fixture()
def sun_vm():
    from tests.support import fresh_vm

    return fresh_vm(profile="sunvm")
