"""Table 1: cost of null method invocations (µs) on both VM profiles.

Rows: regular invocation, interface invocation, thread-info lookup,
lock acquire/release, J-Kernel LRMI.  Shape claims (EXPERIMENTS.md):
interface dispatch is the msvm bottleneck, locks are the sunvm
bottleneck, LRMI is an order of magnitude above a plain invocation.
"""

import pytest

from repro.bench.paper import TABLE1
from repro.bench.table import format_table

_BATCH = 400


def _bench_op(benchmark, fixture, method, extra_args, batch=_BATCH):
    benchmark.pedantic(
        lambda: fixture._run(method, extra_args, batch),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["batch_ops_per_round"] = batch


@pytest.mark.table(1)
@pytest.mark.parametrize("profile", ["msvm", "sunvm"])
class TestTable1Ops:
    def test_regular_invocation(self, benchmark, table1_fixtures, profile):
        fixture = table1_fixtures[profile]
        _bench_op(benchmark, fixture, ("loopInvoke", "(Lbench/Local;I)V"),
                  [fixture.local_obj])

    def test_interface_invocation(self, benchmark, table1_fixtures, profile):
        fixture = table1_fixtures[profile]
        _bench_op(benchmark, fixture, ("loopIface", "(Lbench/ILocal;I)V"),
                  [fixture.local_obj])

    def test_thread_info_lookup(self, benchmark, table1_fixtures, profile):
        fixture = table1_fixtures[profile]
        _bench_op(benchmark, fixture, ("loopThreadInfo", "(I)V"), [])

    def test_lock_acquire_release(self, benchmark, table1_fixtures, profile):
        fixture = table1_fixtures[profile]
        _bench_op(benchmark, fixture, ("loopLock", "(Ljava/lang/Object;I)V"),
                  [fixture.lock_obj])

    def test_jkernel_lrmi(self, benchmark, table1_fixtures, profile):
        fixture = table1_fixtures[profile]
        _bench_op(benchmark, fixture, ("loopLrmi", "(Lbench/INull;I)V"),
                  [fixture.capability], batch=120)


def _shape_holds(rows):
    msvm_iface_over = rows["msvm"]["Interface method invocation"] - \
        rows["msvm"]["Regular method invocation"]
    sunvm_iface_over = rows["sunvm"]["Interface method invocation"] - \
        rows["sunvm"]["Regular method invocation"]
    if msvm_iface_over <= sunvm_iface_over:
        return False
    if rows["sunvm"]["Acquire/release lock"] <= \
            rows["msvm"]["Acquire/release lock"]:
        return False
    return all(
        rows[p]["J-Kernel LRMI"] > 2 * rows[p]["Regular method invocation"]
        for p in ("msvm", "sunvm")
    )


@pytest.mark.table(1)
def test_table1_report(benchmark, table1_fixtures):
    """Regenerates the full table and checks the paper's shape claims.

    Micro-costs on a loaded CI box are noisy; the shape check re-measures
    with growing batches before declaring a shape violation.
    """
    rows = {}

    def run():
        for batch in (800, 2000, 4000):
            for profile, fixture in table1_fixtures.items():
                rows[profile] = fixture.row(batch=batch)
            if _shape_holds(rows):
                break

    benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    for name, reference in TABLE1["rows"].items():
        table_rows.append([
            name, rows["msvm"][name], rows["sunvm"][name],
            reference[0], reference[1],
        ])
        benchmark.extra_info[name] = {
            "msvm_us": round(rows["msvm"][name], 3),
            "sunvm_us": round(rows["sunvm"][name], 3),
        }
    print()
    print(format_table(
        "Table 1 (measured vs paper, µs)",
        ["operation", "msvm", "sunvm", "paper MS", "paper Sun"],
        table_rows,
    ))

    # Shape claims (see _shape_holds): interface dispatch is the msvm
    # bottleneck, locks the sunvm bottleneck, LRMI a multiple of a plain
    # invocation.
    assert _shape_holds(rows)
