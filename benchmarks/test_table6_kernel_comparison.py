"""Table 6: comparison with selected kernels.

L4 / Exokernel / Eros round-trip IPC numbers are the paper's (they cannot
be re-run here); the J-Kernel row — a 3-argument cross-domain method
invocation — is measured on this reproduction's MiniJVM path.  The
paper's point is qualitative: language-based cross-domain calls sit in
the same cost class as the fastest microkernel IPC, not orders above it.

The second half measures the claim against *our own* OS-process
alternative: the same capability call through the in-process compiled
stub vs through the cross-process LRMI proxy (``repro.ipc.lrmi``) — the
in-process crossing must win by a real multiple, or the J-Kernel's
entire premise (protection without process boundaries) would not
reproduce on this substrate.
"""

import pytest

from repro.bench.paper import TABLE6
from repro.bench.table import format_table
from repro.bench.workloads import Table6Fixture


@pytest.mark.table(6)
def test_lrmi_3arg(benchmark, table1_fixtures):
    fixture = table1_fixtures["msvm"]
    benchmark.pedantic(
        lambda: fixture._run(("loopLrmi3", "(Lbench/INull;I)V"),
                             [fixture.capability], 120),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["batch_ops_per_round"] = 120


@pytest.mark.table(6)
def test_table6_report(benchmark, table1_fixtures):
    measured = {}

    def run():
        fixture = table1_fixtures["msvm"]
        measured["lrmi3_us"] = fixture.lrmi3_us(batch=300)
        measured["regular_us"] = fixture.regular_invocation_us(batch=600)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, entry in TABLE6["rows"].items():
        if name == "J-Kernel":
            rows.append(["J-Kernel (measured)", entry["operation"],
                         "this repro", measured["lrmi3_us"]])
        rows.append([f"{name} (paper)", entry["operation"],
                     entry["platform"], entry["time_us"]])
    print()
    print(format_table(
        "Table 6 (kernel comparison, µs)",
        ["system", "operation", "platform", "time"],
        rows,
    ))
    benchmark.extra_info["lrmi_3arg_us"] = round(measured["lrmi3_us"], 2)

    # Shape: the paper's qualitative claim, restated for our substrate —
    # a 3-arg LRMI costs a bounded multiple of a plain invocation (it is
    # an IPC-class operation, not a process switch).  Paper: 3.77 µs vs
    # 0.04 µs regular (~94x).  We assert it stays within that order.
    ratio = measured["lrmi3_us"] / max(measured["regular_us"], 1e-9)
    assert ratio < 200


@pytest.mark.table(6)
def test_table6_inproc_vs_xproc(benchmark):
    """The in-process-wins claim, measured: the hosted null LRMI vs the
    same call into a forked domain-host process over the marshalling
    wire.  Paper shape: process-boundary IPC costs orders more; our
    floor (5x) leaves generous room for host noise."""
    fixture = Table6Fixture()
    measured = {}

    def run():
        measured["inproc_null"] = fixture.inproc_null_us()
        measured["xproc_null"] = fixture.xproc_null_us()
        measured["inproc_1000b"] = fixture.inproc_1000b_us()
        measured["xproc_1000b"] = fixture.xproc_1000b_us()

    try:
        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        fixture.close()

    print()
    print(format_table(
        "Table 6 addendum (in-process vs cross-process LRMI, µs)",
        ["crossing", "null", "1000 bytes"],
        [
            ["in-process (compiled stub)",
             round(measured["inproc_null"], 2),
             round(measured["inproc_1000b"], 2)],
            ["cross-process (LRMI wire)",
             round(measured["xproc_null"], 2),
             round(measured["xproc_1000b"], 2)],
        ],
    ))
    benchmark.extra_info["xproc_over_inproc_null"] = round(
        measured["xproc_null"] / max(measured["inproc_null"], 1e-9), 1
    )
    assert measured["xproc_null"] > 5 * measured["inproc_null"]
    assert measured["xproc_1000b"] > measured["inproc_1000b"]
