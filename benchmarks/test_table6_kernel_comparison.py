"""Table 6: comparison with selected kernels.

L4 / Exokernel / Eros round-trip IPC numbers are the paper's (they cannot
be re-run here); the J-Kernel row — a 3-argument cross-domain method
invocation — is measured on this reproduction's MiniJVM path.  The
paper's point is qualitative: language-based cross-domain calls sit in
the same cost class as the fastest microkernel IPC, not orders above it.
"""

import pytest

from repro.bench.paper import TABLE6
from repro.bench.table import format_table


@pytest.mark.table(6)
def test_lrmi_3arg(benchmark, table1_fixtures):
    fixture = table1_fixtures["msvm"]
    benchmark.pedantic(
        lambda: fixture._run(("loopLrmi3", "(Lbench/INull;I)V"),
                             [fixture.capability], 120),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["batch_ops_per_round"] = 120


@pytest.mark.table(6)
def test_table6_report(benchmark, table1_fixtures):
    measured = {}

    def run():
        fixture = table1_fixtures["msvm"]
        measured["lrmi3_us"] = fixture.lrmi3_us(batch=300)
        measured["regular_us"] = fixture.regular_invocation_us(batch=600)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, entry in TABLE6["rows"].items():
        if name == "J-Kernel":
            rows.append(["J-Kernel (measured)", entry["operation"],
                         "this repro", measured["lrmi3_us"]])
        rows.append([f"{name} (paper)", entry["operation"],
                     entry["platform"], entry["time_us"]])
    print()
    print(format_table(
        "Table 6 (kernel comparison, µs)",
        ["system", "operation", "platform", "time"],
        rows,
    ))
    benchmark.extra_info["lrmi_3arg_us"] = round(measured["lrmi3_us"], 2)

    # Shape: the paper's qualitative claim, restated for our substrate —
    # a 3-arg LRMI costs a bounded multiple of a plain invocation (it is
    # an IPC-class operation, not a process switch).  Paper: 3.77 µs vs
    # 0.04 µs regular (~94x).  We assert it stays within that order.
    ratio = measured["lrmi3_us"] / max(measured["regular_us"], 1e-9)
    assert ratio < 200
