"""Shared fixtures for the benchmark suite (pytest-benchmark)."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table(n): benchmark regenerating paper table n"
    )


@pytest.fixture(scope="session")
def table1_fixtures():
    from repro.bench.workloads import Table1Fixture

    return {
        "msvm": Table1Fixture("msvm"),
        "sunvm": Table1Fixture("sunvm"),
    }


@pytest.fixture(scope="session")
def table4_fixture():
    from repro.bench.workloads import Table4Fixture

    return Table4Fixture()
