"""Open-loop, heavy-tailed HTTP load generator for the control plane.

Closed-loop clients (Table 5's eight looping fetchers) wait for each
response before sending the next request, so an overloaded server
quietly throttles its own offered load and queueing collapse never shows
up in the numbers.  The admission-control and shed-rate metrics need the
opposite: an **open-loop** generator whose arrivals are scheduled ahead
of time (exponential inter-arrivals at a fixed target rate) and issued
on schedule whether or not earlier requests have completed, with
**heavy-tailed** service demands (bounded-Pareto sized work, the classic
web-workload shape) so a few elephant requests contend with many mice.

Running this module directly prints the burst metrics that
``save_baseline.py`` records (record-only — they characterise the
control plane, not the fast path)::

    PYTHONPATH=src python benchmarks/loadgen.py

* ``shed_rate_under_burst`` — fraction of the burst answered with a
  parse-boundary 503 instead of queueing without bound,
* ``p99_latency_ms_burst`` — tail latency of the *admitted* requests
  (shedding exists to protect exactly this number),
* ``quota_kill_teardown_us`` — hard-breach to clean-teardown time for an
  over-budget tenant (unroute + drain + domain terminate + accounting
  fold).

It also measures the fleet layer's two record-only keys
(``fleet_metrics``)::

* ``failover_blackout_ms`` — host SIGKILL to first successful re-bound
  call through the survivor (detection window + epoch re-key +
  re-placement, the whole client-visible outage),
* ``fleet_heartbeat_overhead_us`` — one coordinator->host liveness round
  trip over ntrpc (the per-beat price of failure detection).
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.quota import HARD, QuotaSpec
from repro.web import JKernelWebServer, Servlet, ServletResponse, fetch_once
from repro.web.control import AdmissionController

#: Outstanding-request ceiling: an open-loop generator on a wedged
#: server would otherwise grow one thread per scheduled arrival without
#: bound.  Arrivals past the ceiling are *counted* (``not_issued``), not
#: silently dropped — a nonzero count means the measured shed rate is a
#: floor, not the truth.
MAX_OUTSTANDING = 128


def bounded_pareto(rng, alpha=1.5, lo=1, hi=1000):
    """One bounded-Pareto sample in [lo, hi] (heavy-tailed work sizes)."""
    u = rng.random()
    la, ha = lo ** alpha, hi ** alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def exponential_interarrivals(rng, rate, duration):
    """Poisson-process arrival offsets (seconds) for an open-loop run."""
    offsets, clock = [], 0.0
    while True:
        clock += rng.expovariate(rate)
        if clock >= duration:
            return offsets
        offsets.append(clock)


class LoadResult:
    """Tally of one open-loop run."""

    def __init__(self):
        self.scheduled = 0
        self.not_issued = 0      # over MAX_OUTSTANDING, never sent
        self.errors = 0          # connection-level failures
        self.statuses = {}       # status code -> count
        self.latencies_ms = []   # admitted (2xx) requests only
        self._lock = threading.Lock()

    def record(self, status, latency_ms):
        with self._lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if 200 <= status < 300:
                self.latencies_ms.append(latency_ms)

    def record_error(self):
        with self._lock:
            self.errors += 1

    @property
    def served(self):
        return sum(count for status, count in self.statuses.items()
                   if 200 <= status < 300)

    @property
    def shed(self):
        return self.statuses.get(503, 0)

    @property
    def shed_rate(self):
        issued = self.scheduled - self.not_issued
        return (self.shed / issued) if issued else 0.0

    def p99_ms(self):
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1,
                           int(0.99 * (len(ordered) - 1)))]

    def summary(self):
        return {
            "scheduled": self.scheduled,
            "not_issued": self.not_issued,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": round(self.shed_rate, 4),
            "p99_ms": round(self.p99_ms(), 2),
        }


class OpenLoopGenerator:
    """Issue GETs on schedule, one fresh connection per arrival."""

    def __init__(self, host, port, rate, duration, *, seed=17,
                 alpha=1.5, work_lo=1, work_hi=400,
                 path_template="/servlet/burst/{units}",
                 max_outstanding=MAX_OUTSTANDING):
        self.host = host
        self.port = port
        self.rate = rate
        self.duration = duration
        self.seed = seed
        self.alpha = alpha
        self.work_lo = work_lo
        self.work_hi = work_hi
        self.path_template = path_template
        self.max_outstanding = max_outstanding

    def run(self):
        rng = random.Random(self.seed)
        offsets = exponential_interarrivals(rng, self.rate, self.duration)
        paths = [
            self.path_template.format(units=int(bounded_pareto(
                rng, self.alpha, self.work_lo, self.work_hi)))
            for _ in offsets
        ]
        result = LoadResult()
        result.scheduled = len(offsets)
        outstanding = threading.Semaphore(self.max_outstanding)
        workers = []

        def issue(path):
            start = time.monotonic()
            try:
                response = fetch_once(self.host, self.port, path,
                                      timeout=10.0)
            except OSError:
                result.record_error()
                return
            finally:
                outstanding.release()
            result.record(response.status,
                          (time.monotonic() - start) * 1e3)

        epoch = time.monotonic()
        for offset, path in zip(offsets, paths):
            delay = epoch + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            # Open loop: never wait for capacity.  A full window means
            # the arrival is counted as un-issued, not deferred.
            if not outstanding.acquire(blocking=False):
                result.not_issued += 1
                continue
            worker = threading.Thread(target=issue, args=(path,),
                                      daemon=True)
            worker.start()
            workers.append(worker)
        for worker in workers:
            worker.join(timeout=15.0)
        return result


class _BurstServlet(Servlet):
    """Work proportional to the Pareto-sampled ``units`` path segment."""

    def service(self, request):
        try:
            units = int(request.path.rsplit("/", 1)[-1])
        except ValueError:
            units = 1
        time.sleep(min(units, 1000) * 20e-6)  # 20µs per unit of work
        return ServletResponse(200, {"Content-Type": "text/plain"}, b"ok")


def measure_burst(rate=800, duration=1.2, max_inflight=16, seed=17):
    """Shed rate and admitted-p99 under an open-loop heavy-tailed burst
    against an admission-bounded J-Kernel server.

    The defaults offer ~2-3x the pool's service capacity (mean work
    ~6 ms against two pool workers), so the run genuinely saturates:
    a zero shed rate here would mean the admission gate failed open.
    """
    jk = JKernelWebServer(
        workers=2,
        bridge_inline=False,
        admission=AdmissionController(max_inflight=max_inflight,
                                      shed_threshold=0.5),
    )
    jk.install_servlet("/burst", _BurstServlet)
    with jk:
        generator = OpenLoopGenerator("127.0.0.1", jk.port, rate,
                                      duration, seed=seed,
                                      work_lo=100, work_hi=1000)
        result = generator.run()
    return result


def measure_quota_kill_teardown(poll=0.0002, budget_s=10.0):
    """Hard-breach to clean-teardown latency, in µs.

    The clock starts when the quota reaper records the breach (the
    timestamp in ``quota_kills``) and stops when the tenant's route is
    gone — the same unroute → drain → terminate → fold path as an
    administrative kill.
    """
    jk = JKernelWebServer(
        workers=1,
        quotas={"/victim": QuotaSpec(requests_per_sec=50,
                                     soft_fraction=0.5)},
    )
    jk.install_servlet("/victim", _BurstServlet)
    with jk:
        deadline = time.monotonic() + budget_s
        while not jk.quota_kills and time.monotonic() < deadline:
            jk.quota.charge_request("/victim")
        while ("/victim" in jk.registrations()
               and time.monotonic() < deadline):
            time.sleep(poll)
        if not jk.quota_kills or "/victim" in jk.registrations():
            raise RuntimeError("quota kill did not complete in budget")
        done = time.monotonic()
        assert jk.quota.cell("/victim").state == HARD
        _prefix, _breached, breach_at = jk.quota_kills[0]
        return (done - breach_at) * 1e6


def _fleet_registry():
    from repro.core import Capability, Domain, Remote

    class IEcho(Remote):
        def echo(self, text): ...

    class EchoImpl(IEcho):
        def echo(self, text):
            return text

    def setup():
        domain = Domain("bench-fleet-echo")
        return domain.run(
            lambda: Capability.create(EchoImpl(), label="echo"))

    return {"echo": setup}


def measure_fleet_failover(heartbeat_interval=0.05, max_missed=3,
                           budget_s=30.0):
    """Client-visible failover blackout, in ms.

    Two hosts, one placement.  SIGKILL the placement's host, then
    rebind (lookup) + retry until a call lands on the survivor; the
    clock runs from the kill to that first success — detection
    (``max_missed`` beats), epoch re-key, re-placement and the rebind
    all inside it.
    """
    from repro.fleet import (
        FleetCoordinator,
        FleetUnavailableError,
        TokenError,
    )

    with FleetCoordinator(_fleet_registry(),
                          heartbeat_interval=heartbeat_interval,
                          max_missed=max_missed) as fleet:
        hosts = {"h1": fleet.spawn_host("h1"),
                 "h2": fleet.spawn_host("h2")}
        token = fleet.place("front", "echo")
        assert fleet.call(token, "echo", "warm") == "warm"

        victim = hosts[fleet.placements()["front"]]
        start = time.monotonic()
        victim.kill()
        deadline = start + budget_s
        while True:
            try:
                fleet.call(fleet.lookup("front"), "echo", "probe")
                return (time.monotonic() - start) * 1e3
            except (FleetUnavailableError, TokenError):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        "failover did not complete in budget")
                time.sleep(0.002)


def measure_fleet_heartbeat_overhead(batch=300):
    """One coordinator->host heartbeat round trip, in µs (amortised)."""
    from repro.fleet import FleetCoordinator

    with FleetCoordinator(_fleet_registry(),
                          heartbeat_interval=0.5) as fleet:
        fleet.spawn_host("h1")
        control = fleet._hosts["h1"].control
        control.ping()  # warm the pooled socket
        start = time.perf_counter()
        for _ in range(batch):
            control.ping()
        return (time.perf_counter() - start) / batch * 1e6


def fleet_metrics():
    """The fleet layer's record-only keys for the perf snapshot."""
    return {
        "failover_blackout_ms": round(measure_fleet_failover(), 1),
        "fleet_heartbeat_overhead_us": round(
            measure_fleet_heartbeat_overhead(), 1),
    }


def burst_metrics():
    """The three record-only control-plane keys for the perf snapshot."""
    result = measure_burst()
    teardown_us = measure_quota_kill_teardown()
    return {
        "shed_rate_under_burst": round(result.shed_rate, 4),
        "p99_latency_ms_burst": round(result.p99_ms(), 2),
        "quota_kill_teardown_us": round(teardown_us, 1),
        "loadgen": result.summary(),
    }


if __name__ == "__main__":
    import json

    metrics = burst_metrics()
    metrics.update(fleet_metrics())
    print(json.dumps(metrics, indent=2))
