"""Table 3: cost of a double thread switch (µs).

NT-base = two host (OS) threads ping-ponging via events; MS-VM / Sun-VM =
two MiniJVM green threads yielding to each other.  The claim the paper
derives from this table — actually switching threads on every
cross-domain call would be far more expensive than segment switching — is
checked in ``test_ablation_segment_vs_switch.py``.
"""

import pytest

from repro.bench.paper import TABLE3
from repro.bench.table import format_table
from repro.bench.workloads import Table3Fixture


@pytest.mark.table(3)
class TestTable3:
    def test_host_double_switch(self, benchmark):
        benchmark.pedantic(
            lambda: Table3Fixture.host_double_switch_us(switches=400),
            rounds=3, iterations=1,
        )

    @pytest.mark.parametrize("profile", ["msvm", "sunvm"])
    def test_vm_double_switch(self, benchmark, profile):
        fixture = Table3Fixture(profile)
        benchmark.pedantic(
            lambda: fixture.vm_double_switch_us(switches=1000),
            rounds=2, iterations=1,
        )


@pytest.mark.table(3)
def test_table3_report(benchmark):
    results = {}

    def run():
        results["NT-base"] = Table3Fixture.host_double_switch_us(2000)
        results["MS-VM"] = Table3Fixture("msvm").vm_double_switch_us(2000)
        results["Sun-VM"] = Table3Fixture("sunvm").vm_double_switch_us(2000)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, results[name], TABLE3["rows"][name]]
        for name in ("NT-base", "MS-VM", "Sun-VM")
    ]
    print()
    print(format_table("Table 3 (measured vs paper, µs)",
                       ["system", "measured", "paper"], rows))
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in results.items()}
    )
    # Shape: every kind of double thread switch costs multiple µs — the
    # order of magnitude the paper contrasts with segment switching.
    for value in results.values():
        assert value > 1.0
