"""Table 4: cost of argument copying during an LRMI (µs).

Serialization (byte-array round trip) vs generated fast-copy, across the
paper's payload shapes.  Shape claims: serialization cost grows steeply
with payload size; fast-copy wins at every size; the 10-objects row costs
more than the same bytes in one object (per-object overhead)."""

import pytest

from repro.bench.paper import TABLE4
from repro.bench.table import format_table

_SHAPES = ("1 x 10 bytes", "1 x 100 bytes", "10 x 10 bytes",
           "1 x 1000 bytes")


@pytest.mark.table(4)
@pytest.mark.parametrize("shape", _SHAPES)
class TestTable4Shapes:
    def test_serialization(self, benchmark, table4_fixture, shape):
        payload = table4_fixture.SHAPES[shape]()
        cap = table4_fixture.serial_cap
        benchmark(lambda: cap.take(payload))

    def test_fast_copy(self, benchmark, table4_fixture, shape):
        payload = table4_fixture.SHAPES[shape]()
        cap = table4_fixture.fast_cap
        benchmark(lambda: cap.take(payload))


@pytest.mark.table(4)
def test_table4_report(benchmark, table4_fixture):
    results = {}

    def run():
        for shape in _SHAPES:
            results[shape] = (
                table4_fixture.copy_us(shape, "serial"),
                table4_fixture.copy_us(shape, "fast"),
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for shape in _SHAPES:
        serial_us, fast_us = results[shape]
        reference = TABLE4["rows"][shape]
        rows.append([shape, serial_us, fast_us, reference[0], reference[1]])
        benchmark.extra_info[shape] = {
            "serialization_us": round(serial_us, 2),
            "fast_copy_us": round(fast_us, 2),
        }
    print()
    print(format_table(
        "Table 4 (measured vs paper MS-VM, µs)",
        ["shape", "serialization", "fast-copy", "paper ser", "paper fast"],
        rows,
    ))

    # Shape: fast copy beats serialization at every payload shape.
    for shape in _SHAPES:
        serial_us, fast_us = results[shape]
        assert fast_us < serial_us

    # Shape: serialization grows with payload size (10B -> 1000B).
    assert results["1 x 1000 bytes"][0] > 5 * results["1 x 10 bytes"][0]

    # Shape: 10 x 10 costs more than 1 x 100 under both mechanisms —
    # "the cost of object allocation and invocations of the copying
    # routine for every object".
    assert results["10 x 10 bytes"][0] > results["1 x 100 bytes"][0]
    assert results["10 x 10 bytes"][1] > results["1 x 100 bytes"][1]
