"""Table 5: HTTP server throughput (pages/second).

IIS (native server, in-memory documents), JWS (request handling
interpreted on the MiniJVM), IIS+J-Kernel (native server bridging into
per-domain servlets over LRMI).  Shape claims: the J-Kernel costs the
native server a modest fraction of its throughput; the interpreted server
is several-fold slower.
"""

import pytest

from repro.bench.paper import TABLE5
from repro.bench.table import format_table
from repro.bench.workloads import (
    PAGE_SIZES,
    build_iis,
    build_iis_jkernel,
    build_jws,
)
from repro.web import Request


@pytest.fixture(scope="module")
def iis():
    server = build_iis()
    yield server


@pytest.fixture(scope="module")
def jk():
    server = build_iis_jkernel()
    yield server


@pytest.fixture(scope="module")
def jws():
    server = build_jws()
    yield server


@pytest.mark.table(5)
@pytest.mark.parametrize("size", PAGE_SIZES)
class TestPerRequestCost:
    """In-process per-request cost (no socket noise)."""

    def test_iis(self, benchmark, iis, size):
        request = Request("GET", f"/doc{size}")
        benchmark(lambda: iis.process(request))

    def test_iis_jkernel(self, benchmark, jk, size):
        request = Request("GET", f"/servlet/doc{size}")
        benchmark(lambda: jk.server.process(request))

    def test_jws(self, benchmark, jws, size):
        raw = f"GET /doc{size} HTTP/1.0\r\n\r\n".encode()
        benchmark(lambda: jws.handle_bytes(raw))


@pytest.mark.table(5)
def test_table5_report(benchmark):
    """Socket-based throughput with 8 concurrent clients, as in §4."""
    from repro.web import measure_throughput

    iis = build_iis().start()
    jk = build_iis_jkernel().start()
    jws = build_jws().start()
    results = {}

    def run():
        for size in PAGE_SIZES:
            path = f"/doc{size}"
            results[size] = (
                measure_throughput("127.0.0.1", iis.port, path, 8, 50),
                measure_throughput("127.0.0.1", jws.port, path, 8, 12),
                measure_throughput("127.0.0.1", jk.server.port,
                                   "/servlet" + path, 8, 50),
            )

    try:
        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        iis.stop()
        jk.stop()
        jws.stop()

    rows = []
    for size in PAGE_SIZES:
        iis_tput, jws_tput, jk_tput = results[size]
        reference = TABLE5["rows"][f"{size} bytes"]
        rows.append([
            f"{size} bytes", iis_tput, jws_tput, jk_tput,
            float(reference[0]), float(reference[1]), float(reference[2]),
        ])
        benchmark.extra_info[f"{size}B"] = {
            "iis": round(iis_tput), "jws": round(jws_tput),
            "iis_jk": round(jk_tput),
        }
    print()
    print(format_table(
        "Table 5 (measured vs paper, pages/second)",
        ["page", "IIS", "JWS", "IIS+J-K", "paper IIS", "paper JWS",
         "paper IIS+J-K"],
        rows,
    ))

    # Shape: the interpreted server is several-fold slower than the
    # native server at every page size (paper: 6.5x-7.9x).
    for size in PAGE_SIZES:
        iis_tput, jws_tput, jk_tput = results[size]
        assert jws_tput < iis_tput / 2
        # J-Kernel keeps a usable fraction of native throughput
        # (paper: ~80%; we claim at least a third under LRMI x2).
        assert jk_tput > iis_tput / 5
