"""Table 2: local RPC costs using standard OS mechanisms (µs).

NT-RPC (cross-process socket RPC), COM out-of-proc (marshalled proxy to a
host process), COM in-proc (vtable call).  Shape claim: out-of-proc is
two or more orders of magnitude above in-proc (the paper's NT 4.0 gap was
~3300x; modern loopback IPC narrows it).
"""

import pytest

from repro.bench.paper import TABLE2
from repro.bench.table import format_table
from repro.ipc import (
    IN_PROC,
    OUT_OF_PROC,
    ComInterface,
    ComRegistry,
    RpcClient,
    create_instance,
    null_server,
)


class _NullComponent:
    def null_op(self):
        return 0


def _registry():
    registry = ComRegistry()
    registry.register_class(
        "CLSID_Null", _NullComponent, ComInterface("INull", ["null_op"])
    )
    return registry


@pytest.fixture(scope="module")
def rpc_client():
    with null_server() as server:
        with RpcClient(server.path) as client:
            client.call("null")
            yield client


@pytest.fixture(scope="module")
def outproc_pointer():
    pointer = create_instance(_registry(), "CLSID_Null", OUT_OF_PROC)
    pointer.method("null_op")()
    yield pointer
    pointer._com_host.stop()


@pytest.mark.table(2)
class TestTable2:
    def test_ntrpc_null_call(self, benchmark, rpc_client):
        benchmark(lambda: rpc_client.call("null"))

    def test_com_out_of_proc_null(self, benchmark, outproc_pointer):
        bound = outproc_pointer.method("null_op")
        benchmark(bound)

    def test_com_in_proc_null(self, benchmark):
        pointer = create_instance(_registry(), "CLSID_Null", IN_PROC)
        bound = pointer.method("null_op")
        benchmark(bound)


@pytest.mark.table(2)
def test_table2_report(benchmark, rpc_client, outproc_pointer):
    from repro.bench.timer import measure

    results = {}

    def run():
        results["NT-RPC"] = measure(
            lambda: rpc_client.call("null"), number=200, rounds=3
        ).us_per_op
        bound_out = outproc_pointer.method("null_op")
        results["COM out-of-proc"] = measure(
            bound_out, number=200, rounds=3
        ).us_per_op
        in_proc = create_instance(_registry(), "CLSID_Null", IN_PROC)
        bound_in = in_proc.method("null_op")
        bound_in()  # same warmup treatment as the other rows' fixtures
        results["COM in-proc"] = measure(
            bound_in, number=200, rounds=3
        ).us_per_op

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, results[name], TABLE2["rows"][name]]
        for name in ("NT-RPC", "COM out-of-proc", "COM in-proc")
    ]
    print()
    print(format_table("Table 2 (measured vs paper, µs)",
                       ["mechanism", "measured", "paper"], rows))
    benchmark.extra_info.update(
        {name: round(value, 3) for name, value in results.items()}
    )
    # Shape: the process boundary costs orders of magnitude.  The paper
    # measured ~3300x on NT 4.0; modern loopback IPC is relatively much
    # cheaper (a few hundred x a plain Python call on this hardware), so
    # the durable claim we assert is >=2 orders of magnitude.
    assert results["COM out-of-proc"] > 100 * results["COM in-proc"]
    assert results["NT-RPC"] > 100 * results["COM in-proc"]
