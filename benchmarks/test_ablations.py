"""Ablation benches for the design choices DESIGN.md calls out.

* LRMI cost decomposition (§3.2: dispatch + thread info + locks are
  70-80% of the call).
* Fast-copy with vs without the cycle-tracking hash table (§3.1).
* Segment switching vs real thread switching per cross-domain call
  (§3.1: switching threads "would slow down cross-domain calls by an
  order of magnitude").
* Serializer memcpy flattening (the Table 4 payload substitution).
"""

import pytest

from repro.bench.table import format_table
from repro.bench.timer import measure
from repro.core import Capability, Domain, Remote, fast_copy


class _Null(Remote):
    def nop(self): ...


class _NullImpl(_Null):
    def nop(self):
        return None


@pytest.mark.table(1)
def test_ablation_lrmi_breakdown(benchmark, table1_fixtures):
    """How much of the VM-level LRMI is dispatch + thread info + locks?"""
    shares = {}

    def run():
        for profile, fixture in table1_fixtures.items():
            row = fixture.row(batch=600)
            parts = (
                row["Interface method invocation"]
                + row["Thread info lookup"]
                + 2 * row["Acquire/release lock"]
            )
            shares[profile] = parts / row["J-Kernel LRMI"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        "LRMI decomposition: (iface + thread-info + 2x lock) / LRMI",
        ["profile", "share"],
        [[profile, share] for profile, share in shares.items()],
    ))
    benchmark.extra_info.update(
        {profile: round(share, 3) for profile, share in shares.items()}
    )
    # Paper: ~70% (MS-VM) and ~80% (Sun-VM).  We claim the same "these
    # three operations are the bulk of the call" conclusion.
    for share in shares.values():
        assert share > 0.3


@fast_copy(fields=("a", "b", "c"))
class _TreeNoMemo:
    def __init__(self, a, b, c):
        self.a, self.b, self.c = a, b, c


@fast_copy(cyclic=True, fields=("a", "b", "c"))
class _TreeMemo:
    def __init__(self, a, b, c):
        self.a, self.b, self.c = a, b, c


def _tree(cls, depth):
    if depth == 0:
        return cls(1, 2, 3)
    child = _tree(cls, depth - 1)
    return cls(child, _tree(cls, depth - 1), depth)


@pytest.mark.table(4)
def test_ablation_fastcopy_cycle_tracking(benchmark):
    """The hash table slows copying (paper: 'this slows down copying,
    though, so by default the copy code does not use a hash table')."""
    from repro.core import transfer

    plain = _tree(_TreeNoMemo, 6)
    tracked = _tree(_TreeMemo, 6)
    results = {}

    def run():
        results["no_memo_us"] = measure(
            lambda: transfer(plain), min_time=0.02
        ).us_per_op
        results["memo_us"] = measure(
            lambda: transfer(tracked), min_time=0.02
        ).us_per_op

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        "Fast-copy cycle tracking (same 127-node tree, µs)",
        ["variant", "µs/copy"],
        [["no hash table", results["no_memo_us"]],
         ["hash table", results["memo_us"]]],
    ))
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in results.items()}
    )
    assert results["memo_us"] > results["no_memo_us"]


@pytest.mark.table(3)
def test_ablation_segment_vs_thread_switch(benchmark):
    """Hosted LRMI (segment switch) vs an actual double thread switch:
    the design decision behind thread segments."""
    from repro.bench.workloads import Table3Fixture

    domain = Domain("ablation-seg")
    cap = domain.run(lambda: Capability.create(_NullImpl()))
    results = {}

    def run():
        results["lrmi_us"] = measure(cap.nop, min_time=0.05).us_per_op
        results["double_switch_us"] = Table3Fixture.host_double_switch_us(
            2000
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        "Segment switch (hosted LRMI) vs real double thread switch (µs)",
        ["operation", "µs"],
        [["LRMI with segment switch", results["lrmi_us"]],
         ["double thread switch", results["double_switch_us"]]],
    ))
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in results.items()}
    )
    # Paper: adding a real switch per call would add ~10µs to a 2-5µs
    # call.  Our shape claim: a real double switch costs a multiple of
    # the whole segment-switched LRMI.
    assert results["double_switch_us"] > 2 * results["lrmi_us"]


@pytest.mark.table(4)
def test_ablation_serializer_memcpy_flattening(benchmark, table4_fixture):
    """Python `bytes` payloads cross via memcpy, erasing the size
    dependence Table 4 measures — the documented reason the Table 4
    workload uses per-element payloads (DESIGN.md substitution note)."""
    results = {}

    def run():
        results["bytes_10"] = table4_fixture.raw_bytes_us(10, "serial")
        results["bytes_1000"] = table4_fixture.raw_bytes_us(1000, "serial")
        results["elems_10"] = table4_fixture.copy_us("1 x 10 bytes",
                                                     "serial")
        results["elems_1000"] = table4_fixture.copy_us("1 x 1000 bytes",
                                                       "serial")

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        "Serialization scaling: bytes payload vs per-element payload (µs)",
        ["payload", "10 B", "1000 B", "ratio"],
        [
            ["Python bytes (memcpy)", results["bytes_10"],
             results["bytes_1000"],
             results["bytes_1000"] / results["bytes_10"]],
            ["per-element (Java-like)", results["elems_10"],
             results["elems_1000"],
             results["elems_1000"] / results["elems_10"]],
        ],
    ))
    # The per-element payload shows the paper's size dependence; the
    # memcpy payload flattens it.
    elem_ratio = results["elems_1000"] / results["elems_10"]
    bytes_ratio = results["bytes_1000"] / results["bytes_10"]
    assert elem_ratio > 2 * bytes_ratio
