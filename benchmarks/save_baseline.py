"""Write (or check) the BENCH_lrmi.json perf snapshot so future PRs can
track the LRMI fast-path and transfer-layer trajectory.

Usage::

    PYTHONPATH=src python benchmarks/save_baseline.py [output.json]
    PYTHONPATH=src python benchmarks/save_baseline.py --check [baseline.json]
    PYTHONPATH=src python benchmarks/save_baseline.py --check --out fresh.json

Default mode measures and rewrites the snapshot.  ``--check`` re-measures
and compares against the checked-in snapshot instead: any µs metric more
than 20% slower than its recorded value is a regression and the script
exits nonzero.  Unknown keys never gate: a metric present in the snapshot
but not measured is reported as dropped, and a freshly *measured* metric
missing from an older snapshot is record-only — so adding metrics (the
``prefork_*``/``xproc_*`` families) cannot break checks against older
snapshots.  ``--check --out PATH`` additionally writes the freshly
measured snapshot to PATH (CI uploads it as the per-run bench artifact),
and when ``$GITHUB_STEP_SUMMARY`` is set a one-line shape summary is
appended there so perf trends are visible on the PR run.

Measured (hosted-core hot paths plus context costs):

* null LRMI µs (hosted Capability call, the compiled-stub fast path),
* 3-argument LRMI µs (argument-dispatch cost included),
* fast-copy vs serializer transfer µs for the canonical 100-byte payload,
* all four Table 4 payload shapes through a real LRMI, per mechanism,
* host double thread switch µs (what each LRMI would cost without
  thread segments),
* the *enforced* (MiniJVM) null LRMI µs — generated-bytecode stub through
  the verified J-Kernel on the sunvm profile, the Table 1/Table 6 row —
  so the VM-level fast path is regression-gated alongside the hosted one,
* the Table 5 serving-layer throughput: native/JWS/J-Kernel pages per
  second for 10/100/1000-byte pages over real sockets with concurrent
  keep-alive browser-header clients (``http_pages_per_sec_*`` keys), and
  the J-Kernel/native ratio, gated against the paper shape
  (``SHAPES["jk_over_iis"]`` ≈ 0.83; floor ``HTTP_RATIO_FLOOR``).  The
  ratio is a median of interleaved native/J-Kernel sample pairs, so host
  speed drift cancels; a failing ratio is re-measured once before the
  gate reports a regression (absolute pages/sec are recorded but not
  gated — they track the host, the ratio tracks the architecture),
* control-plane keys from the open-loop heavy-tailed generator
  (``benchmarks/loadgen.py``): ``shed_rate_under_burst``,
  ``p99_latency_ms_burst`` and ``quota_kill_teardown_us`` — all
  **record-only** (they characterise admission/quota behaviour under a
  synthetic burst, not a gateable fast path).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.timer import measure
from repro.bench.workloads import (
    Chunk,
    Table1Fixture,
    Table3Fixture,
    Table4Fixture,
    Table5Fixture,
    Table6Fixture,
)
from repro.core import Capability, Domain, Remote, transfer

#: Allowed slowdown vs the recorded baseline before --check fails.
REGRESSION_TOLERANCE = 0.20

#: Paper shape for Table 5: the J-Kernel serving path keeps at least this
#: fraction of native throughput (paper: 662/801 ≈ 0.83).
HTTP_RATIO_FLOOR = 0.80

#: Table 6 shape: a cross-process crossing must cost a real multiple of
#: the in-process one (the paper's in-process-wins claim; measured ~40-80x
#: here, the floor leaves room for host noise).
XPROC_RATIO_FLOOR = 5.0

#: Compiled-wire ceilings (absolute, host-speed tolerant): the per-method
#: frame encoders keep a null cross-process call under this many µs, and
#: the shared-memory bulk ring keeps the 1000-byte crossing within this
#: multiple of the in-process one.  Both are re-measured once before the
#: gate reports a regression — a forked-host round trip on a busy box can
#: eat a scheduling hiccup the architecture did not cause.
XPROC_NULL_CEILING_US = 30.0
XPROC_1000B_RATIO_CEILING = 3.0

#: Sealed-region ceiling: a 64KiB SealedRegion granted cross-process
#: (grant descriptor + cached attachment + header validation, zero byte
#: copies) must stay within this multiple of the in-process *fast-copy*
#: cost for the same payload size — the "near-fast-copy cross-process
#: transfer" claim.  Measured ~0.04x (the grant beats copying 64KiB of
#: structured payload by ~25x); the ceiling leaves room for host noise
#: while catching any rot back to re-serialization (~10-30x).
SEALED_64K_RATIO_CEILING = 3.0


def _load_loadgen():
    """Load the sibling loadgen module by path: this file itself is often
    loaded by path (tests, CI), so a plain ``import loadgen`` would miss."""
    import importlib.util

    path = Path(__file__).resolve().parent / "loadgen.py"
    spec = importlib.util.spec_from_file_location("jk_loadgen", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_http(pairs=5, requests_per_client=250):
    """Table 5 pages/second (native, JWS, J-Kernel) and shape ratios."""
    fixture = Table5Fixture(
        requests_per_client=requests_per_client, pairs=pairs
    ).start()
    try:
        return fixture.measure()
    finally:
        fixture.close()


class _Null(Remote):
    def nop(self): ...
    def add3(self, a, b, c): ...


class _NullImpl(_Null):
    def nop(self):
        return None

    def add3(self, a, b, c):
        return a + b + c


class _Hop(Remote):
    def go(self): ...


class _HopImpl(_Hop):
    """One extra LRMI hop in front of a null target — the comparable
    shape for the policy-overhead measurement (the guarded variant needs
    a restricted *caller* domain, hence two hops either way)."""

    def __init__(self, target):
        self._target = target

    def go(self):
        return self._target.nop()


def measure_policy_overhead(min_time=0.1):
    """µs the stack-based policy layer adds to a guarded null LRMI.

    Two identical two-hop chains (caller stub -> hop domain -> null
    target); the second one installs a policy on the hop domain and a
    guard on the inner capability, so every call walks the chain and
    checks the guard.  The difference is the policy cost; clamped at
    zero because on this scale scheduler noise can exceed it.
    """
    plain_target = Domain("bench-plain-store")
    plain_hop = Domain("bench-plain-hop")
    plain_cap = plain_target.run(lambda: Capability.create(_NullImpl()))
    plain = plain_hop.run(lambda: Capability.create(_HopImpl(plain_cap)))

    guarded_target = Domain("bench-policied-store")
    policied_hop = Domain("bench-policied-hop").set_policy(["bench.call"])
    guarded_cap = guarded_target.run(
        lambda: Capability.create(_NullImpl(), guard="bench.call")
    )
    policied = policied_hop.run(
        lambda: Capability.create(_HopImpl(guarded_cap))
    )

    plain.go()     # warm both stub chains
    policied.go()
    plain_us = measure(plain.go, min_time=min_time).us_per_op
    policied_us = measure(policied.go, min_time=min_time).us_per_op
    for domain in (plain_target, plain_hop, guarded_target, policied_hop):
        domain.terminate()
    return max(policied_us - plain_us, 0.0)


def collect(min_time=0.1):
    domain = Domain("baseline")
    cap = domain.run(lambda: Capability.create(_NullImpl()))
    cap.nop()  # warm the stub's bound-method cache

    null_lrmi = measure(cap.nop, min_time=min_time).us_per_op
    lrmi3 = measure(lambda: cap.add3(1, 2, 3), min_time=min_time).us_per_op

    payload = Chunk.of_size(100)
    serial_copy = measure(
        lambda: transfer(payload, mode="serial"), min_time=min_time
    ).us_per_op
    fast_copy = measure(
        lambda: transfer(payload, mode="fast"), min_time=min_time
    ).us_per_op

    table4 = Table4Fixture()
    table4_rows = {
        shape: {
            "serial_us": round(table4.copy_us(shape, "serial"), 3),
            "fastcopy_us": round(table4.copy_us(shape, "fast"), 3),
        }
        for shape in table4.SHAPES
    }
    lrmi_serial_100 = table4_rows["1 x 100 bytes"]["serial_us"]
    lrmi_fast_100 = table4_rows["1 x 100 bytes"]["fastcopy_us"]

    # Median of three: raw thread-switch timing is at the mercy of the
    # host scheduler's mood, and a lucky single sample makes the
    # recorded baseline unfairly tight for every later --check.
    import statistics

    double_switch = statistics.median(
        Table3Fixture.host_double_switch_us(2000) for _ in range(3)
    )

    vm_fixture = Table1Fixture("sunvm")
    vm_fixture.lrmi_us(batch=200)  # warm inline caches + pooled segments
    vm_null_lrmi = vm_fixture.lrmi_us(batch=1000)

    http = measure_http()
    http_keys = {
        f"http_pages_per_sec_{column}_{size}b": round(values[size], 1)
        for column, values in (
            ("native", http["native"]),
            ("jws", http["jws"]),
            ("jk", http["jkernel"]),
        )
        for size in sorted(values)
    }

    table6_fixture = Table6Fixture()
    try:
        table6_shape = table6_fixture.measure()
    finally:
        table6_fixture.close()
    prefork_keys = {
        f"prefork_pages_per_sec_{workers}w": round(pages, 1)
        for workers, pages in table6_shape["prefork_pages_per_sec"].items()
    }
    prefork_1w = table6_shape["prefork_pages_per_sec"].get(1, 0.0)
    prefork_2w = table6_shape["prefork_pages_per_sec"].get(2, 0.0)

    loadgen = _load_loadgen()
    control = loadgen.burst_metrics()
    fleet = loadgen.fleet_metrics()

    return {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "units": "microseconds per operation",
        "null_lrmi_us": round(null_lrmi, 3),
        "lrmi_3_int_args_us": round(lrmi3, 3),
        "transfer_serial_100B_us": round(serial_copy, 3),
        "transfer_fastcopy_100B_us": round(fast_copy, 3),
        "lrmi_serial_100B_us": round(lrmi_serial_100, 3),
        "lrmi_fastcopy_100B_us": round(lrmi_fast_100, 3),
        "table4": table4_rows,
        "host_double_thread_switch_us": round(double_switch, 3),
        "vm_null_lrmi_us": round(vm_null_lrmi, 3),
        **http_keys,
        # Cross-process LRMI (Table 6 tier): µs through the marshalling
        # proxy into a forked domain-host process.  NOT in the µs
        # regression gate family by shape choice: socket round-trip cost
        # tracks the host kernel's mood; the architecture signal is the
        # xproc/in-process ratio below.
        "xproc_null_lrmi_us": round(table6_shape["xproc_null_us"], 3),
        "xproc_lrmi_1000B_us": round(table6_shape["xproc_1000b_us"], 3),
        # Sealed-region grant leg (record-only µs; the architecture
        # signal is shape.sealed_64k_over_fastcopy, ceiling-gated).
        "xproc_sealed_64k_us": round(table6_shape["xproc_sealed_64k_us"], 3),
        "inproc_fastcopy_64k_us": round(
            table6_shape["inproc_fastcopy_64k_us"], 3
        ),
        **prefork_keys,
        # Control-plane behaviour under an open-loop heavy-tailed burst
        # (benchmarks/loadgen.py).  Record-only: the shed rate and burst
        # tail track the synthetic overload mix, and the teardown time a
        # thread-scheduling path — none is a regression-gateable µs.
        "shed_rate_under_burst": control["shed_rate_under_burst"],
        "p99_latency_ms_burst": control["p99_latency_ms_burst"],
        "quota_kill_teardown_us": control["quota_kill_teardown_us"],
        # Stack-based policy cost (record-only): guarded-null-LRMI from a
        # policied domain minus the same two-hop chain with no policy
        # installed.  A difference of sub-µs deltas, so scheduler noise
        # dominates across sessions; the claim that matters — domains
        # with NO policy pay nothing — is covered by the gated
        # null_lrmi_us, whose path the policy layer does not touch.
        "policy_check_overhead_us": round(measure_policy_overhead(), 3),
        # Fleet-coordinator behaviour (record-only, like the rest of the
        # control plane): the client-visible failover blackout is
        # dominated by the heartbeat detection window — a knob, not a
        # fast path — and one heartbeat is a socket round trip.
        "failover_blackout_ms": fleet["failover_blackout_ms"],
        "fleet_heartbeat_overhead_us": fleet["fleet_heartbeat_overhead_us"],
        "cpu_count": os.cpu_count() or 1,
        "shape": {
            "double_switch_over_null_lrmi": round(double_switch / null_lrmi, 1),
            "serial_over_fastcopy_100B": round(
                lrmi_serial_100 / max(lrmi_fast_100, 1e-9), 2
            ),
            "vm_over_hosted_null_lrmi": round(
                vm_null_lrmi / max(null_lrmi, 1e-9), 1
            ),
            "jk_over_native_http": round(http["jk_over_native"], 3),
            "iis_over_jws_http": round(http["iis_over_jws"], 1),
            "xproc_over_inproc_null_lrmi": round(
                table6_shape["xproc_over_inproc_null"], 1
            ),
            "xproc_over_inproc_1000B": round(
                table6_shape["xproc_over_inproc_1000b"], 1
            ),
            "sealed_64k_over_fastcopy": round(
                table6_shape["sealed_64k_over_fastcopy"], 2
            ),
            "prefork_2w_over_1w": round(
                prefork_2w / max(prefork_1w, 1e-9), 2
            ),
        },
    }


def _microsecond_metrics(snapshot, prefix=""):
    """Flatten every ``*_us`` metric to {dotted.path: value}."""
    metrics = {}
    for key, value in snapshot.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(_microsecond_metrics(value, prefix=f"{path}."))
        elif key.endswith("_us") and isinstance(value, (int, float)):
            metrics[path] = value
    return metrics


#: µs keys exempt from the *relative* (snapshot-vs-fresh) gate: a socket
#: round trip tracks the host kernel's scheduling mood across sessions.
#: ``xproc_null_lrmi_us`` is still gated — against the absolute
#: :data:`XPROC_NULL_CEILING_US` in :func:`check_shapes`, alongside the
#: :data:`XPROC_1000B_RATIO_CEILING` on the 1000-byte ratio — so the
#: compiled wire cannot silently rot back to the generic path's cost.
GATE_EXEMPT = frozenset({"xproc_null_lrmi_us", "xproc_lrmi_1000B_us",
                         "xproc_sealed_64k_us", "inproc_fastcopy_64k_us",
                         "quota_kill_teardown_us",
                         "fleet_heartbeat_overhead_us",
                         "policy_check_overhead_us"})


def compare_metrics(recorded, measured, tolerance=REGRESSION_TOLERANCE,
                    exempt=GATE_EXEMPT):
    """Pure snapshot comparison (unit-testable, no measuring).

    Returns ``(lines, regressions, new_keys)``:

    * a metric in both maps gates with ``tolerance`` slack (unless
      exempt, which is reported record-only),
    * a metric only in ``recorded`` was dropped/renamed — reported, never
      a failure,
    * a metric only in ``measured`` is **record-only**: keys newly added
      by this revision (``prefork_*``, ``xproc_*``) must not read as
      regressions against snapshots that predate them.
    """
    lines = []
    regressions = []
    for metric, old in sorted(recorded.items()):
        new = measured.get(metric)
        if new is None:
            lines.append(f"{metric:45s} {old:10.3f} -> (dropped)")
            continue
        marker = ""
        if metric in exempt:
            marker = "  (record-only)"
        elif new > old * (1.0 + tolerance):
            regressions.append((metric, old, new))
            marker = "  <-- REGRESSION"
        lines.append(f"{metric:45s} {old:10.3f} -> {new:10.3f}{marker}")
    new_keys = sorted(set(measured) - set(recorded))
    for metric in new_keys:
        lines.append(
            f"{metric:45s} {'(new)':>10s} -> {measured[metric]:10.3f}"
            "  (record-only)"
        )
    return lines, regressions, new_keys


def _measure_xproc(samples=3):
    """Fresh Table 6 crossing samples for the compiled-wire ceiling
    retry, keeping the per-key minimum.

    The ceilings bound what the wire *costs*; on a one-core box the
    cross-process ping-pong is acutely scheduling-sensitive, and a
    single busy window can double the reading.  The minimum over a few
    fresh fixtures is the standard low-noise estimator for a latency
    gate (prefork throughput is skipped — only the crossing keys feed
    the ceilings)."""
    best = {}
    for _ in range(samples):
        fixture = Table6Fixture()
        try:
            sample = fixture.measure(prefork_workers=())
        finally:
            fixture.close()
        for key, value in sample.items():
            if isinstance(value, (int, float)):
                best[key] = min(value, best.get(key, value))
    return best


def check_shapes(snapshot, regressions, remeasure_http=True,
                 remeasure_xproc=True):
    """Absolute paper-shape gates (host-speed independent)."""
    lines = []
    shape = snapshot.get("shape", {})

    ratio = shape.get("jk_over_native_http")
    if ratio is not None:
        if ratio < HTTP_RATIO_FLOOR and remeasure_http:
            # One retry with more interleaved pairs: the ratio is a
            # median and host-speed independent, but a single noisy
            # window on a shared box can still dent it.
            ratio = round(measure_http(pairs=6)["jk_over_native"], 3)
        marker = ""
        if ratio < HTTP_RATIO_FLOOR:
            regressions.append(
                ("shape.jk_over_native_http", HTTP_RATIO_FLOOR, ratio)
            )
            marker = "  <-- BELOW PAPER SHAPE"
        lines.append(f"{'shape.jk_over_native_http (floor)':45s} "
                     f"{HTTP_RATIO_FLOOR:10.3f} -> {ratio:10.3f}{marker}")

    xratio = shape.get("xproc_over_inproc_null_lrmi")
    if xratio is not None:
        marker = ""
        if xratio < XPROC_RATIO_FLOOR:
            regressions.append(
                ("shape.xproc_over_inproc_null_lrmi",
                 XPROC_RATIO_FLOOR, xratio)
            )
            marker = "  <-- BELOW PAPER SHAPE"
        lines.append(f"{'shape.xproc_over_inproc_null_lrmi (floor)':45s} "
                     f"{XPROC_RATIO_FLOOR:10.3f} -> {xratio:10.3f}{marker}")

    # Compiled-wire ceilings: absolute µs for the null crossing, and the
    # 1000B xproc/in-process multiple the bulk ring is meant to hold.
    xnull = snapshot.get("xproc_null_lrmi_us")
    xratio_1000 = shape.get("xproc_over_inproc_1000B")
    sealed_ratio = shape.get("sealed_64k_over_fastcopy")
    over = ((xnull is not None and xnull > XPROC_NULL_CEILING_US)
            or (xratio_1000 is not None
                and xratio_1000 > XPROC_1000B_RATIO_CEILING)
            or (sealed_ratio is not None
                and sealed_ratio > SEALED_64K_RATIO_CEILING))
    if over and remeasure_xproc:
        fresh = _measure_xproc()
        if xnull is not None:
            xnull = round(fresh["xproc_null_us"], 3)
        if xratio_1000 is not None:
            xratio_1000 = round(fresh["xproc_over_inproc_1000b"], 2)
        if sealed_ratio is not None:
            sealed_ratio = round(fresh["sealed_64k_over_fastcopy"], 2)
    if xnull is not None:
        marker = ""
        if xnull > XPROC_NULL_CEILING_US:
            regressions.append(
                ("xproc_null_lrmi_us", XPROC_NULL_CEILING_US, xnull)
            )
            marker = "  <-- ABOVE COMPILED-WIRE CEILING"
        lines.append(f"{'xproc_null_lrmi_us (ceiling)':45s} "
                     f"{XPROC_NULL_CEILING_US:10.3f} -> "
                     f"{xnull:10.3f}{marker}")
    if xratio_1000 is not None:
        marker = ""
        if xratio_1000 > XPROC_1000B_RATIO_CEILING:
            regressions.append(
                ("shape.xproc_over_inproc_1000B",
                 XPROC_1000B_RATIO_CEILING, xratio_1000)
            )
            marker = "  <-- ABOVE COMPILED-WIRE CEILING"
        lines.append(f"{'shape.xproc_over_inproc_1000B (ceiling)':45s} "
                     f"{XPROC_1000B_RATIO_CEILING:10.3f} -> "
                     f"{xratio_1000:10.3f}{marker}")
    if sealed_ratio is not None:
        marker = ""
        if sealed_ratio > SEALED_64K_RATIO_CEILING:
            regressions.append(
                ("shape.sealed_64k_over_fastcopy",
                 SEALED_64K_RATIO_CEILING, sealed_ratio)
            )
            marker = "  <-- SEALED GRANT SLOWER THAN COPYING"
        lines.append(f"{'shape.sealed_64k_over_fastcopy (ceiling)':45s} "
                     f"{SEALED_64K_RATIO_CEILING:10.3f} -> "
                     f"{sealed_ratio:10.3f}{marker}")

    # Prefork scaling only gates on multi-core hosts: two workers on one
    # core share the CPU the single process already saturated.
    prefork_2w = snapshot.get("prefork_pages_per_sec_2w")
    table5_jk = snapshot.get("http_pages_per_sec_jk_100b")
    cpus = snapshot.get("cpu_count") or os.cpu_count() or 1
    if prefork_2w is not None and table5_jk:
        ratio_2w = prefork_2w / table5_jk
        if cpus >= 2:
            marker = ""
            if ratio_2w <= 1.0:
                regressions.append(
                    ("prefork_2w_over_table5_jk", 1.0, round(ratio_2w, 2))
                )
                marker = "  <-- NO MULTI-CORE SCALING"
            lines.append(f"{'prefork_2w_over_table5_jk (floor)':45s} "
                         f"{1.0:10.3f} -> {ratio_2w:10.3f}{marker}")
        else:
            lines.append(f"{'prefork_2w_over_table5_jk':45s} "
                         f"{'(1 cpu)':>10s} -> {ratio_2w:10.3f}"
                         "  (record-only)")
    return lines


def step_summary_line(snapshot, regressions, new_keys):
    """One-line shape summary for ``$GITHUB_STEP_SUMMARY``."""
    shape = snapshot.get("shape", {})
    parts = [
        f"jk/native http {shape.get('jk_over_native_http', '?')} "
        f"(floor {HTTP_RATIO_FLOOR})",
        f"xproc/inproc null {shape.get('xproc_over_inproc_null_lrmi', '?')}x"
        f" (floor {XPROC_RATIO_FLOOR:g}x)",
        f"prefork 2w/1w {shape.get('prefork_2w_over_1w', '?')}"
        f" ({snapshot.get('cpu_count', '?')} cpu)",
        f"null LRMI {snapshot.get('null_lrmi_us', '?')}us",
        f"xproc null {snapshot.get('xproc_null_lrmi_us', '?')}us",
        f"sealed64k/fastcopy {shape.get('sealed_64k_over_fastcopy', '?')}"
        f" (ceiling {SEALED_64K_RATIO_CEILING:g})",
        f"shed@burst {snapshot.get('shed_rate_under_burst', '?')}",
        f"{len(regressions)} regression(s)",
        f"{len(new_keys)} new key(s)",
    ]
    return "perf: " + " | ".join(str(part) for part in parts)


def write_step_summary(line, stream_path=None):
    """Append the summary line to the GitHub Actions step summary, when
    running under Actions (no-op elsewhere)."""
    path = stream_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(line + "\n")
    return True


def check(baseline_path, tolerance=REGRESSION_TOLERANCE, out_path=None):
    """Compare fresh measurements to the recorded snapshot; returns the
    list of (metric, recorded, measured) regressions.

    µs metrics gate against the snapshot with ``tolerance`` slack; the
    shape ratios gate against absolute paper floors (host-speed
    independent).  Keys unknown to the snapshot are record-only.
    """
    recorded = _microsecond_metrics(
        json.loads(Path(baseline_path).read_text())
    )
    snapshot = collect()
    measured = _microsecond_metrics(snapshot)
    lines, regressions, new_keys = compare_metrics(
        recorded, measured, tolerance
    )
    lines.extend(check_shapes(snapshot, regressions))
    for line in lines:
        print(line)
    if out_path is not None:
        Path(out_path).write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"\nwrote fresh snapshot to {out_path}")
    write_step_summary(step_summary_line(snapshot, regressions, new_keys))
    return regressions


def main(argv):
    options = [arg for arg in argv[1:] if arg.startswith("--")]
    args = [arg for arg in argv[1:] if not arg.startswith("--")]
    unknown = [opt for opt in options if opt not in ("--check", "--out")]
    if unknown:
        # A silently dropped typo (--chek) would fall through to the
        # default mode and OVERWRITE the checked-in baseline.
        print(f"unknown option(s): {' '.join(unknown)}; "
              "supported: --check, --out PATH", file=sys.stderr)
        return 2
    out_path = None
    if "--out" in options:
        index = argv.index("--out")
        if index + 1 >= len(argv):
            print("--out requires a path", file=sys.stderr)
            return 2
        out_path = argv[index + 1]
        args = [arg for arg in args if arg != out_path]
    default = Path(__file__).resolve().parent.parent / "BENCH_lrmi.json"
    target = Path(args[0]) if args else default

    if "--check" in options:
        regressions = check(target, out_path=out_path)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed more than "
                  f"{REGRESSION_TOLERANCE:.0%} vs {target}")
            return 1
        print(f"\nno regressions vs {target}")
        return 0

    snapshot = collect()
    target.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
