"""Write a BENCH_lrmi.json perf snapshot so future PRs can track the
LRMI fast-path trajectory.

Usage::

    PYTHONPATH=src python benchmarks/save_baseline.py [output.json]

Measures the hosted-core hot paths (the numbers the ablation suite's
shape assertions ride on) and a couple of context costs:

* null LRMI µs (hosted Capability call, the compiled-stub fast path),
* 3-argument LRMI µs (argument-dispatch cost included),
* fast-copy vs serializer µs for the canonical 100-byte Table 4 payload,
* host double thread switch µs (what each LRMI would cost without
  thread segments).
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.timer import measure
from repro.bench.workloads import Chunk, Table3Fixture, Table4Fixture
from repro.core import Capability, Domain, Remote, transfer


class _Null(Remote):
    def nop(self): ...
    def add3(self, a, b, c): ...


class _NullImpl(_Null):
    def nop(self):
        return None

    def add3(self, a, b, c):
        return a + b + c


def collect(min_time=0.1):
    domain = Domain("baseline")
    cap = domain.run(lambda: Capability.create(_NullImpl()))
    cap.nop()  # warm the stub's bound-method cache

    null_lrmi = measure(cap.nop, min_time=min_time).us_per_op
    lrmi3 = measure(lambda: cap.add3(1, 2, 3), min_time=min_time).us_per_op

    payload = Chunk.of_size(100)
    serial_copy = measure(
        lambda: transfer(payload, mode="serial"), min_time=min_time
    ).us_per_op
    fast_copy = measure(
        lambda: transfer(payload, mode="fast"), min_time=min_time
    ).us_per_op

    table4 = Table4Fixture()
    lrmi_serial_100 = table4.copy_us("1 x 100 bytes", "serial")
    lrmi_fast_100 = table4.copy_us("1 x 100 bytes", "fast")

    double_switch = Table3Fixture.host_double_switch_us(2000)

    return {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "units": "microseconds per operation",
        "null_lrmi_us": round(null_lrmi, 3),
        "lrmi_3_int_args_us": round(lrmi3, 3),
        "transfer_serial_100B_us": round(serial_copy, 3),
        "transfer_fastcopy_100B_us": round(fast_copy, 3),
        "lrmi_serial_100B_us": round(lrmi_serial_100, 3),
        "lrmi_fastcopy_100B_us": round(lrmi_fast_100, 3),
        "host_double_thread_switch_us": round(double_switch, 3),
        "shape": {
            "double_switch_over_null_lrmi": round(double_switch / null_lrmi, 1),
            "serial_over_fastcopy_100B": round(
                lrmi_serial_100 / max(lrmi_fast_100, 1e-9), 2
            ),
        },
    }


def main(argv):
    output = Path(argv[1]) if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_lrmi.json"
    )
    snapshot = collect()
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
