"""Write (or check) the BENCH_lrmi.json perf snapshot so future PRs can
track the LRMI fast-path and transfer-layer trajectory.

Usage::

    PYTHONPATH=src python benchmarks/save_baseline.py [output.json]
    PYTHONPATH=src python benchmarks/save_baseline.py --check [baseline.json]

Default mode measures and rewrites the snapshot.  ``--check`` re-measures
and compares against the checked-in snapshot instead: any µs metric more
than 20% slower than its recorded value is a regression and the script
exits nonzero (new/missing metrics are ignored, so adding metrics never
breaks the check).

Measured (hosted-core hot paths plus context costs):

* null LRMI µs (hosted Capability call, the compiled-stub fast path),
* 3-argument LRMI µs (argument-dispatch cost included),
* fast-copy vs serializer transfer µs for the canonical 100-byte payload,
* all four Table 4 payload shapes through a real LRMI, per mechanism,
* host double thread switch µs (what each LRMI would cost without
  thread segments),
* the *enforced* (MiniJVM) null LRMI µs — generated-bytecode stub through
  the verified J-Kernel on the sunvm profile, the Table 1/Table 6 row —
  so the VM-level fast path is regression-gated alongside the hosted one,
* the Table 5 serving-layer throughput: native/JWS/J-Kernel pages per
  second for 10/100/1000-byte pages over real sockets with concurrent
  keep-alive browser-header clients (``http_pages_per_sec_*`` keys), and
  the J-Kernel/native ratio, gated against the paper shape
  (``SHAPES["jk_over_iis"]`` ≈ 0.83; floor ``HTTP_RATIO_FLOOR``).  The
  ratio is a median of interleaved native/J-Kernel sample pairs, so host
  speed drift cancels; a failing ratio is re-measured once before the
  gate reports a regression (absolute pages/sec are recorded but not
  gated — they track the host, the ratio tracks the architecture).
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.timer import measure
from repro.bench.workloads import (
    Chunk,
    Table1Fixture,
    Table3Fixture,
    Table4Fixture,
    Table5Fixture,
)
from repro.core import Capability, Domain, Remote, transfer

#: Allowed slowdown vs the recorded baseline before --check fails.
REGRESSION_TOLERANCE = 0.20

#: Paper shape for Table 5: the J-Kernel serving path keeps at least this
#: fraction of native throughput (paper: 662/801 ≈ 0.83).
HTTP_RATIO_FLOOR = 0.80


def measure_http(pairs=5, requests_per_client=250):
    """Table 5 pages/second (native, JWS, J-Kernel) and shape ratios."""
    fixture = Table5Fixture(
        requests_per_client=requests_per_client, pairs=pairs
    ).start()
    try:
        return fixture.measure()
    finally:
        fixture.close()


class _Null(Remote):
    def nop(self): ...
    def add3(self, a, b, c): ...


class _NullImpl(_Null):
    def nop(self):
        return None

    def add3(self, a, b, c):
        return a + b + c


def collect(min_time=0.1):
    domain = Domain("baseline")
    cap = domain.run(lambda: Capability.create(_NullImpl()))
    cap.nop()  # warm the stub's bound-method cache

    null_lrmi = measure(cap.nop, min_time=min_time).us_per_op
    lrmi3 = measure(lambda: cap.add3(1, 2, 3), min_time=min_time).us_per_op

    payload = Chunk.of_size(100)
    serial_copy = measure(
        lambda: transfer(payload, mode="serial"), min_time=min_time
    ).us_per_op
    fast_copy = measure(
        lambda: transfer(payload, mode="fast"), min_time=min_time
    ).us_per_op

    table4 = Table4Fixture()
    table4_rows = {
        shape: {
            "serial_us": round(table4.copy_us(shape, "serial"), 3),
            "fastcopy_us": round(table4.copy_us(shape, "fast"), 3),
        }
        for shape in table4.SHAPES
    }
    lrmi_serial_100 = table4_rows["1 x 100 bytes"]["serial_us"]
    lrmi_fast_100 = table4_rows["1 x 100 bytes"]["fastcopy_us"]

    # Median of three: raw thread-switch timing is at the mercy of the
    # host scheduler's mood, and a lucky single sample makes the
    # recorded baseline unfairly tight for every later --check.
    import statistics

    double_switch = statistics.median(
        Table3Fixture.host_double_switch_us(2000) for _ in range(3)
    )

    vm_fixture = Table1Fixture("sunvm")
    vm_fixture.lrmi_us(batch=200)  # warm inline caches + pooled segments
    vm_null_lrmi = vm_fixture.lrmi_us(batch=1000)

    http = measure_http()
    http_keys = {
        f"http_pages_per_sec_{column}_{size}b": round(values[size], 1)
        for column, values in (
            ("native", http["native"]),
            ("jws", http["jws"]),
            ("jk", http["jkernel"]),
        )
        for size in sorted(values)
    }

    return {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "units": "microseconds per operation",
        "null_lrmi_us": round(null_lrmi, 3),
        "lrmi_3_int_args_us": round(lrmi3, 3),
        "transfer_serial_100B_us": round(serial_copy, 3),
        "transfer_fastcopy_100B_us": round(fast_copy, 3),
        "lrmi_serial_100B_us": round(lrmi_serial_100, 3),
        "lrmi_fastcopy_100B_us": round(lrmi_fast_100, 3),
        "table4": table4_rows,
        "host_double_thread_switch_us": round(double_switch, 3),
        "vm_null_lrmi_us": round(vm_null_lrmi, 3),
        **http_keys,
        "shape": {
            "double_switch_over_null_lrmi": round(double_switch / null_lrmi, 1),
            "serial_over_fastcopy_100B": round(
                lrmi_serial_100 / max(lrmi_fast_100, 1e-9), 2
            ),
            "vm_over_hosted_null_lrmi": round(
                vm_null_lrmi / max(null_lrmi, 1e-9), 1
            ),
            "jk_over_native_http": round(http["jk_over_native"], 3),
            "iis_over_jws_http": round(http["iis_over_jws"], 1),
        },
    }


def _microsecond_metrics(snapshot, prefix=""):
    """Flatten every ``*_us`` metric to {dotted.path: value}."""
    metrics = {}
    for key, value in snapshot.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(_microsecond_metrics(value, prefix=f"{path}."))
        elif key.endswith("_us") and isinstance(value, (int, float)):
            metrics[path] = value
    return metrics


def check(baseline_path, tolerance=REGRESSION_TOLERANCE):
    """Compare fresh measurements to the recorded snapshot; returns the
    list of (metric, recorded, measured) regressions.

    µs metrics gate against the snapshot with ``tolerance`` slack; the
    Table 5 throughput ratio gates against the absolute paper-shape
    floor (host-speed independent), with one re-measure before failing.
    """
    recorded = _microsecond_metrics(
        json.loads(Path(baseline_path).read_text())
    )
    snapshot = collect()
    measured = _microsecond_metrics(snapshot)
    regressions = []
    for metric, old in sorted(recorded.items()):
        new = measured.get(metric)
        if new is None:
            continue  # metric dropped/renamed: not this script's problem
        limit = old * (1.0 + tolerance)
        marker = ""
        if new > limit:
            regressions.append((metric, old, new))
            marker = "  <-- REGRESSION"
        print(f"{metric:45s} {old:10.3f} -> {new:10.3f}{marker}")

    ratio = snapshot["shape"]["jk_over_native_http"]
    if ratio < HTTP_RATIO_FLOOR:
        # One retry with more interleaved pairs: the ratio is a median
        # and host-speed independent, but a single noisy window on a
        # shared box can still dent it.
        ratio = round(measure_http(pairs=6)["jk_over_native"], 3)
    marker = ""
    if ratio < HTTP_RATIO_FLOOR:
        regressions.append(
            ("shape.jk_over_native_http", HTTP_RATIO_FLOOR, ratio)
        )
        marker = "  <-- BELOW PAPER SHAPE"
    print(f"{'shape.jk_over_native_http (floor)':45s} "
          f"{HTTP_RATIO_FLOOR:10.3f} -> {ratio:10.3f}{marker}")
    return regressions


def main(argv):
    args = [arg for arg in argv[1:] if arg != "--check"]
    default = Path(__file__).resolve().parent.parent / "BENCH_lrmi.json"
    target = Path(args[0]) if args else default

    if "--check" in argv[1:]:
        regressions = check(target)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed more than "
                  f"{REGRESSION_TOLERANCE:.0%} vs {target}")
            return 1
        print(f"\nno regressions vs {target}")
        return 0

    snapshot = collect()
    target.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
