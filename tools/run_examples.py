#!/usr/bin/env python3
"""Run every example script to completion, as CI does.

Each ``examples/*.py`` must exit 0.  The process-supervision examples
are timing-sensitive (they kill -9 their own children and race the
respawn window), so a failing script gets one retry before it fails the
run.

Run:  PYTHONPATH=src python tools/run_examples.py
"""

import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
TIMEOUT_S = 180
RETRIES = 1


def run_one(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO, env=env, timeout=TIMEOUT_S,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


def main():
    scripts = sorted(EXAMPLES.glob("*.py"))
    if not scripts:
        print("run_examples: no examples found", file=sys.stderr)
        return 1
    failures = []
    for script in scripts:
        for attempt in range(1 + RETRIES):
            started = time.monotonic()
            try:
                proc = run_one(script)
            except subprocess.TimeoutExpired:
                print(f"TIMEOUT {script.name} (>{TIMEOUT_S}s)")
                failures.append(script.name)
                break
            elapsed = time.monotonic() - started
            if proc.returncode == 0:
                retried = " (after retry)" if attempt else ""
                print(f"ok   {script.name}  [{elapsed:.1f}s]{retried}")
                break
            if attempt < RETRIES:
                print(f"retry {script.name} (exit {proc.returncode})")
                continue
            print(f"FAIL {script.name} (exit {proc.returncode})")
            sys.stdout.write(proc.stdout.decode("utf-8", "replace"))
            failures.append(script.name)
    if failures:
        print(f"run_examples: {len(failures)} failed: "
              f"{', '.join(failures)}")
        return 1
    print(f"run_examples: all {len(scripts)} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
