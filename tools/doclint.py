#!/usr/bin/env python3
"""Doc lint: the docs tree must keep up with the code.

Three checks, each of which fails the build on a violation:

1. **Env-knob coverage** — every ``JK_*`` environment variable
   mentioned anywhere under ``src/`` must appear in at least one
   ``docs/*.md`` (the consolidated table lives in ``docs/env-knobs.md``).
2. **Public-API coverage** — every name in ``repro.core.__all__`` and
   ``repro.fleet.__all__`` must appear in at least one ``docs/*.md``
   (the coverage anchor is the API-surface listing in
   ``docs/index.md``).
3. **Link resolution** — every relative markdown link inside ``docs/``
   (and the README's links into ``docs/``) must point at a file that
   exists.

Run:  PYTHONPATH=src python tools/doclint.py
"""

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOCS = REPO / "docs"

KNOB_RE = re.compile(r"JK_[A-Z][A-Z_]*")
# [text](target) — but not images and not in fenced code (good enough:
# fenced blocks in these docs never contain markdown links).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _knobs_in_source():
    knobs = set()
    for path in SRC.rglob("*.py"):
        for match in KNOB_RE.findall(path.read_text(encoding="utf-8")):
            knobs.add(match.rstrip("_"))
    return knobs


def _public_exports():
    """The ``__all__`` lists, read syntactically — the lint must not
    depend on the package importing cleanly in the lint environment."""
    exports = {}
    for package in ("core", "fleet"):
        init = SRC / "repro" / package / "__init__.py"
        tree = ast.parse(init.read_text(encoding="utf-8"))
        names = None
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets)):
                names = [ast.literal_eval(elt) for elt in node.value.elts]
        if names is None:
            raise SystemExit(f"doclint: no __all__ literal in {init}")
        exports[f"repro.{package}"] = names
    return exports


def _docs_corpus():
    pages = {}
    for path in sorted(DOCS.glob("*.md")):
        pages[path] = path.read_text(encoding="utf-8")
    readme = REPO / "README.md"
    pages[readme] = readme.read_text(encoding="utf-8")
    return pages


def _word_pattern(name):
    return re.compile(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])")


def main():
    problems = []
    pages = _docs_corpus()
    corpus = "\n".join(pages.values())

    for knob in sorted(_knobs_in_source()):
        if knob not in corpus:
            problems.append(
                f"undocumented env knob: {knob} (add it to "
                f"docs/env-knobs.md)"
            )

    for module, names in _public_exports().items():
        for name in sorted(names):
            if not _word_pattern(name).search(corpus):
                problems.append(
                    f"undocumented public export: {module}.{name} "
                    f"(add it to the API surface in docs/index.md)"
                )

    for path, text in pages.items():
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"dangling link in {path.relative_to(REPO)}: "
                    f"({target})"
                )

    if problems:
        print(f"doclint: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    knob_count = len(_knobs_in_source())
    export_count = sum(len(v) for v in _public_exports().values())
    print(f"doclint: ok ({knob_count} knobs, {export_count} exports, "
          f"{len(pages)} pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
