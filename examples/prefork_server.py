"""Prefork serving + out-of-process servlet deployment, end to end.

Run with::

    PYTHONPATH=src python examples/prefork_server.py

Demonstrates the two process-boundary tiers PR 5 added on top of the
reactor:

* a :class:`~repro.web.prefork.PreforkServer` master forking N
  J-Kernel web-server workers behind one port (SO_REUSEPORT when the
  platform has it), with rolling hot-swap and cross-process accounting;
* a servlet deployed *out-of-process* (Remote-Playground style): its
  domain lives in a forked host reached through cross-process LRMI, so
  killing that process 503s its URLs — and the supervisor respawns it —
  while every other route keeps serving.
"""

import os
import signal
import time

from repro.web import (
    JKernelWebServer,
    PreforkServer,
    Servlet,
    ServletResponse,
    fetch_once,
)


class WhoAmI(Servlet):
    """Answers with the pid that actually served the request."""

    def service(self, request):
        return ServletResponse(
            200, {"Content-Type": "text/plain"},
            f"served by pid {os.getpid()}\n".encode(),
        )


def build_worker():
    """Runs in each forked worker: a full J-Kernel web server."""
    jk = JKernelWebServer(workers=2)
    jk.server.documents.put("/", b"prefork demo: try /servlet/whoami\n")
    jk.install_servlet("/whoami", WhoAmI)
    return jk


def main():
    print(f"master pid {os.getpid()}")
    with PreforkServer(build_worker, workers=4) as master:
        print(f"serving on 127.0.0.1:{master.port} "
              f"with workers {master.worker_pids()}")

        seen = set()
        for _ in range(12):
            response = fetch_once("127.0.0.1", master.port, "/servlet/whoami")
            seen.add(response.body.decode().strip())
        print("requests landed on:", *sorted(seen), sep="\n  ")

        print("\nrolling restart (zero downtime)...")
        master.rolling_restart()
        print("new fleet:", master.worker_pids())
        response = fetch_once("127.0.0.1", master.port, "/servlet/whoami")
        print("still serving:", response.body.decode().strip())

        stats = master.stats()
        print(f"\nreconciled requests_served={stats['requests_served']} "
              f"(crash replacements: {stats['crash_replacements']})")

    # -- out-of-process servlet in a single-process server ----------------
    print("\nout-of-process servlet demo")
    with JKernelWebServer(workers=2) as jk:
        registration = jk.install_servlet_out_of_process("/sandbox", WhoAmI)
        response = fetch_once("127.0.0.1", jk.port, "/servlet/sandbox")
        print("sandboxed servlet:", response.body.decode().strip(),
              f"(host pid {registration.host.pid})")

        print("killing the sandbox host...")
        os.kill(registration.host.pid, signal.SIGKILL)
        deadline = time.time() + 10
        while time.time() < deadline:
            response = fetch_once("127.0.0.1", jk.port, "/servlet/sandbox")
            if response.status == 200:
                break
            print(f"  -> {response.status} (supervisor respawning)")
            time.sleep(0.1)
        print("recovered:", response.body.decode().strip(),
              f"(respawns: {registration.respawns})")


if __name__ == "__main__":
    main()
