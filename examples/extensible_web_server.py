#!/usr/bin/env python3
"""The §4 extensible web server.

A native HTTP server ("IIS") serves documents; the J-Kernel attaches via
an in-process bridge and hosts user servlets, each in its own protection
domain.  We upload a servlet as source code, crash another, hot-replace
it, and terminate one — the server never goes down.

Run:  python examples/extensible_web_server.py
"""

import time

from repro.web import (
    JKernelWebServer,
    NativeHttpServer,
    Servlet,
    ServletResponse,
    fetch_once,
    measure_throughput,
    text_response,
)


class ChartServlet(Servlet):
    """The failing chart component from the paper's introduction."""

    def service(self, request):
        raise RuntimeError("charting component crashed")


class FixedChartServlet(Servlet):
    def service(self, request):
        return text_response("[chart: sales up and to the right]")


class GuestbookServlet(Servlet):
    def __init__(self):
        self.entries = []

    def service(self, request):
        if request.method == "POST":
            self.entries.append(request.body.decode("utf-8"))
            return text_response(f"thanks, entry #{len(self.entries)}")
        return text_response("\n".join(self.entries) or "(empty)")


UPLOADED_SOURCE = '''
class TimeServlet(Servlet):
    def service(self, request):
        println("time servlet hit: " + request.path)
        return ServletResponse(200, {}, b"it is now o'clock")
servlet = TimeServlet
'''


def get(port, path):
    response = fetch_once("127.0.0.1", port, path)
    body = response.body.decode("utf-8", "replace")
    print(f"  GET {path} -> {response.status} {body[:60]!r}")
    return response


def main():
    iis = NativeHttpServer()
    iis.documents.put("/index.html", b"<html>static home page</html>")
    server = JKernelWebServer(server=iis, mount="/servlet")
    iis.start()
    port = iis.port
    print(f"server on 127.0.0.1:{port}")

    print("\n-- static documents (native fast path) --")
    get(port, "/index.html")

    print("\n-- install servlets, one domain each --")
    server.install_servlet("/chart", ChartServlet, domain_name="chart")
    server.install_servlet("/guestbook", GuestbookServlet,
                           domain_name="guestbook")
    get(port, "/servlet/guestbook")

    print("\n-- upload a servlet as source code --")
    registration = server.install_source("/time", UPLOADED_SOURCE,
                                         servlet_class_name="servlet")
    get(port, "/servlet/time")
    print("  uploaded servlet's domain log:", registration.domain.output)

    print("\n-- the chart component crashes; nothing else does --")
    get(port, "/servlet/chart")
    get(port, "/servlet/guestbook")
    get(port, "/index.html")

    print("\n-- hot-replace the chart servlet (paper §1: no restart) --")
    server.replace_servlet("/chart", FixedChartServlet)
    get(port, "/servlet/chart")

    print("\n-- terminate the guestbook domain --")
    server.terminate_servlet("/guestbook")
    get(port, "/servlet/guestbook")

    print("\n-- throughput: native documents vs servlet path --")
    native = measure_throughput("127.0.0.1", port, "/index.html",
                                clients=4, requests_per_client=50)
    servlet = measure_throughput("127.0.0.1", port, "/servlet/chart",
                                 clients=4, requests_per_client=50)
    print(f"  native: {native:7.0f} pages/s")
    print(f"  servlet:{servlet:7.0f} pages/s "
          f"({servlet / native:.0%} of native — the Table 5 overhead)")

    server.stop()
    print("\nserver stopped cleanly.")


if __name__ == "__main__":
    main()
