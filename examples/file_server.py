#!/usr/bin/env python3
"""The §2 file-system scenario, done the J-Kernel way.

A file-server domain gives each client a *capability* carrying that
client's access rights and root directory.  Static access control keeps
the fields private; revocation enforces least privilege over time; and
because every capability is revocable independently, kicking one client
out does not disturb the others.

Run:  python examples/file_server.py
"""

from repro.core import (
    Capability,
    Domain,
    Remote,
    RemoteException,
    RevokedException,
)

READ = 1
WRITE = 2


class FileSystem(Remote):
    """The remote interface clients see (cf. FileSystemInterface)."""

    def open(self, file_name): ...
    def write(self, file_name, data): ...
    def listing(self): ...


class FileSystemInterface(FileSystem):
    """Per-client view: private rights + root directory (paper §2)."""

    def __init__(self, store, access_rights, root_directory):
        self._store = store
        self._access_rights = access_rights
        self._root_directory = root_directory

    def _resolve(self, file_name):
        return f"{self._root_directory.rstrip('/')}/{file_name.lstrip('/')}"

    def open(self, file_name):
        if not self._access_rights & READ:
            raise PermissionError("no read right")
        path = self._resolve(file_name)
        if path not in self._store:
            raise FileNotFoundError(file_name)
        return self._store[path]

    def write(self, file_name, data):
        if not self._access_rights & WRITE:
            raise PermissionError("no write right")
        self._store[self._resolve(file_name)] = data
        return len(data)

    def listing(self):
        prefix = self._root_directory.rstrip("/") + "/"
        return sorted(
            path[len(prefix):]
            for path in self._store
            if path.startswith(prefix)
        )


def main():
    server = Domain("file-server")
    store = {
        "/home/alice/notes.txt": b"alice's notes",
        "/home/bob/todo.txt": b"bob's list",
        "/shared/readme.txt": b"shared readme",
    }

    def grant(rights, root):
        return server.run(
            lambda: Capability.create(
                FileSystemInterface(store, rights, root),
                label=f"fs:{root}",
            )
        )

    # Different capabilities enforce different policies for each client.
    alice = grant(READ | WRITE, "/home/alice")
    bob_readonly = grant(READ, "/home/bob")
    shared = grant(READ, "/shared")

    print("alice reads her file:", alice.open("notes.txt"))
    alice.write("draft.txt", b"work in progress")
    print("alice's directory:", alice.listing())

    print("bob reads:", bob_readonly.open("todo.txt"))
    try:
        bob_readonly.write("todo.txt", b"overwrite!")
    except PermissionError as exc:
        print("bob cannot write:", exc)

    # Clients cannot reach outside their root or forge rights: the fields
    # are private state of the server's object, and the only entry points
    # are the interface methods.
    try:
        bob_readonly.open("../alice/notes.txt")
    except (FileNotFoundError, RemoteException) as exc:
        print("bob cannot escape his root:", type(exc).__name__)

    # Least privilege over time: revoke bob when his task is done.
    bob_readonly.revoke()
    try:
        bob_readonly.open("todo.txt")
    except RevokedException:
        print("bob's capability revoked; alice unaffected:",
              alice.open("notes.txt"))

    # Server shutdown revokes everything at once.
    server.terminate()
    try:
        shared.open("readme.txt")
    except RemoteException as exc:
        print("after server termination:", type(exc).__name__)


if __name__ == "__main__":
    main()
