#!/usr/bin/env python3
"""The CS314 course pipeline (paper §4).

The course staff's compiler, assembler and linker run as servlets, each in
its own protection domain behind the extensible web server.  Students POST
Jr source; the pipeline compiles it to MiniJVM assembly, assembles,
link-checks and executes it on a fresh MiniJVM.  Replacing the compiler
mid-semester requires no server restart — the problem that motivated the
J-Kernel in the first place.

Run:  python examples/cs314_pipeline.py
"""

from repro.toolchain import (
    AssemblerServlet,
    CompilerServlet,
    PipelineServlet,
)
from repro.web import JKernelWebServer, NativeHttpServer

HOMEWORK = """\
# CS314 homework 3: classic recursion
func gcd(a, b) {
    while (b != 0) {
        var t = b;
        b = a % b;
        a = t;
    }
    return a;
}

func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

func main() {
    print gcd(1071, 462);
    print fib(15);
    return fib(15) + gcd(1071, 462);
}
"""


def post(port, path, body, headers=None):
    import socket

    from repro.web.http import format_request, read_response

    with socket.create_connection(("127.0.0.1", port)) as conn:
        conn.sendall(format_request("POST", path, headers or {},
                                    body.encode("utf-8"),
                                    keep_alive=False))
        reader = conn.makefile("rb")
        response = read_response(reader)
        reader.close()
    return response


def main():
    iis = NativeHttpServer()
    server = JKernelWebServer(server=iis, mount="/cs314")
    iis.start()
    port = iis.port
    print(f"CS314 server on 127.0.0.1:{port}")

    # One domain per course component.
    server.install_servlet("/compile", CompilerServlet,
                           domain_name="cs314-compiler")
    server.install_servlet("/assemble", AssemblerServlet,
                           domain_name="cs314-assembler")
    server.install_servlet("/run", PipelineServlet,
                           domain_name="cs314-pipeline")

    print("\n-- student submits homework to /cs314/run --")
    response = post(port, "/cs314/run", HOMEWORK,
                    {"X-Module": "hw3"})
    print(f"  status {response.status}")
    for line in response.body.decode("utf-8").splitlines():
        print(f"  | {line}")

    print("\n-- intermediate artifacts from the component servlets --")
    asm = post(port, "/cs314/compile", HOMEWORK, {"X-Module": "hw3"})
    asm_lines = asm.body.decode("utf-8").splitlines()
    print(f"  compiler produced {len(asm_lines)} lines of assembly; head:")
    for line in asm_lines[:5]:
        print(f"  | {line}")
    assembled = post(port, "/cs314/assemble", asm.body.decode("utf-8"))
    print(f"  assembler produced classes: "
          f"{assembled.headers.get('x-classes')}")

    print("\n-- a submission with a bug gets a clean error, not a crash --")
    broken = "func main() { return missing_helper(1); }"
    response = post(port, "/cs314/run", broken)
    print(f"  status {response.status}: "
          f"{response.body.decode('utf-8')[:70]}")

    print("\n-- mid-semester compiler upgrade: hot replacement --")
    server.replace_servlet("/compile", CompilerServlet,
                           domain_name="cs314-compiler-v2")
    response = post(port, "/cs314/run", HOMEWORK, {"X-Module": "hw3"})
    print(f"  pipeline still healthy after replacement: "
          f"status {response.status}")

    server.stop()
    print("\ndone.")


if __name__ == "__main__":
    main()
