#!/usr/bin/env python3
"""Quickstart: the paper's §3.1 capability walkthrough.

Domain 1 creates a capability for a ReadFile service and publishes it in
the system repository; Domain 2 looks it up and makes cross-domain calls.
Then we revoke, and terminate, and watch failure propagate correctly.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Capability,
    Domain,
    DomainTerminatedException,
    Remote,
    RevokedException,
    get_repository,
)


# A remote interface: the contract shared between domains (extends Remote,
# exactly like the paper's `interface ReadFile extends Remote`).
class ReadFile(Remote):
    def read_byte(self): ...
    def read_bytes(self, n): ...


# The implementation stays hidden inside its domain; only the interface
# methods are reachable through the capability.
class ReadFileImpl(ReadFile):
    CONTENT = b"The quick brown fox jumps over the lazy dog"

    def __init__(self):
        self._cursor = 0

    def read_byte(self):
        value = self.CONTENT[self._cursor % len(self.CONTENT)]
        self._cursor += 1
        return value

    def read_bytes(self, n):
        return bytes(self.read_byte() for _ in range(n))

    def internal_bookkeeping(self):  # NOT in any remote interface
        return "secret"


def main():
    # --- Domain 1: create and publish ---------------------------------
    domain1 = Domain("domain-1")
    capability = domain1.run(lambda: Capability.create(ReadFileImpl()))
    get_repository().bind("Domain1ReadFile", capability, domain=domain1)
    print(f"domain-1 published {capability!r}")

    # --- Domain 2: look up and invoke ------------------------------------
    found = get_repository().lookup("Domain1ReadFile")
    print("isinstance(found, ReadFile):", isinstance(found, ReadFile))
    print("read_bytes(9):", found.read_bytes(9))
    print("has internal_bookkeeping:", hasattr(found, "internal_bookkeeping"))

    # --- revocation ----------------------------------------------------------
    capability.revoke()
    try:
        found.read_byte()
    except RevokedException as exc:
        print("after revoke():", exc)

    # --- a fresh capability, then domain termination ---------------------------
    second = domain1.run(lambda: Capability.create(ReadFileImpl()))
    print("fresh capability works:", second.read_byte())
    domain1.terminate()
    try:
        second.read_byte()
    except DomainTerminatedException as exc:
        print("after terminate():", exc)

    print("done.")


if __name__ == "__main__":
    main()
