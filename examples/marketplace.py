#!/usr/bin/env python3
"""The untrusted-servlet marketplace.

Vendors upload servlets the operator has no reason to trust; the
marketplace sells them shelf space anyway.  Four mechanisms make that
safe, and this example exercises all of them together:

* **Capabilities** (the J-Kernel's own currency): a vendor can only call
  what it was handed — here, guarded read/write capabilities to the
  store-wide key-value service.
* **Stack-based policy** (``repro.core.policy``, layered *on top* of
  capabilities): every domain on the call chain must imply a demanded
  permission, so a vendor cannot launder a write through a better-armed
  deputy, and ``do_privileged`` lets a deputy vouch for its own callees
  without also vouching for its callers.
* **Static policy generation** (``repro.toolchain.policygen``): the
  marketplace proposes a least-privilege permission set from the
  vendor's code *before* install — uploaded Python source and verified
  MiniJVM bytecode both.
* **Tenant quotas** (the fleet control plane): a vendor that spams its
  own shelf gets its domain terminated, neighbours unharmed.

Run:  python examples/marketplace.py
"""

import time

from repro.core import (
    AccessDeniedError,
    Capability,
    Domain,
    Remote,
    do_privileged,
)
from repro.core.quota import QuotaSpec
from repro.web import JKernelWebServer, Servlet, ServletResponse
from repro.web.client import fetch_once


# --------------------------------------------------------------------------
# The marketplace's one shared service: a key-value store.  The store
# domain hands out *guarded* capabilities — possession is necessary but
# no longer sufficient; the caller's whole chain must imply the guard.
# --------------------------------------------------------------------------

class KvStore(Remote):
    def read(self, key): ...
    def write(self, key, value): ...


class KvStoreImpl(KvStore):
    def __init__(self):
        self.data = {"motd": "welcome to the marketplace"}

    def read(self, key):
        return self.data.get(key)

    def write(self, key, value):
        self.data[key] = value
        return True


def build_store():
    store_domain = Domain("kv-store")
    impl = KvStoreImpl()
    read_cap = store_domain.run(
        lambda: Capability.create(impl, guard="kv.read", label="kv-read")
    )
    write_cap = store_domain.run(
        lambda: Capability.create(impl, guard="kv.write", label="kv-write")
    )
    return store_domain, read_cap, write_cap


# --------------------------------------------------------------------------
# Scene 1 — the kernel-level deny matrix: direct call, do_privileged
# abuse, confused deputy.
# --------------------------------------------------------------------------

class Deputy(Remote):
    def relay_write(self, key, value): ...
    def audited_write(self, key, value): ...


class DeputyImpl(Deputy):
    """A well-armed intermediary: holds the write capability."""

    def __init__(self, write_cap):
        self._write = write_cap

    def relay_write(self, key, value):
        # Naive relay: the caller's domain stays on the chain, so a
        # restricted tenant cannot launder a write through us.
        return self._write.write(key, value)

    def audited_write(self, key, value):
        # The deputy vouches for this one: do_privileged truncates the
        # walk at the deputy's own domain (which holds kv.write).
        return do_privileged(self._write.write, key, value)


class Tenant(Remote):
    def shop(self): ...
    def steal(self): ...
    def steal_privileged(self): ...
    def steal_via_deputy(self): ...
    def purchase(self): ...


class TenantImpl(Tenant):
    def __init__(self, read_cap, write_cap, deputy_cap):
        self._read = read_cap
        self._write = write_cap
        self._deputy = deputy_cap

    def shop(self):
        return self._read.read("motd")

    def steal(self):
        return self._write.write("motd", "pwned")

    def steal_privileged(self):
        # do_privileged never *adds* permissions: the asserting frame's
        # own domain stays in the walk.
        return do_privileged(self._write.write, "motd", "pwned")

    def steal_via_deputy(self):
        return self._deputy.relay_write("motd", "pwned")

    def purchase(self):
        # The deputy's audited path is the sanctioned way to write.
        return self._deputy.audited_write("sales", "tenant-a bought one")


def expect_denied(label, thunk):
    try:
        thunk()
    except AccessDeniedError as exc:
        print(f"  {label}: DENIED ({exc.permission} missing in "
              f"{exc.domain})")
    else:
        raise AssertionError(f"{label}: should have been denied")


def scene_kernel():
    print("-- scene 1: kernel deny matrix (in-process) --")
    store_domain, read_cap, write_cap = build_store()

    deputy_domain = Domain("deputy").set_policy(["kv.read", "kv.write"])
    deputy_cap = deputy_domain.run(
        lambda: Capability.create(DeputyImpl(write_cap), label="deputy")
    )

    tenant_domain = Domain("tenant-a").set_policy(["kv.read"])
    tenant = tenant_domain.run(
        lambda: Capability.create(
            TenantImpl(read_cap, write_cap, deputy_cap), label="tenant-a"
        )
    )

    print(f"  tenant reads motd: {tenant.shop()!r}")
    expect_denied("direct write", tenant.steal)
    expect_denied("do_privileged abuse", tenant.steal_privileged)
    expect_denied("confused deputy", tenant.steal_via_deputy)
    print(f"  audited write via deputy: {tenant.purchase()}")
    for domain in (store_domain, deputy_domain, tenant_domain):
        domain.terminate()


# --------------------------------------------------------------------------
# Scene 2 — uploaded *source* vendors behind the web server: the static
# generator proposes a least-privilege policy before install.
# --------------------------------------------------------------------------

HONEST_VENDOR = '''
class ShopFront(Servlet):
    def service(self, request):
        return ServletResponse(200, {}, "motd: %s" % kv.read("motd"))
servlet = ShopFront
'''

ROGUE_VENDOR = '''
class ShopLifter(Servlet):
    def service(self, request):
        if request.path.endswith("/steal"):
            kv_admin.write("motd", "pwned")       # guarded kv.write
            return ServletResponse(200, {}, "stolen")
        if request.path.endswith("/launder"):
            do_privileged(kv_admin.write, "motd", "pwned")
            return ServletResponse(200, {}, "laundered")
        return ServletResponse(200, {}, "motd: %s" % kv.read("motd"))
servlet = ShopLifter
'''


def get(port, path):
    response = fetch_once("127.0.0.1", port, path)
    body = response.body.decode("utf-8", "replace")
    print(f"  GET {path} -> {response.status} {body[:60]!r}")
    return response


def scene_web(server, port, read_cap, write_cap):
    print("\n-- scene 2: uploaded source vendors, generated policy --")
    from repro.toolchain import propose_policy_source

    grants = {"kv": read_cap, "kv_admin": write_cap,
              "do_privileged": do_privileged}
    for name, source in (("honest", HONEST_VENDOR),
                         ("rogue", ROGUE_VENDOR)):
        proposal = propose_policy_source(source, grants)
        print(f"  {name} vendor proposal: "
              f"{sorted(str(p) for p in proposal)}")

    # The honest vendor's proposal is just kv.read — install with it.
    server.install_source("/shop", HONEST_VENDOR, grants=grants,
                          policy="generate")
    assert get(port, "/servlet/shop").status == 200

    # The rogue vendor references kv_admin, so the *proposal* includes
    # kv.write — the operator reviews and grants only kv.read.
    server.install_source("/lifter", ROGUE_VENDOR, grants=grants,
                          policy=["kv.read"])
    assert get(port, "/servlet/lifter").status == 200
    assert get(port, "/servlet/lifter/steal").status == 403
    assert get(port, "/servlet/lifter/launder").status == 403


# --------------------------------------------------------------------------
# Scene 3 — a VM-hosted vendor: verified bytecode, initcheck-vetted,
# policy generated from the code itself.
# --------------------------------------------------------------------------

def scene_vm():
    print("\n-- scene 3: VM-hosted vendor (verified bytecode) --")
    from repro.jkvm import JKernelVM
    from repro.jvm import ClassAssembler, interface
    from repro.jvm.classfile import CONSTRUCTOR_NAME
    from repro.jvm.errors import JThrowable
    from repro.jvm.instructions import (
        ALOAD,
        ICONST,
        INVOKEINTERFACE,
        INVOKESPECIAL,
        INVOKESTATIC,
        IRETURN,
        LDC_STR,
        RETURN,
    )
    from repro.toolchain import generate_policy

    svc = "market/Ledger"
    ledger_iface = interface(svc, [("record", "()I")],
                             extends=("jk/Remote",))
    impl = ClassAssembler("market/LedgerImpl",
                          interfaces=(svc, "jk/Remote"))
    with impl.method(CONSTRUCTOR_NAME, "()V") as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKESPECIAL, "java/lang/Object", CONSTRUCTOR_NAME, "()V")
        m.emit(RETURN)
    with impl.method("record", "()I") as m:
        m.emit(LDC_STR, "ledger.append")
        m.emit(INVOKESTATIC, "jk/Kernel", "checkPermission",
               "(Ljava/lang/String;)V")
        m.emit(ICONST, 1)
        m.emit(IRETURN)

    vendor = ClassAssembler("vend/Vendor")
    with vendor.method("sell", f"(L{svc};)I", 0x0009) as m:
        m.emit(ALOAD, 0)
        m.emit(INVOKEINTERFACE, svc, "record", "()I")
        m.emit(IRETURN)

    kernel = JKernelVM()
    ledger_files = [ledger_iface, impl.build()]
    needs = generate_policy(ledger_files)
    print(f"  ledger bytecode demands: {sorted(str(p) for p in needs)}")

    ledger_domain = kernel.new_domain("ledger")
    ledger_domain.define(ledger_files)  # initcheck vets constructors
    target = kernel.vm.construct(ledger_domain.load("market/LedgerImpl"),
                                 domain_tag=ledger_domain.tag)
    ledger_cap = ledger_domain.create_capability(target)

    vendor_domain = kernel.new_domain("vm-vendor")
    vendor_domain.share_from(ledger_domain, svc)
    vendor_domain.define([vendor.build()])
    driver = vendor_domain.load("vend/Vendor")

    vendor_domain.set_policy(["ledger.append"])
    sold = kernel.vm.call_static(driver, "sell", f"(L{svc};)I",
                                 [ledger_cap],
                                 domain_tag=vendor_domain.tag)
    print(f"  granted vendor sells: {sold}")

    vendor_domain.set_policy(["window.shop"])
    try:
        kernel.vm.call_static(driver, "sell", f"(L{svc};)I", [ledger_cap],
                              domain_tag=vendor_domain.tag)
        raise AssertionError("guest write should have been denied")
    except JThrowable as exc:
        print(f"  restricted vendor: {exc}")


# --------------------------------------------------------------------------
# Scene 4 — an out-of-process vendor: the restricted context crosses the
# process boundary with the call, and the typed denial marshals home.
# --------------------------------------------------------------------------

class _BoothServlet(Servlet):
    def service(self, request):
        from repro.core import check_permission

        if request.path.endswith("/admin"):
            check_permission("market.admin")
            return ServletResponse(200, {}, b"admin console")
        check_permission("market.page")
        return ServletResponse(200, {}, b"booth page")


def scene_out_of_process(server, port):
    print("\n-- scene 4: out-of-process vendor --")
    server.install_servlet_out_of_process(
        "/booth", _BoothServlet, supervise=False,
        policy=["market.page"],
    )
    assert get(port, "/servlet/booth").status == 200
    assert get(port, "/servlet/booth/admin").status == 403


# --------------------------------------------------------------------------
# Scene 5 — the fleet control plane: a spamming vendor is terminated by
# its tenant quota, the neighbour keeps serving.
# --------------------------------------------------------------------------

class _QuickServlet(Servlet):
    def service(self, request):
        return ServletResponse(200, {}, b"ok")


def scene_quota(server, port):
    print("\n-- scene 5: tenant quota kill --")
    server.set_quota("/greedy", QuotaSpec(requests_per_sec=30,
                                          soft_fraction=0.5))
    server.install_servlet("/greedy", _QuickServlet)
    server.install_servlet("/meek", _QuickServlet)

    deadline = time.monotonic() + 10.0
    while not server.quota_kills and time.monotonic() < deadline:
        fetch_once("127.0.0.1", port, "/servlet/greedy")
    while "/greedy" in server.registrations():
        time.sleep(0.01)
    prefix, breached, _at = server.quota_kills[0]
    print(f"  quota kill: {prefix} breached {breached[0]}")
    get(port, "/servlet/greedy")   # unrouted/shed now
    assert get(port, "/servlet/meek").status == 200


def main():
    scene_kernel()

    store_domain, read_cap, write_cap = build_store()
    server = JKernelWebServer(workers=1)
    with server:
        port = server.port
        scene_web(server, port, read_cap, write_cap)
        scene_out_of_process(server, port)
        scene_quota(server, port)
    store_domain.terminate()

    scene_vm()
    print("\nmarketplace closed cleanly.")


if __name__ == "__main__":
    main()
